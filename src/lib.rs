//! EventDB umbrella crate: re-exports the full public API of the workspace.
//!
//! See `evdb_core` for the high-level [`evdb_core::EventServer`] facade and
//! the individual crates for each subsystem.

pub use evdb_analytics as analytics;
pub use evdb_core as core;
pub use evdb_cq as cq;
pub use evdb_dist as dist;
pub use evdb_expr as expr;
pub use evdb_faults as faults;
pub use evdb_obs as obs;
pub use evdb_queue as queue;
pub use evdb_server as net;
pub use evdb_rules as rules;
pub use evdb_storage as storage;
pub use evdb_types as types;
