//! The HTTP frontend's observability contract:
//!
//! * `GET /metrics` serves exactly the in-process `Registry::render()`
//!   exposition — byte-identical modulo sample values (compared through
//!   the shared `normalize_exposition`, the same normalizer the
//!   exposition golden uses);
//! * the `evdb_server_*` counters it reports match what this very
//!   client observed over the wire;
//! * the ingest/query/pump/SSE routes round-trip against the same
//!   engine the TCP frontend serves.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use evdb::core::server::ServerConfig;
use evdb::core::EventServer;
use evdb::net::frame::{encode_frame_vec, FrameDecoder};
use evdb::net::{NetConfig, NetServer};
use evdb::obs::normalize_exposition;
use evdb::types::{SimClock, TimestampMs};

fn start_server() -> NetServer {
    let engine = Arc::new(
        EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            ..Default::default()
        })
        .unwrap(),
    );
    NetServer::start(
        engine,
        NetConfig {
            pump_interval: None, // explicit pumps keep the metric set stable
            ..Default::default()
        },
    )
    .unwrap()
}

/// Minimal HTTP/1.1 request over a fresh connection, opting out of
/// keep-alive so EOF frames the body.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let response = String::from_utf8(response).unwrap();
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .expect("malformed HTTP response");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("missing status")
        .parse()
        .unwrap();
    (status, payload.to_string())
}

/// A persistent HTTP client: many requests over ONE connection,
/// responses framed by `Content-Length` (the keep-alive contract).
struct KeepAliveClient {
    stream: TcpStream,
    buffered: Vec<u8>,
}

impl KeepAliveClient {
    fn connect(addr: std::net::SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        KeepAliveClient {
            stream,
            buffered: Vec::new(),
        }
    }

    /// One round trip on the shared connection. Returns
    /// `(status, head, body)`; panics on timeout or early close.
    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String, String) {
        self.stream
            .write_all(
                format!(
                    "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        // Head: read until the blank line.
        let head_end = loop {
            if let Some(pos) = self
                .buffered
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
            {
                break pos;
            }
            assert!(Instant::now() < deadline, "response head timed out");
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => panic!("server closed a keep-alive connection mid-response"),
                Ok(n) => self.buffered.extend_from_slice(&buf[..n]),
                Err(_) => {}
            }
        };
        let head = String::from_utf8(self.buffered.drain(..head_end + 4).collect()).unwrap();
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        let content_length: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string))
            .expect("response missing Content-Length")
            .trim()
            .parse()
            .unwrap();
        // Body: exactly Content-Length bytes — the framing that makes
        // response boundaries unambiguous without an EOF.
        while self.buffered.len() < content_length {
            assert!(Instant::now() < deadline, "response body timed out");
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => panic!("connection closed mid-body"),
                Ok(n) => self.buffered.extend_from_slice(&buf[..n]),
                Err(_) => {}
            }
        }
        let body = String::from_utf8(self.buffered.drain(..content_length).collect()).unwrap();
        (status, head, body)
    }
}

/// Poll the shared active-connections gauge down to an expected value
/// (connection threads tear down asynchronously after a client drop).
fn wait_active_connections(server: &NetServer, expect: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let active = server
            .hub()
            .active_connections
            .load(std::sync::atomic::Ordering::Relaxed);
        if active == expect {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "active_connections stuck at {active}, want {expect} (gauge leak?)"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One TCP protocol round trip on a dedicated connection.
fn tcp_call(addr: std::net::SocketAddr, cmds: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .unwrap();
    let mut decoder = FrameDecoder::new();
    let mut replies = Vec::new();
    for cmd in cmds {
        stream.write_all(&encode_frame_vec(cmd.as_bytes())).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(frame) = decoder.next_frame() {
                replies.push(String::from_utf8(frame.unwrap()).unwrap());
                break;
            }
            assert!(Instant::now() < deadline, "timed out on {cmd}");
            let mut buf = [0u8; 4096];
            match stream.read(&mut buf) {
                Ok(0) => panic!("connection closed"),
                Ok(n) => decoder.push(&buf[..n]),
                Err(_) => {}
            }
        }
    }
    replies
}

fn counter_value(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing from exposition"))
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not an integer"))
}

#[test]
fn http_metrics_parity_with_in_process_render() {
    let mut server = start_server();
    let http_addr = server.http_addr().unwrap();

    // Exercise enough of the pipeline that every layer's metrics exist.
    let replies = tcp_call(
        server.tcp_addr(),
        &[
            "CREATE STREAM ticks sym:STR,px:FLOAT",
            "REGISTER QUERY volume SELECT count() AS n FROM ticks [ROWS 2]",
            "INGEST ticks 100 AAPL,101.5",
            "INGEST ticks 200 MSFT,52.25",
            "PUMP",
        ],
    );
    assert!(replies.iter().all(|r| r.starts_with("OK")), "{replies:?}");

    let (status, body) = http(http_addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let local = server.engine().registry().render();
    assert_eq!(
        normalize_exposition(&body),
        normalize_exposition(&local),
        "/metrics must be the Registry exposition, byte-identical modulo values"
    );
    server.shutdown();
}

#[test]
fn server_counters_match_client_observed_traffic() {
    let mut server = start_server();
    let http_addr = server.http_addr().unwrap();

    let cmds = [
        "CREATE STREAM s v:INT",
        "REGISTER QUERY q SELECT count() AS n FROM s [ROWS 1]",
        "INGEST s 1 1",
        "PUMP",
        "GET q",
    ];
    let replies = tcp_call(server.tcp_addr(), &cmds);
    // GET q returns ROW + OK; tcp_call reads one frame per command, so
    // one ROW frame is still queued — it was transmitted regardless.
    assert!(replies.last().unwrap().starts_with("ROW "), "{replies:?}");

    let (_, body) = http(http_addr, "GET", "/metrics", "");
    // Exactly the five commands this client sent were dispatched.
    assert_eq!(
        counter_value(&body, "evdb_server_requests_total"),
        cmds.len() as u64,
        "request counter must match the client's command count"
    );
    // One TCP connection plus the in-flight HTTP request itself.
    assert_eq!(counter_value(&body, "evdb_server_connections_total"), 2);
    assert_eq!(counter_value(&body, "evdb_server_http_requests_total"), 1);
    assert_eq!(counter_value(&body, "evdb_server_errors_total"), 0);
    server.shutdown();
}

#[test]
fn http_ingest_query_and_pump_round_trip() {
    let mut server = start_server();
    let addr = server.http_addr().unwrap();
    tcp_call(
        server.tcp_addr(),
        &[
            "CREATE STREAM s v:INT",
            "REGISTER QUERY q SELECT count() AS n FROM s [ROWS 2]",
        ],
    );

    let (status, body) = http(addr, "POST", "/ingest/s", "1 1\n2 2\n");
    assert_eq!((status, body.as_str()), (200, "staged=2\n"));
    let (status, body) = http(addr, "POST", "/pump", "");
    assert_eq!(status, 200);
    assert!(body.starts_with("captured=2"), "{body}");
    let (status, body) = http(addr, "GET", "/query/q", "");
    assert_eq!((status, body.as_str()), (200, "2\n"));

    // Error mapping: unknown stream → 404 with the typed error body.
    let (status, body) = http(addr, "POST", "/ingest/nosuch", "1 1\n");
    assert_eq!(status, 404);
    assert!(body.contains("ERR not_found"), "{body}");
    let (status, _) = http(addr, "GET", "/query/nosuch", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/nosuch", "");
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn keepalive_serves_100_scrapes_on_one_connection() {
    let mut server = start_server();
    let mut client = KeepAliveClient::connect(server.http_addr().unwrap());

    // 100 sequential /metrics scrapes over ONE socket (the acceptance
    // bar): every response 200, every response keep-alive.
    let mut last_body = String::new();
    for i in 0..100 {
        let (status, head, body) = client.request("GET", "/metrics", "");
        assert_eq!(status, 200, "scrape {i} failed");
        assert!(
            head.to_ascii_lowercase().contains("connection: keep-alive"),
            "scrape {i} must keep the connection alive:\n{head}"
        );
        last_body = body;
    }
    // The server's own books agree: one connection, 100 requests.
    assert_eq!(counter_value(&last_body, "evdb_server_connections_total"), 1);
    assert_eq!(counter_value(&last_body, "evdb_server_http_requests_total"), 100);
    assert_eq!(counter_value(&last_body, "evdb_server_conns_rejected_total"), 0);

    drop(client);
    wait_active_connections(&server, 0);
    server.shutdown();
}

#[test]
fn connection_close_and_http10_are_honored() {
    let mut server = start_server();
    let addr = server.http_addr().unwrap();

    // Explicit `Connection: close` on HTTP/1.1 → close response + EOF.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap(); // EOF must arrive
    let response = String::from_utf8(response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let head = response.split_once("\r\n\r\n").unwrap().0.to_ascii_lowercase();
    assert!(head.contains("connection: close"), "{head}");

    // HTTP/1.0 without a Connection header defaults to close too.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let head = String::from_utf8(response)
        .unwrap()
        .split_once("\r\n\r\n")
        .unwrap()
        .0
        .to_ascii_lowercase();
    assert!(head.contains("connection: close"), "{head}");

    wait_active_connections(&server, 0);
    server.shutdown();
}

#[test]
fn max_requests_per_connection_closes_with_final_response() {
    let engine = Arc::new(
        EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            ..Default::default()
        })
        .unwrap(),
    );
    let mut server = NetServer::start(
        engine,
        NetConfig {
            pump_interval: None,
            http_max_requests: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = KeepAliveClient::connect(server.http_addr().unwrap());
    for i in 0..3 {
        let (status, head, _) = client.request("GET", "/metrics", "");
        assert_eq!(status, 200);
        let head = head.to_ascii_lowercase();
        if i < 2 {
            assert!(head.contains("connection: keep-alive"), "{head}");
        } else {
            // Budget spent: the final response says so, then EOF.
            assert!(head.contains("connection: close"), "{head}");
        }
    }
    // After the final response the server closes: EOF, no extra bytes.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut buf = [0u8; 256];
        match client.stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => panic!("unexpected bytes after final response: {:?}", &buf[..n]),
            Err(_) => assert!(Instant::now() < deadline, "EOF never arrived"),
        }
    }
    wait_active_connections(&server, 0);
    server.shutdown();
}

#[test]
fn connection_churn_returns_gauge_to_zero() {
    let mut server = start_server();
    let tcp_addr = server.tcp_addr();
    let http_addr = server.http_addr().unwrap();

    // Churn both frontends: open, do one round trip, close.
    for _ in 0..20 {
        let replies = tcp_call(tcp_addr, &["PING"]);
        assert_eq!(replies, ["PONG"]);
        let (status, _) = http(http_addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
    }

    // The gauge-leak regression: every slot must come back.
    wait_active_connections(&server, 0);
    let (_, body) = http(http_addr, "GET", "/metrics", "");
    assert_eq!(counter_value(&body, "evdb_server_connections_total"), 41);
    assert_eq!(counter_value(&body, "evdb_server_conns_rejected_total"), 0);
    wait_active_connections(&server, 0);
    server.shutdown();
}

#[test]
fn embedded_newlines_round_trip_both_frontends() {
    let mut server = start_server();
    let http_addr = server.http_addr().unwrap();
    tcp_call(
        server.tcp_addr(),
        &["CREATE STREAM s v:STR", "REGISTER QUERY q SELECT v FROM s"],
    );

    // SSE subscriber first, so the hostile value flows through the
    // `data:` framing as well.
    let mut sse = TcpStream::connect(http_addr).unwrap();
    sse.write_all(b"GET /subscribe/q HTTP/1.1\r\nHost: test\r\n\r\n")
        .unwrap();
    sse.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let mut received = String::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !received.contains("text/event-stream") {
        assert!(Instant::now() < deadline, "no SSE handshake: {received}");
        let mut buf = [0u8; 4096];
        if let Ok(n) = sse.read(&mut buf) {
            received.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
    }

    // A value holding a newline, a CR and a backslash, ingested as the
    // escaped quoted form (raw text: line1\nline2\rtail\\end).
    let escaped = r"'line1\nline2\rtail\\end'";
    let replies = tcp_call(
        server.tcp_addr(),
        &[&format!("INGEST s 1 {escaped}"), "PUMP", "GET q"],
    );
    assert_eq!(replies[0], "OK staged");
    // The TCP materialized read renders the identical escaped form —
    // a single newline-free frame.
    assert_eq!(replies[2], format!("ROW {escaped}"), "{replies:?}");

    // HTTP /query: exactly one line for the one row.
    let (status, body) = http(http_addr, "GET", "/query/q", "");
    assert_eq!(status, 200);
    assert_eq!(body, format!("{escaped}\n"));
    assert_eq!(body.lines().count(), 1, "one row must be one line");

    // SSE: the delta arrives as exactly one `data:` event whose
    // boundary survives the embedded control characters.
    let want = format!("data: q + {escaped}\n\n");
    while !received.contains(&want) {
        assert!(
            Instant::now() < deadline,
            "SSE update never arrived intact: {received:?}"
        );
        let mut buf = [0u8; 4096];
        if let Ok(n) = sse.read(&mut buf) {
            received.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
    }
    server.shutdown();
}

#[test]
fn sse_subscription_streams_updates() {
    let mut server = start_server();
    let http_addr = server.http_addr().unwrap();
    tcp_call(
        server.tcp_addr(),
        &["CREATE STREAM s v:INT", "REGISTER QUERY q SELECT v FROM s"],
    );

    // Open the SSE stream and confirm the event-stream handshake.
    let mut sse = TcpStream::connect(http_addr).unwrap();
    sse.write_all(b"GET /subscribe/q HTTP/1.1\r\nHost: test\r\n\r\n")
        .unwrap();
    sse.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let mut received = String::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !received.contains("text/event-stream") {
        assert!(Instant::now() < deadline, "no SSE handshake: {received}");
        let mut buf = [0u8; 4096];
        if let Ok(n) = sse.read(&mut buf) {
            received.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
    }

    // Produce an event; the subscriber must see the signed delta.
    tcp_call(server.tcp_addr(), &["INGEST s 7 42", "PUMP"]);
    while !received.contains("data: q + 42\n\n") {
        assert!(
            Instant::now() < deadline,
            "SSE update never arrived: {received}"
        );
        let mut buf = [0u8; 4096];
        if let Ok(n) = sse.read(&mut buf) {
            received.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
    }
    server.shutdown();
}
