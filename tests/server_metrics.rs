//! The HTTP frontend's observability contract:
//!
//! * `GET /metrics` serves exactly the in-process `Registry::render()`
//!   exposition — byte-identical modulo sample values (compared through
//!   the shared `normalize_exposition`, the same normalizer the
//!   exposition golden uses);
//! * the `evdb_server_*` counters it reports match what this very
//!   client observed over the wire;
//! * the ingest/query/pump/SSE routes round-trip against the same
//!   engine the TCP frontend serves.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use evdb::core::server::ServerConfig;
use evdb::core::EventServer;
use evdb::net::frame::{encode_frame_vec, FrameDecoder};
use evdb::net::{NetConfig, NetServer};
use evdb::obs::normalize_exposition;
use evdb::types::{SimClock, TimestampMs};

fn start_server() -> NetServer {
    let engine = Arc::new(
        EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            ..Default::default()
        })
        .unwrap(),
    );
    NetServer::start(
        engine,
        NetConfig {
            pump_interval: None, // explicit pumps keep the metric set stable
            ..Default::default()
        },
    )
    .unwrap()
}

/// Minimal HTTP/1.1 request over a fresh connection (the server is
/// `Connection: close`, so one connection per request is the contract).
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let response = String::from_utf8(response).unwrap();
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .expect("malformed HTTP response");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("missing status")
        .parse()
        .unwrap();
    (status, payload.to_string())
}

/// One TCP protocol round trip on a dedicated connection.
fn tcp_call(addr: std::net::SocketAddr, cmds: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .unwrap();
    let mut decoder = FrameDecoder::new();
    let mut replies = Vec::new();
    for cmd in cmds {
        stream.write_all(&encode_frame_vec(cmd.as_bytes())).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(frame) = decoder.next_frame() {
                replies.push(String::from_utf8(frame.unwrap()).unwrap());
                break;
            }
            assert!(Instant::now() < deadline, "timed out on {cmd}");
            let mut buf = [0u8; 4096];
            match stream.read(&mut buf) {
                Ok(0) => panic!("connection closed"),
                Ok(n) => decoder.push(&buf[..n]),
                Err(_) => {}
            }
        }
    }
    replies
}

fn counter_value(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing from exposition"))
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not an integer"))
}

#[test]
fn http_metrics_parity_with_in_process_render() {
    let mut server = start_server();
    let http_addr = server.http_addr().unwrap();

    // Exercise enough of the pipeline that every layer's metrics exist.
    let replies = tcp_call(
        server.tcp_addr(),
        &[
            "CREATE STREAM ticks sym:STR,px:FLOAT",
            "REGISTER QUERY volume SELECT count() AS n FROM ticks [ROWS 2]",
            "INGEST ticks 100 AAPL,101.5",
            "INGEST ticks 200 MSFT,52.25",
            "PUMP",
        ],
    );
    assert!(replies.iter().all(|r| r.starts_with("OK")), "{replies:?}");

    let (status, body) = http(http_addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let local = server.engine().registry().render();
    assert_eq!(
        normalize_exposition(&body),
        normalize_exposition(&local),
        "/metrics must be the Registry exposition, byte-identical modulo values"
    );
    server.shutdown();
}

#[test]
fn server_counters_match_client_observed_traffic() {
    let mut server = start_server();
    let http_addr = server.http_addr().unwrap();

    let cmds = [
        "CREATE STREAM s v:INT",
        "REGISTER QUERY q SELECT count() AS n FROM s [ROWS 1]",
        "INGEST s 1 1",
        "PUMP",
        "GET q",
    ];
    let replies = tcp_call(server.tcp_addr(), &cmds);
    // GET q returns ROW + OK; tcp_call reads one frame per command, so
    // one ROW frame is still queued — it was transmitted regardless.
    assert!(replies.last().unwrap().starts_with("ROW "), "{replies:?}");

    let (_, body) = http(http_addr, "GET", "/metrics", "");
    // Exactly the five commands this client sent were dispatched.
    assert_eq!(
        counter_value(&body, "evdb_server_requests_total"),
        cmds.len() as u64,
        "request counter must match the client's command count"
    );
    // One TCP connection plus the in-flight HTTP request itself.
    assert_eq!(counter_value(&body, "evdb_server_connections_total"), 2);
    assert_eq!(counter_value(&body, "evdb_server_http_requests_total"), 1);
    assert_eq!(counter_value(&body, "evdb_server_errors_total"), 0);
    server.shutdown();
}

#[test]
fn http_ingest_query_and_pump_round_trip() {
    let mut server = start_server();
    let addr = server.http_addr().unwrap();
    tcp_call(
        server.tcp_addr(),
        &[
            "CREATE STREAM s v:INT",
            "REGISTER QUERY q SELECT count() AS n FROM s [ROWS 2]",
        ],
    );

    let (status, body) = http(addr, "POST", "/ingest/s", "1 1\n2 2\n");
    assert_eq!((status, body.as_str()), (200, "staged=2\n"));
    let (status, body) = http(addr, "POST", "/pump", "");
    assert_eq!(status, 200);
    assert!(body.starts_with("captured=2"), "{body}");
    let (status, body) = http(addr, "GET", "/query/q", "");
    assert_eq!((status, body.as_str()), (200, "2\n"));

    // Error mapping: unknown stream → 404 with the typed error body.
    let (status, body) = http(addr, "POST", "/ingest/nosuch", "1 1\n");
    assert_eq!(status, 404);
    assert!(body.contains("ERR not_found"), "{body}");
    let (status, _) = http(addr, "GET", "/query/nosuch", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/nosuch", "");
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn sse_subscription_streams_updates() {
    let mut server = start_server();
    let http_addr = server.http_addr().unwrap();
    tcp_call(
        server.tcp_addr(),
        &["CREATE STREAM s v:INT", "REGISTER QUERY q SELECT v FROM s"],
    );

    // Open the SSE stream and confirm the event-stream handshake.
    let mut sse = TcpStream::connect(http_addr).unwrap();
    sse.write_all(b"GET /subscribe/q HTTP/1.1\r\nHost: test\r\n\r\n")
        .unwrap();
    sse.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let mut received = String::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !received.contains("text/event-stream") {
        assert!(Instant::now() < deadline, "no SSE handshake: {received}");
        let mut buf = [0u8; 4096];
        if let Ok(n) = sse.read(&mut buf) {
            received.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
    }

    // Produce an event; the subscriber must see the signed delta.
    tcp_call(server.tcp_addr(), &["INGEST s 7 42", "PUMP"]);
    while !received.contains("data: q + 42\n\n") {
        assert!(
            Instant::now() < deadline,
            "SSE update never arrived: {received}"
        );
        let mut buf = [0u8; 4096];
        if let Ok(n) = sse.read(&mut buf) {
            received.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
    }
    server.shutdown();
}
