//! Integration spanning every crate: a database trigger creates internal
//! messages (fast path) on a local staging area, the distribution layer
//! forwards them across a lossy simulated link to a remote node, and a
//! consumer on the remote node processes them — trigger → queue →
//! network → queue → consumer, with nothing lost and nothing duplicated.

use std::sync::Arc;

use evdb::dist::{LinkConfig, Node, QueueForwarder, SimNetwork};
use evdb::queue::QueueConfig;
use evdb::storage::{TriggerOps, TriggerTiming};
use evdb::types::{Clock, DataType, Record, Schema, SimClock, TimestampMs, Value};
use std::sync::Mutex;

#[test]
fn trigger_to_remote_consumer() {
    let clock = SimClock::new(TimestampMs(0));
    let local = Node::new("local", clock.clone()).unwrap();
    let remote = Node::new("remote", clock.clone()).unwrap();

    // Application table on the local node.
    local
        .db()
        .create_table(
            "orders",
            Schema::of(&[("oid", DataType::Int), ("amt", DataType::Float)]),
            "oid",
        )
        .unwrap();

    // Outbox queues on both nodes.
    let payload = Schema::of(&[("oid", DataType::Int), ("amt", DataType::Float)]);
    for node in [&local, &remote] {
        node.queues()
            .create_queue(
                "outbox",
                Arc::clone(&payload),
                QueueConfig::default().visibility_timeout(400).max_attempts(100),
            )
            .unwrap();
    }
    remote.queues().subscribe("outbox", "billing").unwrap();

    // The forwarder must subscribe *before* messages are enqueued:
    // consumer groups see messages from subscription time on (no
    // backfill, like any pub/sub registration).
    let mut fwd = QueueForwarder::new(&local, "outbox", "remote", "outbox").unwrap();

    // Trigger: every large order becomes an internal message. The
    // trigger runs inside the inserting transaction, so it cannot use
    // `enqueue_internal` on that same transaction from the outside —
    // instead it buffers and the app flushes them in its own txn (the
    // documented capture pattern); here we use the client path for
    // simplicity and the fast path is covered by E7.
    let pending: Arc<Mutex<Vec<Record>>> = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&pending);
    local
        .db()
        .create_trigger(
            "big_orders",
            "orders",
            TriggerTiming::After,
            TriggerOps::INSERT,
            Some(evdb::expr::parse("amt > 100").unwrap()),
            Arc::new(move |ev| {
                p2.lock().unwrap().push(ev.row().clone());
                Ok(())
            }),
        )
        .unwrap();

    // Insert a mix of orders.
    let mut expected = Vec::new();
    for i in 0..50i64 {
        let amt = (i * 7 % 250) as f64;
        local
            .db()
            .insert(
                "orders",
                Record::from_iter([Value::Int(i), Value::Float(amt)]),
            )
            .unwrap();
        if amt > 100.0 {
            expected.push(i);
        }
    }
    // Flush trigger-captured messages into the outbox (internal path).
    {
        let msgs: Vec<Record> = std::mem::take(&mut *pending.lock().unwrap());
        let db = local.db();
        let mut tx = db.begin();
        let mut handles = Vec::new();
        for m in msgs {
            handles.push(
                local
                    .queues()
                    .enqueue_internal(&mut tx, "outbox", m, "trigger:big_orders")
                    .unwrap(),
            );
        }
        tx.commit().unwrap();
        for h in handles {
            local.queues().complete_internal(h);
        }
    }
    assert_eq!(local.queues().depth("outbox").unwrap(), expected.len());

    // Forward across a 25%-lossy link.
    let mut net = SimNetwork::new(
        LinkConfig {
            latency_ms: 15,
            loss: 0.25,
            ..Default::default()
        },
        7,
    );
    let mut received = Vec::new();
    for _ in 0..5_000 {
        let now = clock.now();
        fwd.pump(&local, &mut net, now).unwrap();
        for pkt in net.poll(now) {
            if QueueForwarder::is_data(&pkt) {
                let ack = QueueForwarder::receive(&remote, &pkt).unwrap();
                net.send(ack, now);
            } else if fwd.owns_ack(&pkt) {
                fwd.on_ack(&local, &pkt).unwrap();
            }
        }
        for d in remote.queues().dequeue("outbox", "billing", 16).unwrap() {
            received.push(d.message.payload.get(0).unwrap().as_int().unwrap());
            remote.queues().ack(&d).unwrap();
        }
        if received.len() >= expected.len() && local.queues().depth("outbox").unwrap() == 0 {
            break;
        }
        clock.advance(60);
    }

    received.sort_unstable();
    assert_eq!(received, expected, "exactly the large orders, exactly once");
    assert_eq!(local.queues().depth("outbox").unwrap(), 0);
    assert_eq!(remote.queues().depth("outbox").unwrap(), 0);
}
