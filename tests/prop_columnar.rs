//! Property tests for the columnar segment codec (DESIGN.md D14):
//! encode/decode round-trips under arbitrary payloads (NULLs, NaN,
//! hostile strings, raw bytes), arbitrary zone sizes, and single-byte
//! corruption detection via the trailing CRC.

use std::sync::Arc;

use proptest::prelude::*;

use evdb::storage::columnar::{decode_segment, encode_segment};
use evdb::storage::StoredEvent;
use evdb::types::{DataType, Record, Schema, TimestampMs, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[\\x00-\\x7f]{0,24}".prop_map(|s| Value::from(s.as_str())),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::bytes),
        any::<i64>().prop_map(|t| Value::Timestamp(TimestampMs(t))),
    ]
}

/// A batch of stored events over a fixed column count, with monotone
/// seqs (the store invariant) but arbitrary ids, times and payloads.
fn arb_batch(ncols: usize) -> impl Strategy<Value = Vec<StoredEvent>> {
    proptest::collection::vec(
        (
            any::<u64>(),
            any::<i64>(),
            any::<bool>(),
            proptest::collection::vec(arb_value(), ncols..ncols + 1),
        ),
        0..48,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (id, ts, retraction, values))| StoredEvent {
                seq: i as u64,
                id,
                timestamp: TimestampMs(ts),
                retraction,
                payload: Record::new(values),
            })
            .collect()
    })
}

fn schema(ncols: usize) -> Arc<Schema> {
    let names: Vec<String> = (0..ncols).map(|i| format!("c{i}")).collect();
    let cols: Vec<(&str, DataType)> = names.iter().map(|n| (n.as_str(), DataType::Int)).collect();
    Schema::of(&cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every row comes back bit-exact (order, seq, id, ts, retraction
    /// bit, payload — NULLs and NaN included), for any zone size.
    #[test]
    fn segment_round_trips(
        ncols in 0usize..4,
        zone_rows in 1usize..9,
        seed_rows in arb_batch(3),
    ) {
        let schema = schema(ncols);
        let rows: Vec<StoredEvent> = seed_rows
            .into_iter()
            .map(|mut r| {
                let mut v: Vec<Value> = r.payload.values().to_vec();
                v.truncate(ncols);
                while v.len() < ncols {
                    v.push(Value::Null);
                }
                r.payload = Record::new(v);
                r
            })
            .collect();

        let buf = encode_segment(&schema, &rows, zone_rows);
        let seg = decode_segment(buf).unwrap();
        prop_assert_eq!(seg.rows(), rows.len());
        prop_assert_eq!(seg.zone_rows, zone_rows);
        prop_assert_eq!(seg.zones.len(), rows.len().div_ceil(zone_rows));
        let back = seg.decode_all().unwrap();
        prop_assert_eq!(back, rows);

        // Zone directory bounds are sound: every row sits inside its
        // zone's seq/ts envelope (what pruning relies on).
        let mut i = 0;
        for (zi, z) in seg.zones.iter().enumerate() {
            for r in seg.decode_zone(zi).unwrap() {
                prop_assert!(z.seq_min <= r.seq && r.seq <= z.seq_max);
                prop_assert!(z.ts_min <= r.timestamp && r.timestamp <= z.ts_max);
                i += 1;
            }
        }
        prop_assert_eq!(i, rows.len());
    }

    /// Flipping any single byte of an encoded segment is detected: the
    /// CRC spans everything before it, and the CRC field itself then
    /// mismatches the recomputation.
    #[test]
    fn segment_detects_single_byte_corruption(
        zone_rows in 1usize..5,
        rows in arb_batch(2),
        flip_pos in any::<u64>(),
        bits in any::<u8>(),
    ) {
        let schema = schema(2);
        let buf = encode_segment(&schema, &rows, zone_rows);
        let pos = (flip_pos % buf.len() as u64) as usize;
        let bits = if bits == 0 { 1 } else { bits };
        let mut bad = buf.clone();
        bad[pos] ^= bits;
        match decode_segment(bad) {
            Err(_) => {}
            // Decoding may *appear* to succeed only if lazily decoded
            // zone bodies still hold the damage — but the CRC covers
            // the whole buffer, so even that must have failed already.
            Ok(_) => prop_assert!(false, "corruption at byte {pos} went undetected"),
        }
    }
}

/// The codec survives deliberately hostile payloads through a real
/// file round trip, exactly as the store writes them.
#[test]
fn hostile_payloads_round_trip() {
    let schema = Schema::of(&[("a", DataType::Str), ("b", DataType::Bytes)]);
    let rows: Vec<StoredEvent> = [
        vec![Value::from("quote ' and unicode → 日本"), Value::bytes(vec![0, 1, 255])],
        vec![Value::Null, Value::Null],
        vec![Value::from("\0embedded\0nul\0"), Value::bytes(vec![])],
        vec![Value::Float(f64::NAN), Value::Int(i64::MIN)],
        vec![Value::from(""), Value::Timestamp(TimestampMs(i64::MAX))],
    ]
    .into_iter()
    .enumerate()
    .map(|(i, values)| StoredEvent {
        seq: i as u64,
        id: i as u64 ^ u64::MAX,
        timestamp: TimestampMs(if i % 2 == 0 { i64::MIN } else { i64::MAX }),
        retraction: i % 2 == 1,
        payload: Record::new(values),
    })
    .collect();

    let buf = encode_segment(&schema, &rows, 2);
    let path = std::env::temp_dir().join(format!("evdb-prop-seg-{}", std::process::id()));
    std::fs::write(&path, &buf).unwrap();
    let seg = decode_segment(std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(seg.decode_all().unwrap(), rows);
    std::fs::remove_file(&path).unwrap();
}
