//! The historical event store end to end (DESIGN.md D14): every
//! evaluated event lands in its stream's columnar segment store; the
//! pump drives freezing and compaction; historical queries prune on
//! zone maps; and REPLAY re-feeds the CQ runtime such that a query
//! registered *after the fact* converges to byte-identical compacted
//! results (DeltaLog `rows()`) as one that watched the stream live.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use evdb::core::history::HistoryConfig;
use evdb::core::server::ServerConfig;
use evdb::core::EventServer;
use evdb::cq::delta::DeltaLog;
use evdb::storage::{CompactionPolicy, SegmentStoreOptions};
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "evdb-history-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn server() -> EventServer {
    EventServer::in_memory(ServerConfig {
        clock: SimClock::new(TimestampMs(0)),
        ..Default::default()
    })
    .unwrap()
}

fn small_history() -> HistoryConfig {
    HistoryConfig {
        store: SegmentStoreOptions {
            freeze_rows: 16,
            zone_rows: 8,
            ..Default::default()
        },
        compaction: Some(CompactionPolicy {
            max_segments: 4,
            small_rows: 1_000,
            max_merge: 8,
        }),
    }
}

fn capture_rows(server: &EventServer, query: &str) -> Arc<Mutex<DeltaLog>> {
    let log = Arc::new(Mutex::new(DeltaLog::new()));
    let sink = Arc::clone(&log);
    server
        .on_query(query, Arc::new(move |e| sink.lock().unwrap().observe(e)))
        .unwrap();
    log
}

#[test]
fn replay_reproduces_live_query_results_byte_identically() {
    let dir = tmp("equiv");
    let server = server();
    let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
    server.create_stream("ticks", Arc::clone(&schema)).unwrap();
    server.enable_history(&dir, small_history()).unwrap();
    assert!(server.enable_history(&dir, small_history()).is_err());

    const CQL: &str = "SELECT sym, avg(px) AS apx FROM ticks [RANGE 1 s] GROUP BY sym";
    server.register_cql("live", CQL).unwrap();
    let live = capture_rows(&server, "live");

    let syms = ["IBM", "MSFT", "AAPL"];
    for i in 0..200i64 {
        server
            .ingest(
                "ticks",
                TimestampMs(i * 100),
                Record::from_iter([
                    Value::from(syms[(i % 3) as usize]),
                    Value::Float(100.0 + i as f64),
                ]),
            )
            .unwrap();
    }
    server.flush_stream("ticks", TimestampMs(i64::MAX)).unwrap();
    let live_rows = live.lock().unwrap().rows();
    assert!(!live_rows.is_empty());

    // Pump ticks drive compaction (one merge per stream per pump).
    let history = server.history().unwrap();
    for _ in 0..64 {
        server.pump().unwrap();
    }
    let store = history.store("ticks").unwrap();
    assert!(
        store.segment_count() <= 4,
        "compaction did not converge: {} segments",
        store.segment_count()
    );
    assert!(store.stats_snapshot().compactions > 0);

    // All 200 events survive freeze + compaction, in arrival order.
    let replayed = server.replay("ticks", 0, u64::MAX).unwrap();
    assert_eq!(replayed.len(), 200);
    assert!(replayed.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));

    // A query registered only now, fed purely by REPLAY, must converge
    // to byte-identical compacted rows.
    server.register_cql("aftermath", CQL).unwrap();
    let after = capture_rows(&server, "aftermath");
    let (fed, _) = server.replay_into_runtime("ticks", 0, u64::MAX).unwrap();
    assert_eq!(fed, 200);
    server.flush_stream("ticks", TimestampMs(i64::MAX)).unwrap();
    assert_eq!(after.lock().unwrap().rows(), live_rows);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn historical_queries_prune_segments_and_zones() {
    let dir = tmp("prune");
    let server = server();
    let schema = Schema::of(&[("meter", DataType::Int), ("kwh", DataType::Float)]);
    server.create_stream("meters", Arc::clone(&schema)).unwrap();
    server
        .enable_history(
            &dir,
            HistoryConfig {
                store: SegmentStoreOptions {
                    freeze_rows: 64,
                    zone_rows: 16,
                    ..Default::default()
                },
                compaction: None,
            },
        )
        .unwrap();

    // meter ids ascend, so zone min/max bounds are tight and selective
    // point queries can skip almost everything.
    for i in 0..1024i64 {
        server
            .ingest(
                "meters",
                TimestampMs(i),
                Record::from_iter([Value::Int(i), Value::Float(i as f64 / 10.0)]),
            )
            .unwrap();
    }
    let history = server.history().unwrap();
    let store = history.store("meters").unwrap();
    store.freeze().unwrap();
    assert!(store.segment_count() >= 16);

    let hits = server.query_history("meters", "meter = 777").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].payload.get(0), Some(&Value::Int(777)));

    let stats = store.stats_snapshot();
    assert!(
        stats.segments_pruned * 10 >= stats.segments_considered * 9,
        "expected >=90% of segments pruned, got {}/{}",
        stats.segments_pruned,
        stats.segments_considered
    );

    // Unknown stream and disabled-history errors are typed.
    assert!(server.query_history("ghost", "meter == 1").is_err());
    let bare = server;
    drop(bare);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn history_is_readable_across_server_restarts_before_any_append() {
    let dir = tmp("restart");
    let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
    {
        let server = server();
        server.create_stream("ticks", Arc::clone(&schema)).unwrap();
        server.enable_history(&dir, small_history()).unwrap();
        for i in 0..20i64 {
            server
                .ingest(
                    "ticks",
                    TimestampMs(i),
                    Record::from_iter([Value::from("IBM"), Value::Float(i as f64)]),
                )
                .unwrap();
        }
        server.history().unwrap().store("ticks").unwrap().freeze().unwrap();
    }

    // A fresh process must see the recorded history on its very first
    // read — without waiting for an append to lazily open the store.
    let server = server();
    server.create_stream("ticks", Arc::clone(&schema)).unwrap();
    server.enable_history(&dir, small_history()).unwrap();
    let replayed = server.replay("ticks", 0, u64::MAX).unwrap();
    assert_eq!(replayed.len(), 20);
    let hits = server.query_history("ticks", "px >= 18").unwrap();
    assert_eq!(hits.len(), 2);
    // Unknown streams still get the typed error, and reads never
    // create store directories for them.
    assert!(server.replay("ghost", 0, u64::MAX).is_err());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rebaseline_by_replay_rebuilds_derived_state_after_truncation() {
    let dir = tmp("rebase");
    let server = server();
    let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
    server.create_stream("ticks", Arc::clone(&schema)).unwrap();
    server.enable_history(&dir, small_history()).unwrap();

    for i in 0..50i64 {
        server
            .ingest(
                "ticks",
                TimestampMs(i * 100),
                Record::from_iter([Value::from("IBM"), Value::Float(i as f64)]),
            )
            .unwrap();
    }

    // A consumer arriving after the journal history is gone: rebuild its
    // windows from the historical store instead.
    server
        .register_cql(
            "latecomer",
            "SELECT count() AS n FROM ticks [RANGE 100 s]",
        )
        .unwrap();
    let log = capture_rows(&server, "latecomer");
    let replayed = server.rebaseline_by_replay("ticks", 0).unwrap();
    assert_eq!(replayed, 50);
    server.flush_stream("ticks", TimestampMs(i64::MAX)).unwrap();
    let rows = log.lock().unwrap().rows();
    assert_eq!(rows, vec!["[50]".to_string()]);

    std::fs::remove_dir_all(&dir).unwrap();
}
