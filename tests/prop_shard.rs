//! Property tests for sharded-pump routing: the partition function is
//! deterministic and total, every event lands on exactly one shard,
//! same-key events always share a shard, and the full pipeline
//! processes every staged event exactly once for arbitrary shard
//! counts.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use evdb::core::server::ServerConfig;
use evdb::core::shard::shard_for;
use evdb::core::{spawn_pump_with, EventServer, PumpMode};
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

proptest! {
    /// In range, and a pure function of (key, n).
    #[test]
    fn shard_for_is_deterministic_and_in_range(
        key in "[a-z0-9/]{0,24}",
        n in 1..=16usize,
    ) {
        let s = shard_for(&key, n);
        prop_assert!(s < n);
        prop_assert_eq!(s, shard_for(&key, n));
    }

    /// Router assignment is total and exclusive: over an arbitrary
    /// event trace, each event is assigned to exactly one shard, and
    /// all events with the same partition key share that shard — for
    /// every shard count (re-sharding churn preserves the invariant
    /// per count).
    #[test]
    fn same_key_same_shard_for_every_shard_count(
        keys in proptest::collection::vec(0..40u32, 1..300),
        counts in proptest::collection::vec(1..=12usize, 1..4),
    ) {
        for &n in &counts {
            let mut assigned: HashMap<String, usize> = HashMap::new();
            let mut total = 0usize;
            for k in &keys {
                let key = format!("stream/{k}");
                let shard = shard_for(&key, n);
                prop_assert!(shard < n);
                let prev = *assigned.entry(key).or_insert(shard);
                prop_assert_eq!(prev, shard, "key re-routed to a different shard");
                total += 1;
            }
            prop_assert_eq!(total, keys.len());
        }
    }
}

proptest! {
    // End-to-end cases spin real thread pipelines; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary traces through an actual sharded pump: every staged
    /// event is captured, routed and evaluated exactly once, the
    /// busy-shard count never exceeds the number of distinct partition
    /// keys, and the queues drain.
    #[test]
    fn every_event_processed_exactly_once(
        events in proptest::collection::vec((0..6u32, -1000..1000i64), 1..400),
        workers in 1..=5usize,
    ) {
        let server = Arc::new(
            EventServer::in_memory(ServerConfig {
                clock: SimClock::new(TimestampMs(0)),
                ..Default::default()
            })
            .unwrap(),
        );
        let schema = Schema::of(&[("v", DataType::Int)]);
        for s in 0..6 {
            server
                .create_stream(&format!("s{s}"), Arc::clone(&schema))
                .unwrap();
        }
        let mut distinct = std::collections::HashSet::new();
        for (i, (stream, v)) in events.iter().enumerate() {
            distinct.insert(*stream);
            server
                .ingest_async(
                    &format!("s{stream}"),
                    TimestampMs(i as i64),
                    Record::from_iter([Value::Int(*v)]),
                )
                .unwrap();
        }

        let handle = spawn_pump_with(
            &server,
            Duration::from_millis(1),
            PumpMode::Sharded { workers },
        );
        let n = events.len() as u64;
        let t0 = Instant::now();
        while server.metrics().snapshot().events_processed < n {
            prop_assert!(t0.elapsed() < Duration::from_secs(30), "pump stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        prop_assert_eq!(handle.errors(), 0);
        handle.stop();

        let snap = server.metrics().snapshot();
        prop_assert_eq!(snap.events_captured, n);
        prop_assert_eq!(snap.events_processed, n);
        let shards = server.metrics().shard_snapshots();
        prop_assert_eq!(shards.len(), workers);
        prop_assert_eq!(shards.iter().map(|s| s.events_routed).sum::<u64>(), n);
        prop_assert!(shards.iter().all(|s| s.queue_depth == 0));
        prop_assert!(
            shards.iter().filter(|s| s.events_routed > 0).count() <= distinct.len(),
            "more busy shards than distinct partition keys"
        );
    }
}
