//! Property test: the indexed matcher is exactly equivalent to the scan
//! baseline on randomly generated rule sets and events — the correctness
//! half of the E3/E4 scalability claims.

use std::sync::Arc;

use proptest::prelude::*;

use evdb::rules::{IndexedMatcher, Matcher, Rule, ScanMatcher};
use evdb::types::{DataType, Record, Schema, Value};

fn schema() -> Arc<Schema> {
    Schema::of(&[
        ("sym", DataType::Str),
        ("px", DataType::Float),
        ("qty", DataType::Int),
    ])
}

/// Generate rule predicate text from a constrained template grammar so
/// every rule parses and type-checks by construction.
fn arb_rule_text() -> impl Strategy<Value = String> {
    let sym = 0u8..6;
    let px = 0.0f64..200.0;
    let qty = 0i64..100;
    prop_oneof![
        (sym.clone()).prop_map(|s| format!("sym = 'S{s}'")),
        (px.clone()).prop_map(|p| format!("px > {p:.2}")),
        (px.clone()).prop_map(|p| format!("px <= {p:.2}")),
        (px.clone(), 0.1f64..50.0)
            .prop_map(|(lo, w)| format!("px BETWEEN {lo:.2} AND {:.2}", lo + w)),
        (qty.clone()).prop_map(|q| format!("qty = {q}")),
        (sym.clone(), sym.clone()).prop_map(|(a, b)| format!("sym IN ('S{a}', 'S{b}')")),
        (sym.clone(), px.clone()).prop_map(|(s, p)| format!("sym = 'S{s}' AND px > {p:.2}")),
        (qty.clone(), qty).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            format!("qty >= {lo} AND qty <= {hi}")
        }),
        (px.clone()).prop_map(|p| format!("px * 2 > {p:.2}")), // residual-only
        (sym, px).prop_map(|(s, p)| format!("sym = 'S{s}' OR px < {p:.2}")), // residual
        Just("qty != 50".to_string()),
        Just("length(sym) = 2".to_string()),
        Just("NOT px > 100".to_string()),
    ]
}

fn arb_event() -> impl Strategy<Value = Record> {
    (0u8..6, 0.0f64..200.0, 0i64..100).prop_map(|(s, p, q)| {
        Record::from_iter([
            Value::from(format!("S{s}")),
            Value::Float((p * 100.0).round() / 100.0),
            Value::Int(q),
        ])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn indexed_equals_scan(
        rule_texts in proptest::collection::vec(arb_rule_text(), 1..40),
        events in proptest::collection::vec(arb_event(), 1..40),
    ) {
        let schema = schema();
        let mut scan = ScanMatcher::new(Arc::clone(&schema));
        let mut idx = IndexedMatcher::new(Arc::clone(&schema));
        for (i, text) in rule_texts.iter().enumerate() {
            let expr = evdb::expr::parse(text).unwrap();
            scan.add_rule(Rule::new(i as u64, "", expr.clone())).unwrap();
            idx.add_rule(Rule::new(i as u64, "", expr)).unwrap();
        }
        for ev in &events {
            prop_assert_eq!(
                scan.match_record(ev).unwrap(),
                idx.match_record(ev).unwrap(),
                "disagreement on {} with rules {:?}", ev, rule_texts
            );
        }
    }

    #[test]
    fn equivalence_survives_churn(
        rule_texts in proptest::collection::vec(arb_rule_text(), 4..30),
        remove_mask in proptest::collection::vec(any::<bool>(), 4..30),
        events in proptest::collection::vec(arb_event(), 1..20),
    ) {
        let schema = schema();
        let mut scan = ScanMatcher::new(Arc::clone(&schema));
        let mut idx = IndexedMatcher::new(Arc::clone(&schema));
        for (i, text) in rule_texts.iter().enumerate() {
            let expr = evdb::expr::parse(text).unwrap();
            scan.add_rule(Rule::new(i as u64, "", expr.clone())).unwrap();
            idx.add_rule(Rule::new(i as u64, "", expr)).unwrap();
        }
        // Remove a random subset from both.
        for (i, remove) in remove_mask.iter().enumerate() {
            if *remove && i < rule_texts.len() {
                scan.remove_rule(i as u64).unwrap();
                idx.remove_rule(i as u64).unwrap();
            }
        }
        prop_assert_eq!(scan.len(), idx.len());
        for ev in &events {
            prop_assert_eq!(
                scan.match_record(ev).unwrap(),
                idx.match_record(ev).unwrap()
            );
        }
    }
}
