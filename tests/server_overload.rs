//! Socket-level overload regressions (DESIGN.md D13): each admission
//! policy's behavior as observed by a real network client —
//!
//! * `Reject` → a typed `ERR overloaded` reply, the triggering write
//!   rolled back, and the client-observed rejection count equal to the
//!   admission counters;
//! * `Block` → the producer's socket stalls (no reply) until another
//!   connection pumps the buffer down;
//! * `ShedLowest` → every offer acknowledged, the overflow counted in
//!   `evdb_ingest_shed_total`, and `offered == evaluated + shed` exact.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use evdb::core::server::ServerConfig;
use evdb::core::{EventServer, OverloadPolicy};
use evdb::net::frame::{encode_frame_vec, FrameDecoder};
use evdb::net::{NetConfig, NetServer};
use evdb::types::{SimClock, TimestampMs};

/// A blocking protocol client over a real socket.
struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .unwrap();
        Client {
            stream,
            decoder: FrameDecoder::new(),
        }
    }

    fn send(&mut self, cmd: &str) {
        self.stream
            .write_all(&encode_frame_vec(cmd.as_bytes()))
            .unwrap();
    }

    /// Next frame, waiting up to `wait`. `None` on timeout.
    fn try_recv(&mut self, wait: Duration) -> Option<String> {
        let deadline = Instant::now() + wait;
        loop {
            if let Some(frame) = self.decoder.next_frame() {
                return Some(String::from_utf8(frame.unwrap()).unwrap());
            }
            if Instant::now() >= deadline {
                return None;
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return None,
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(_) => {} // timeout tick
            }
        }
    }

    fn recv(&mut self) -> String {
        self.try_recv(Duration::from_secs(5))
            .expect("timed out waiting for a reply")
    }

    /// Round trip: send, read one reply.
    fn call(&mut self, cmd: &str) -> String {
        self.send(cmd);
        self.recv()
    }
}

fn server_with(capacity: usize, overload: OverloadPolicy) -> NetServer {
    let engine = Arc::new(
        EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            ingest_capacity: capacity,
            overload,
            ..Default::default()
        })
        .unwrap(),
    );
    NetServer::start(
        engine,
        NetConfig {
            http_addr: None,
            pump_interval: None, // tests control draining explicitly
            ..Default::default()
        },
    )
    .unwrap()
}

/// A server with connection-lifecycle limits (cap + idle deadline) and
/// the HTTP frontend enabled, for the D13 connection-contract tests.
fn server_limited(max_connections: usize, idle_timeout: Option<Duration>) -> NetServer {
    let engine = Arc::new(
        EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            ..Default::default()
        })
        .unwrap(),
    );
    NetServer::start(
        engine,
        NetConfig {
            pump_interval: None,
            max_connections,
            idle_timeout,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Poll the shared connection gauge down to `expect` (teardown is
/// asynchronous after a client drop).
fn wait_active_connections(server: &NetServer, expect: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let active = server
            .hub()
            .active_connections
            .load(std::sync::atomic::Ordering::Relaxed);
        if active == expect {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "active_connections stuck at {active}, want {expect} (gauge leak?)"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn over_cap_tcp_connect_is_rejected_typed_and_counted() {
    let mut server = server_limited(2, None);
    let addr = server.tcp_addr();
    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    assert_eq!(a.call("PING"), "PONG");
    assert_eq!(b.call("PING"), "PONG");

    // Third connect: typed rejection frame, then EOF — never silence.
    let mut over = Client::connect(addr);
    assert_eq!(
        over.recv(),
        "ERR overloaded connection limit (2) reached"
    );
    assert_eq!(
        over.try_recv(Duration::from_secs(5)),
        None,
        "rejected connection must be closed after the error frame"
    );
    assert_eq!(server.metrics().conns_rejected.get(), 1);

    // Releasing a slot makes room: drop one admitted client, wait for
    // its teardown, and a fresh connect is served again.
    drop(b);
    wait_active_connections(&server, 1);
    let mut c = Client::connect(addr);
    assert_eq!(c.call("PING"), "PONG");
    assert_eq!(
        server.metrics().conns_rejected.get(),
        1,
        "the post-release connect must be admitted, not rejected"
    );
    server.shutdown();
}

#[test]
fn over_cap_http_connect_gets_503_and_counted() {
    let mut server = server_limited(1, None);
    // One TCP client consumes the whole (shared) budget…
    let mut holder = Client::connect(server.tcp_addr());
    assert_eq!(holder.call("PING"), "PONG");

    // …so an HTTP connect is refused with a full 503 response before
    // any request is read.
    let mut stream = TcpStream::connect(server.http_addr().unwrap()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap(); // server closes after the 503
    let response = String::from_utf8(response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 503 Service Unavailable"),
        "{response}"
    );
    assert!(response.contains("connection limit (1) reached"), "{response}");
    assert_eq!(server.metrics().conns_rejected.get(), 1);

    drop(holder);
    wait_active_connections(&server, 0);
    server.shutdown();
}

#[test]
fn idle_tcp_connection_is_reaped_releasing_thread_and_hub_slot() {
    let mut server = server_limited(16, Some(Duration::from_millis(200)));
    let mut c = Client::connect(server.tcp_addr());
    assert_eq!(c.call("CREATE STREAM s v:INT"), "OK");
    assert_eq!(c.call("REGISTER QUERY q SELECT v FROM s"), "OK");
    assert_eq!(c.call("SUBSCRIBE q"), "OK subscribed q");

    // Go silent. The reaper must announce the close (typed), then EOF.
    let reply = c
        .try_recv(Duration::from_secs(5))
        .expect("idle connection was never reaped");
    assert_eq!(reply, "ERR idle connection idle for 200ms, closing");
    assert_eq!(
        c.try_recv(Duration::from_secs(5)),
        None,
        "reaped connection must be closed"
    );

    // The reap released everything: hub slot, subscription, counted.
    wait_active_connections(&server, 0);
    assert_eq!(server.hub().active_subscriptions(), 0);
    assert_eq!(server.metrics().conns_reaped.get(), 1);
    assert_eq!(server.metrics().conns_rejected.get(), 0);
    server.shutdown();
}

#[test]
fn traffic_in_either_direction_defers_the_reaper() {
    let mut server = server_limited(16, Some(Duration::from_millis(250)));
    let mut c = Client::connect(server.tcp_addr());
    // Ping every ~80ms for well past the idle limit: each round trip
    // counts as traffic, so the connection must survive.
    let until = Instant::now() + Duration::from_millis(900);
    while Instant::now() < until {
        assert_eq!(c.call("PING"), "PONG", "live connection was reaped");
        std::thread::sleep(Duration::from_millis(80));
    }
    assert_eq!(server.metrics().conns_reaped.get(), 0);
    server.shutdown();
}

#[test]
fn oversized_http_header_section_is_bounded_with_431() {
    let mut server = server_limited(16, Some(Duration::from_secs(5)));
    let mut stream = TcpStream::connect(server.http_addr().unwrap()).unwrap();
    // A header section past MAX_HEAD_BYTES (8 KiB): the server must cut
    // it off with 431 instead of buffering without bound.
    stream.write_all(b"GET /metrics HTTP/1.1\r\n").unwrap();
    let filler = format!("X-Padding: {}\r\n", "a".repeat(1024));
    for _ in 0..16 {
        if stream.write_all(filler.as_bytes()).is_err() {
            break; // server already gave up on us — fine
        }
    }
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response); // server closes the socket
    let response = String::from_utf8_lossy(&response);
    assert!(
        response.starts_with("HTTP/1.1 431 "),
        "oversized head must be answered with 431, got: {response}"
    );
    wait_active_connections(&server, 0);
    server.shutdown();
}

#[test]
fn reject_surfaces_typed_error_and_exact_counters() {
    let mut server = server_with(2, OverloadPolicy::Reject);
    let mut c = Client::connect(server.tcp_addr());
    assert_eq!(c.call("CREATE STREAM s v:INT"), "OK");

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for i in 0..10 {
        let reply = c.call(&format!("INGEST s {i} {i}"));
        if reply == "OK staged" {
            accepted += 1;
        } else {
            assert!(
                reply.starts_with("ERR overloaded "),
                "rejection must be the typed overloaded error, got: {reply}"
            );
            rejected += 1;
        }
    }
    assert_eq!(accepted, 2, "exactly the capacity is admitted");
    assert_eq!(rejected, 8);

    // The client-visible STATS line and the admission counters agree
    // with what the client experienced, exactly.
    assert_eq!(
        c.call("STATS"),
        "OK depth=2 shed=0 rejected=8 dropped_capture=0"
    );
    let ac = server.engine().admission().clone();
    assert_eq!(ac.rejected_total(), rejected);
    assert_eq!(ac.shed_total(), 0);

    // After a drain, capacity is available again.
    let pump = c.call("PUMP");
    assert!(pump.starts_with("OK captured=2"), "{pump}");
    assert_eq!(c.call("INGEST s 100 100"), "OK staged");
    server.shutdown();
}

#[test]
fn reject_rolls_back_the_triggering_insert() {
    let mut server = server_with(1, OverloadPolicy::Reject);
    let engine = Arc::clone(server.engine());
    let mut c = Client::connect(server.tcp_addr());
    assert_eq!(c.call("CREATE TABLE t k:INT KEY k"), "OK");
    assert_eq!(c.call("CAPTURE t TRIGGER"), "OK t_changes");

    assert_eq!(c.call("INSERT t 1"), "OK inserted"); // fills capacity 1
    let reply = c.call("INSERT t 2");
    assert!(
        reply.starts_with("ERR overloaded "),
        "second insert must be rejected: {reply}"
    );

    // The rejected insert's row must NOT be in the table: the trigger
    // capture runs inside the write, so rejection rolled it back.
    let rows = engine
        .db()
        .select("t", &evdb::expr::parse("k >= 0").unwrap())
        .unwrap();
    assert_eq!(rows.len(), 1, "rejected write must be rolled back");
    assert_eq!(
        engine.admission().rejected_total(),
        1,
        "exactly one client-visible rejection"
    );
    server.shutdown();
}

#[test]
fn block_stalls_the_producer_socket_until_drained() {
    let mut server = server_with(1, OverloadPolicy::Block);
    let mut producer = Client::connect(server.tcp_addr());
    assert_eq!(producer.call("CREATE STREAM s v:INT"), "OK");

    // Three offers into capacity 1: the first stages and replies, the
    // second parks the connection's reader inside admission, the third
    // sits unread in socket buffers. No error, no shed — just silence.
    producer.send("INGEST s 1 1");
    producer.send("INGEST s 2 2");
    producer.send("INGEST s 3 3");
    assert_eq!(producer.recv(), "OK staged");
    assert_eq!(
        producer.try_recv(Duration::from_millis(400)),
        None,
        "producer must be stalled by backpressure, not answered"
    );

    // A second connection drains; each pump frees one slot, unblocking
    // the parked offer, until the producer has all three acks.
    let mut drainer = Client::connect(server.tcp_addr());
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut acks = 1;
    while acks < 3 {
        assert!(Instant::now() < deadline, "blocked producer never unblocked");
        let reply = drainer.call("PUMP");
        assert!(reply.starts_with("OK captured="), "{reply}");
        while let Some(frame) = producer.try_recv(Duration::from_millis(100)) {
            assert_eq!(frame, "OK staged");
            acks += 1;
        }
    }

    // Block never sheds or rejects: every offer was eventually admitted.
    let ac = server.engine().admission().clone();
    assert_eq!(ac.shed_total(), 0);
    assert_eq!(ac.rejected_total(), 0);
    server.shutdown();
}

#[test]
fn shed_lowest_accounts_for_every_offer() {
    let mut server = server_with(3, OverloadPolicy::ShedLowest);
    let mut c = Client::connect(server.tcp_addr());
    assert_eq!(c.call("CREATE STREAM s v:INT"), "OK");

    // Every offer is acknowledged under ShedLowest — overflow evicts a
    // staged event instead of refusing the new one.
    let offered = 10u64;
    for i in 0..offered {
        assert_eq!(c.call(&format!("INGEST s {i} {i}")), "OK staged");
    }
    assert_eq!(
        c.call("STATS"),
        "OK depth=3 shed=7 rejected=0 dropped_capture=0"
    );

    // Drain and balance the books: offered == evaluated + shed, exactly
    // (the in-process invariant, observed over a real socket).
    let pump = c.call("PUMP");
    assert!(pump.starts_with("OK captured=3"), "{pump}");
    let ac = server.engine().admission().clone();
    assert_eq!(ac.shed_total(), 7);
    assert_eq!(ac.rejected_total(), 0);
    assert_eq!(offered, 3 + ac.shed_total());
    server.shutdown();
}
