//! Integration: queue state survives a crash (drop without checkpoint)
//! — the §2.2.b.ii.3 "recoverability, availability, transactional
//! support" claim, end to end through the storage engine.

use std::sync::Arc;

use evdb::queue::{QueueConfig, QueueManager};
use evdb::storage::{Database, DbOptions};
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "evdb-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn open(dir: &std::path::Path, clock: Arc<SimClock>) -> (Arc<Database>, QueueManager) {
    let db = Database::open(
        dir,
        DbOptions {
            clock,
            ..Default::default()
        },
    )
    .unwrap();
    let q = QueueManager::attach(Arc::clone(&db)).unwrap();
    (db, q)
}

#[test]
fn queue_survives_crash_and_resumes_delivery() {
    let dir = tmpdir("qrec");
    let clock = SimClock::new(TimestampMs(1_000));

    // Session 1: enqueue 10, consume 3 (acked), leave 2 in flight.
    {
        let (_db, q) = open(&dir, clock.clone());
        q.create_queue(
            "work",
            Schema::of(&[("job", DataType::Int)]),
            QueueConfig::default().visibility_timeout(5_000),
        )
        .unwrap();
        q.subscribe("work", "workers").unwrap();
        for i in 0..10 {
            q.enqueue("work", Record::from_iter([Value::Int(i)]), "producer")
                .unwrap();
        }
        let batch = q.dequeue("work", "workers", 3).unwrap();
        for d in &batch {
            q.ack(d).unwrap();
        }
        let _inflight = q.dequeue("work", "workers", 2).unwrap();
        // Crash: drop everything without acking the in-flight pair.
    }

    // Session 2: recover. Acked messages must be gone; ready messages
    // immediately deliverable; in-flight pair redelivered after their
    // visibility window lapses.
    {
        let (_db, q) = open(&dir, clock.clone());
        assert_eq!(q.queue_names(), vec!["work".to_string()]);
        assert_eq!(q.groups("work").unwrap(), vec!["workers".to_string()]);
        assert_eq!(q.depth("work").unwrap(), 7); // 10 - 3 acked

        let ready_now = q.dequeue("work", "workers", 10).unwrap();
        assert_eq!(ready_now.len(), 5, "5 never-delivered jobs ready");
        for d in &ready_now {
            q.ack(d).unwrap(); // finish them before the clock jump
        }

        clock.advance(6_000); // crashed in-flight visibility lapses
        q.reap_timeouts("work").unwrap();
        let redelivered = q.dequeue("work", "workers", 10).unwrap();
        assert_eq!(redelivered.len(), 2, "crashed in-flight pair redelivered");
        assert!(redelivered.iter().all(|d| d.attempt == 2));

        // Finish everything; storage is reclaimed.
        for d in &redelivered {
            q.ack(d).unwrap();
        }
        assert_eq!(q.depth("work").unwrap(), 0);
    }

    // Session 3: ids keep rising after recovery (no reuse).
    {
        let (_db, q) = open(&dir, clock);
        let id = q
            .enqueue("work", Record::from_iter([Value::Int(99)]), "producer")
            .unwrap();
        assert!(id > 10, "recovered id allocator must not reuse ids: {id}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_letters_survive_recovery() {
    let dir = tmpdir("dlq");
    let clock = SimClock::new(TimestampMs(0));
    {
        let (_db, q) = open(&dir, clock.clone());
        q.create_queue(
            "work",
            Schema::of(&[("job", DataType::Int)]),
            QueueConfig::default().max_attempts(1).visibility_timeout(10),
        )
        .unwrap();
        q.subscribe("work", "g").unwrap();
        q.enqueue("work", Record::from_iter([Value::Int(1)]), "p").unwrap();
        let d = q.dequeue("work", "g", 1).unwrap().remove(0);
        q.nack(&d, "poison message").unwrap();
        assert_eq!(q.dead_letter_count("work").unwrap(), 1);
    }
    {
        let (_db, q) = open(&dir, clock);
        assert_eq!(q.dead_letter_count("work").unwrap(), 1);
        assert_eq!(q.depth("work").unwrap(), 0);
        assert!(q.dequeue("work", "g", 1).unwrap().is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_compacts_queue_journal() {
    let dir = tmpdir("qckpt");
    let clock = SimClock::new(TimestampMs(0));
    {
        let (db, q) = open(&dir, clock.clone());
        q.create_queue(
            "work",
            Schema::of(&[("job", DataType::Int)]),
            QueueConfig::default(),
        )
        .unwrap();
        q.subscribe("work", "g").unwrap();
        for i in 0..50 {
            q.enqueue("work", Record::from_iter([Value::Int(i)]), "p").unwrap();
        }
        let before = db.wal_len_bytes();
        db.checkpoint().unwrap();
        assert!(db.wal_len_bytes() < before);
    }
    {
        let (_db, q) = open(&dir, clock);
        assert_eq!(q.depth("work").unwrap(), 50);
        assert_eq!(q.dequeue("work", "g", 100).unwrap().len(), 50);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
