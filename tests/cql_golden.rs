//! Golden tests for the CQL surface: each query runs over the same fixed
//! event sequence and must produce exactly the expected rows, in order.
//! Catches regressions anywhere in the parse → plan → window → aggregate
//! → having → project chain.

use std::sync::Arc;

use evdb::cq::aggregate::AggMode;
use evdb::cq::compile_query;
use evdb::types::{DataType, Event, EventId, Record, Schema, TimestampMs, Value};

fn schema() -> Arc<Schema> {
    Schema::of(&[
        ("sym", DataType::Str),
        ("px", DataType::Float),
        ("qty", DataType::Int),
    ])
}

/// (ts_ms, sym, px, qty) — two symbols over three 1-second windows.
fn fixture() -> Vec<(i64, &'static str, f64, i64)> {
    vec![
        (100, "A", 10.0, 5),
        (200, "B", 100.0, 1),
        (600, "A", 20.0, 10),
        (1_100, "A", 30.0, 2),
        (1_200, "B", 110.0, 4),
        (1_300, "B", 90.0, 6),
        (2_500, "A", 40.0, 8),
    ]
}

/// Run a query over the fixture (flushing at the end) and render rows.
fn run(cql: &str, mode: AggMode) -> Vec<String> {
    let schema = schema();
    let mut p = compile_query(cql, &schema, mode).unwrap();
    let mut out = Vec::new();
    for (i, (ts, sym, px, qty)) in fixture().into_iter().enumerate() {
        let e = Event::new(
            EventId(i as u64),
            "ticks",
            TimestampMs(ts),
            Record::from_iter([Value::from(sym), Value::Float(px), Value::Int(qty)]),
            Arc::clone(&schema),
        );
        out.extend(p.push(&e).unwrap());
        out.extend(p.advance_watermark(TimestampMs(ts)).unwrap());
    }
    out.extend(p.advance_watermark(TimestampMs(1_000_000)).unwrap());
    out.iter().map(|e| e.payload.to_string()).collect()
}

/// Golden queries must agree across both aggregation modes too.
fn golden(cql: &str, expected: &[&str]) {
    for mode in [AggMode::Incremental, AggMode::Recompute] {
        let got = run(cql, mode);
        assert_eq!(
            got,
            expected.to_vec(),
            "query `{cql}` mode {mode:?}\n got: {got:#?}"
        );
    }
}

#[test]
fn select_where_projection() {
    golden(
        "SELECT sym, px * qty AS notional FROM ticks WHERE px >= 30",
        &["['B', 100.0]", "['A', 60.0]", "['B', 440.0]", "['B', 540.0]", "['A', 320.0]"],
    );
}

#[test]
fn tumbling_grouped_aggregates() {
    golden(
        "SELECT sym, count() AS n, sum(qty) AS vol, min(px) AS lo, max(px) AS hi \
         FROM ticks [RANGE 1 s] GROUP BY sym",
        &[
            // window [0,1000): A{10,20}, B{100}  (SUM is always FLOAT)
            "['A', 2, 15.0, 10.0, 20.0]",
            "['B', 1, 1.0, 100.0, 100.0]",
            // window [1000,2000): A{30}, B{110,90}
            "['A', 1, 2.0, 30.0, 30.0]",
            "['B', 2, 10.0, 90.0, 110.0]",
            // window [2000,3000): A{40}
            "['A', 1, 8.0, 40.0, 40.0]",
        ],
    );
}

#[test]
fn having_filters_groups() {
    golden(
        "SELECT sym, avg(px) AS apx FROM ticks [RANGE 1 s] GROUP BY sym HAVING avg(px) > 50",
        &["['B', 100.0]", "['B', 100.0]"],
    );
}

#[test]
fn sliding_window_counts() {
    golden(
        "SELECT count() AS n FROM ticks [RANGE 2 s SLIDE 1 s]",
        &[
            "[3]", // [-1000,1000): 3 events... window start -1000? aligned: [-1000,1000) holds ts<1000
            "[6]", // [0,2000)
            "[4]", // [1000,3000)
            "[1]", // [2000,4000)
        ],
    );
}

#[test]
fn rows_window_with_case_severity() {
    golden(
        "SELECT sym, CASE WHEN max(px) >= 100 THEN 'hot' ELSE 'calm' END AS label \
         FROM ticks [ROWS 2] GROUP BY sym",
        &[
            "['A', 'calm']", // A's first two: 10, 20
            "['B', 'hot']",  // B's first two: 100, 110
            "['A', 'calm']", // A: 30, 40
        ],
    );
}

#[test]
fn session_window_aggregates() {
    // Global session with a 600ms gap: events at 100..1300 form one
    // session (max gap 500ms... check: 200→600 is 400, 600→1100 is 500,
    // 1300→2500 is 1200 > 600 → split), then {2500}.
    golden(
        "SELECT count() AS n, sum(qty) AS vol FROM ticks [SESSION 600 ms]",
        &["[6, 28.0]", "[1, 8.0]"],
    );
}

#[test]
fn stddev_and_first_last() {
    golden(
        "SELECT first(px) AS f, last(px) AS l, stddev(px) AS sd \
         FROM ticks [RANGE 10 s]",
        &["[10.0, 40.0, 41.5187851918806]"],
    );
}
