//! Golden-transcript tests for the TCP line protocol: canned client
//! sessions in `tests/fixtures/protocol/*.txt` are replayed against a
//! real listener and every reply (and pushed `UPDATE`) must match the
//! recorded transcript byte-for-byte.
//!
//! Transcript format, one directive per line:
//!
//! ```text
//! ; comment (preserved on regeneration)
//! A> PING          send the frame "PING" on connection A
//! A< PONG          the next frame received on A must equal "PONG"
//! A! #zz           send raw bytes + newline UNframed (provokes framing errors)
//! ```
//!
//! Connections are opened lazily at first mention, in order. The server
//! runs without a background pump, so transcripts drive evaluation with
//! explicit `PUMP` commands and the reply order is deterministic:
//! `UPDATE` pushes enqueue during the pump, before its `OK` reply.
//!
//! Regenerate after intentional protocol changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test server_golden
//! ```
//!
//! (keeps comments and `>`/`!` lines, rewrites the `<` expectations
//! from the live replies).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use evdb::core::server::ServerConfig;
use evdb::core::EventServer;
use evdb::net::frame::{encode_frame_vec, FrameDecoder};
use evdb::net::{NetConfig, NetServer};
use evdb::types::{SimClock, TimestampMs};

const FIXTURE_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/protocol");

/// One client connection in a transcript replay.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    queue: Vec<String>,
}

impl Conn {
    fn connect(addr: std::net::SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .unwrap();
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            queue: Vec::new(),
        }
    }

    /// One read tick: pull whatever bytes are available into the
    /// decoder and queue any complete frames. Returns how many frames
    /// arrived.
    fn pump_reads(&mut self) -> usize {
        let mut buf = [0u8; 4096];
        let mut got = 0;
        match self.stream.read(&mut buf) {
            Ok(0) => {}
            Ok(n) => {
                self.decoder.push(&buf[..n]);
                while let Some(frame) = self.decoder.next_frame() {
                    let frame = frame.expect("server never sends malformed frames");
                    self.queue
                        .push(String::from_utf8(frame).expect("server frames are UTF-8"));
                    got += 1;
                }
            }
            Err(_) => {} // timeout tick
        }
        got
    }

    /// Block (up to 5 s) for the next frame.
    fn next_frame(&mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if !self.queue.is_empty() {
                return self.queue.remove(0);
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for a frame from the server"
            );
            self.pump_reads();
        }
    }
}

/// A fresh engine + server per transcript: simulated clock, generous
/// lateness (the retraction transcript replays a late event), no
/// background pump.
fn start_server() -> NetServer {
    let engine = Arc::new(
        EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            lateness_ms: 2_000,
            ..Default::default()
        })
        .unwrap(),
    );
    NetServer::start(
        engine,
        NetConfig {
            http_addr: None,
            pump_interval: None,
            ..Default::default()
        },
    )
    .unwrap()
}

fn parse_directive(line: &str) -> Option<(char, char, &str)> {
    let mut chars = line.chars();
    let id = chars.next()?;
    let op = chars.next()?;
    if !id.is_ascii_uppercase() || !matches!(op, '>' | '<' | '!') {
        return None;
    }
    let rest = line[2..].strip_prefix(' ').unwrap_or(&line[2..]);
    Some((id, op, rest))
}

/// Replay `script` against a fresh server. In regen mode, returns the
/// regenerated transcript; in verify mode, panics on any mismatch and
/// returns the input unchanged.
fn run_transcript(script: &str, regen: bool) -> String {
    let server = start_server();
    let addr = server.tcp_addr();
    let mut conns: HashMap<char, Conn> = HashMap::new();
    let mut order: Vec<char> = Vec::new();
    let mut out = String::new();

    for (lineno, line) in script.lines().enumerate() {
        let n = lineno + 1;
        let Some((id, op, payload)) = parse_directive(line) else {
            // Comment / blank: preserved verbatim.
            if regen {
                out.push_str(line);
                out.push('\n');
            }
            continue;
        };
        match op {
            '>' | '!' => {
                if regen {
                    out.push_str(line);
                    out.push('\n');
                }
                if let std::collections::hash_map::Entry::Vacant(e) = conns.entry(id) {
                    e.insert(Conn::connect(addr));
                    order.push(id);
                }
                let conn = conns.get_mut(&id).unwrap();
                let bytes = if op == '>' {
                    encode_frame_vec(payload.as_bytes())
                } else {
                    let mut raw = payload.as_bytes().to_vec();
                    raw.push(b'\n');
                    raw
                };
                conn.stream.write_all(&bytes).unwrap();
                conn.stream.flush().unwrap();
                if regen {
                    // Capture every reply this send produced, on every
                    // connection, after a quiet window.
                    let mut last_activity = Instant::now();
                    while last_activity.elapsed() < Duration::from_millis(200) {
                        for cid in &order {
                            if conns.get_mut(cid).unwrap().pump_reads() > 0 {
                                last_activity = Instant::now();
                            }
                        }
                    }
                    for cid in &order {
                        let conn = conns.get_mut(cid).unwrap();
                        for frame in conn.queue.drain(..) {
                            out.push_str(&format!("{cid}< {frame}\n"));
                        }
                    }
                }
            }
            '<' => {
                if regen {
                    continue; // rewritten from live replies
                }
                let conn = conns
                    .get_mut(&id)
                    .unwrap_or_else(|| panic!("line {n}: expectation before any send on {id}"));
                let got = conn.next_frame();
                assert_eq!(
                    got, payload,
                    "line {n}: reply mismatch on connection {id}"
                );
            }
            _ => unreachable!(),
        }
    }

    if !regen {
        // No connection may have unconsumed frames: the transcript must
        // account for every byte the server pushed.
        std::thread::sleep(Duration::from_millis(100));
        for id in &order {
            let conn = conns.get_mut(id).unwrap();
            conn.pump_reads();
            assert!(
                conn.queue.is_empty(),
                "connection {id} received frames the transcript does not expect: {:?}",
                conn.queue
            );
        }
    }
    if regen {
        out
    } else {
        script.to_string()
    }
}

fn check_fixture(name: &str) {
    let path = format!("{FIXTURE_DIR}/{name}");
    let script = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing {path} — run with UPDATE_GOLDEN=1"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let regenerated = run_transcript(&script, true);
        std::fs::write(&path, regenerated).unwrap();
        return;
    }
    run_transcript(&script, false);
}

#[test]
fn transcript_ingest_and_query() {
    check_fixture("ingest_query.txt");
}

#[test]
fn transcript_capture_insert() {
    check_fixture("capture_insert.txt");
}

#[test]
fn transcript_subscribe_retraction() {
    check_fixture("subscribe_retraction.txt");
}

#[test]
fn transcript_fanout_two_clients() {
    check_fixture("fanout_two_clients.txt");
}

#[test]
fn transcript_malformed_requests() {
    check_fixture("malformed.txt");
}
