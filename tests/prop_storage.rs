//! Property tests for the storage engine: codec round-trips, WAL
//! record round-trips (including through a real file), and table-ops
//! equivalence against a naive model.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use evdb::storage::codec::{self, Reader};
use evdb::storage::wal::{SyncPolicy, Wal, WalOp};
use evdb::storage::{Table, TableDef};
use evdb::types::{DataType, Record, Schema, TimestampMs, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[\\x00-\\x7f]{0,24}".prop_map(|s| Value::from(s.as_str())),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::bytes),
        any::<i64>().prop_map(|t| Value::Timestamp(TimestampMs(t))),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    proptest::collection::vec(arb_value(), 0..8).prop_map(Record::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_value_round_trip(v in arb_value()) {
        let mut buf = Vec::new();
        codec::encode_value(&mut buf, &v);
        let back = codec::decode_value(&mut Reader::new(&buf)).unwrap();
        // NaN compares equal under our total order.
        prop_assert_eq!(back, v);
    }

    #[test]
    fn codec_record_round_trip(r in arb_record()) {
        let mut buf = Vec::new();
        codec::encode_record(&mut buf, &r);
        let back = codec::decode_record(&mut Reader::new(&buf)).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn wal_round_trips_through_memory(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_record(), 0..4), 1..8)
    ) {
        let mut wal = Wal::in_memory(SyncPolicy::Never);
        let mut expected = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            let ops: Vec<WalOp> = batch
                .iter()
                .map(|r| WalOp::Insert { table: "t".into(), row: r.clone() })
                .collect();
            let lsn = wal.append(i as u64, TimestampMs(i as i64), &ops).unwrap();
            expected.push((lsn, i as u64, ops));
        }
        let read = wal.read_all().unwrap();
        prop_assert_eq!(read.len(), expected.len());
        for (rec, (lsn, txid, ops)) in read.iter().zip(&expected) {
            prop_assert_eq!(rec.lsn, *lsn);
            prop_assert_eq!(rec.txid, *txid);
            prop_assert_eq!(&rec.ops, ops);
        }
    }

    /// Random insert/update/delete sequences on a Table agree with a
    /// BTreeMap model, for both hit and miss cases.
    #[test]
    fn table_agrees_with_model(ops in proptest::collection::vec(
        (0u8..3, -20i64..20, -1000i64..1000), 1..120))
    {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let table = Table::new(TableDef::new("t", Arc::clone(&schema), "k").unwrap());
        table.create_index("v").unwrap();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();

        for (op, k, v) in ops {
            let rec = Record::from_iter([Value::Int(k), Value::Int(v)]);
            match op {
                0 => {
                    let ours = table.insert(rec).is_ok();
                    let theirs = !model.contains_key(&k);
                    if theirs { model.insert(k, v); }
                    prop_assert_eq!(ours, theirs, "insert {}", k);
                }
                1 => {
                    let ours = table.update(&Value::Int(k), rec).is_ok();
                    let theirs = model.contains_key(&k);
                    if theirs { model.insert(k, v); }
                    prop_assert_eq!(ours, theirs, "update {}", k);
                }
                _ => {
                    let ours = table.delete(&Value::Int(k)).is_ok();
                    let theirs = model.remove(&k).is_some();
                    prop_assert_eq!(ours, theirs, "delete {}", k);
                }
            }
        }
        // Full content equality, via scan.
        let rows = table.scan();
        prop_assert_eq!(rows.len(), model.len());
        for row in rows {
            let k = row.get(0).unwrap().as_int().unwrap();
            let v = row.get(1).unwrap().as_int().unwrap();
            prop_assert_eq!(model.get(&k), Some(&v));
        }
        // Index-assisted select agrees with the model filter.
        let pred = evdb::expr::parse("v >= 0 AND v < 500").unwrap();
        let mut selected: Vec<i64> = table
            .select(&pred)
            .unwrap()
            .iter()
            .map(|r| r.get(0).unwrap().as_int().unwrap())
            .collect();
        selected.sort_unstable();
        let expected: Vec<i64> = model
            .iter()
            .filter(|(_, v)| **v >= 0 && **v < 500)
            .map(|(k, _)| *k)
            .collect();
        prop_assert_eq!(selected, expected);
    }
}

/// WAL survives a real file round trip with arbitrary content.
#[test]
fn wal_file_round_trip_with_odd_strings() {
    let dir = std::env::temp_dir().join(format!("evdb-prop-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prop.wal");
    let _ = std::fs::remove_file(&path);

    let rows = [
        Record::from_iter([Value::from("quote ' and unicode → 日本")]),
        Record::new(vec![Value::bytes(vec![0u8, 1, 255]), Value::Float(f64::NAN)]),
        Record::new(vec![Value::Int(i64::MIN)]),
    ];
    {
        let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        for (i, r) in rows.iter().enumerate() {
            wal.append(
                i as u64,
                TimestampMs(i as i64),
                &[WalOp::Insert {
                    table: "t".into(),
                    row: r.clone(),
                }],
            )
            .unwrap();
        }
    }
    let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
    let read = wal.read_all().unwrap();
    assert_eq!(read.len(), rows.len());
    for (rec, row) in read.iter().zip(&rows) {
        match &rec.ops[0] {
            WalOp::Insert { row: r, .. } => assert_eq!(r, row),
            other => panic!("{other:?}"),
        }
    }
    std::fs::remove_file(&path).unwrap();
}
