//! Integration: CEP patterns as first-class continuous queries — a
//! `PatternMatcher` registered as a pipeline in the stream runtime,
//! composed with a downstream filter over the match output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evdb::cq::op::{FilterOp, Operator, Pipeline};
use evdb::cq::pattern::{Pattern, PatternMatcher, SkipStrategy, Step};
use evdb::cq::StreamRuntime;
use evdb::expr::parse;
use evdb::types::{DataType, Record, Schema, TimestampMs, Value};

#[test]
fn pattern_as_runtime_query_with_downstream_filter() {
    let schema = Schema::of(&[("kind", DataType::Str), ("amount", DataType::Float)]);
    let rt = StreamRuntime::new(0);
    rt.create_stream("txns", Arc::clone(&schema)).unwrap();

    // Fraud-ish pattern: a probe (tiny charge) followed by a large
    // charge within 1s, with no refund between them.
    let pattern = Pattern::new(
        vec![
            Step::new("probe", parse("kind = 'charge' AND amount < 1").unwrap()),
            Step::new("no_refund", parse("kind = 'refund'").unwrap()).negation(),
            Step::new("big", parse("kind = 'charge' AND amount > 500").unwrap()),
        ],
        1_000,
    )
    .unwrap();
    let matcher = PatternMatcher::new(pattern, &schema, SkipStrategy::SkipTillNext).unwrap();

    // Downstream of the pattern: only escalate really big completions.
    let match_schema = matcher.output_schema();
    let escalate = FilterOp::new(
        parse("big_amount > 900")
            .unwrap()
            .bind_predicate(&match_schema)
            .unwrap(),
        Arc::clone(&match_schema),
    );
    rt.register_query(
        "fraud",
        "txns",
        Pipeline::new(vec![Box::new(matcher), Box::new(escalate)]),
    )
    .unwrap();

    let hits = Arc::new(AtomicU64::new(0));
    let h = Arc::clone(&hits);
    rt.subscribe("fraud", Arc::new(move |ev| {
        h.fetch_add(1, Ordering::Relaxed);
        assert!(ev.get("probe_amount").unwrap().as_f64().unwrap() < 1.0);
    }))
    .unwrap();

    let push = |ts: i64, kind: &str, amount: f64| {
        rt.push(
            "txns",
            TimestampMs(ts),
            Record::from_iter([Value::from(kind), Value::Float(amount)]),
        )
        .unwrap()
    };

    // Scenario 1: probe → big (escalated).
    push(10, "charge", 0.5);
    push(20, "charge", 15.0); // irrelevant, skipped
    let out = push(30, "charge", 950.0);
    assert_eq!(out.len(), 1, "escalation fires");

    // Scenario 2: probe → refund → big (killed by negation).
    push(2_000, "charge", 0.7);
    push(2_010, "refund", 0.7);
    assert!(push(2_020, "charge", 990.0).is_empty());

    // Scenario 3: probe → big but under the escalation filter.
    push(4_000, "charge", 0.3);
    assert!(push(4_010, "charge", 600.0).is_empty()); // matched, filtered

    // Scenario 4: probe, then big arrives too late (WITHIN).
    push(6_000, "charge", 0.9);
    assert!(push(7_500, "charge", 999.0).is_empty());

    assert_eq!(hits.load(Ordering::Relaxed), 1);
    let (ins, outs) = rt.stats();
    assert_eq!(ins, 10);
    assert_eq!(outs, 1);
}
