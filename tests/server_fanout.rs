//! Concurrent fan-out over real sockets: N producer connections and M
//! subscriber connections against one server with a background pump.
//! Every subscriber must observe the complete update stream for its
//! query in the same order as every other subscriber (delivery is
//! sequenced by the pump thread), with no duplicates and no losses;
//! a subscriber that disconnects mid-stream must be torn down cleanly
//! without wedging or corrupting the remaining deliveries.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use evdb::core::server::ServerConfig;
use evdb::core::EventServer;
use evdb::net::frame::{encode_frame_vec, FrameDecoder};
use evdb::net::{NetConfig, NetServer};
use evdb::types::{SimClock, TimestampMs};

const PRODUCERS: usize = 4;
const SUBSCRIBERS: usize = 8;
const EVENTS_PER_PRODUCER: i64 = 50;
const TOTAL: usize = PRODUCERS * EVENTS_PER_PRODUCER as usize;

struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .unwrap();
        Client {
            stream,
            decoder: FrameDecoder::new(),
        }
    }

    fn send(&mut self, cmd: &str) {
        self.stream
            .write_all(&encode_frame_vec(cmd.as_bytes()))
            .unwrap();
    }

    fn recv(&mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Some(frame) = self.decoder.next_frame() {
                return String::from_utf8(frame.unwrap()).unwrap();
            }
            assert!(Instant::now() < deadline, "timed out waiting for a frame");
            let mut buf = [0u8; 16 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => panic!("server closed the connection unexpectedly"),
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(_) => {}
            }
        }
    }

    fn call(&mut self, cmd: &str) -> String {
        self.send(cmd);
        self.recv()
    }
}

fn start_server() -> NetServer {
    let engine = Arc::new(
        EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            ..Default::default()
        })
        .unwrap(),
    );
    NetServer::start(
        engine,
        NetConfig {
            http_addr: None,
            pump_interval: Some(Duration::from_millis(1)),
            session_buffer: 2 * TOTAL, // no shedding in this test
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn fanout_is_ordered_complete_and_teardown_safe() {
    let mut server = start_server();
    let addr = server.tcp_addr();

    // Stateless projection: one UPDATE per ingested event, so delivery
    // counts are exact and values identify events.
    let mut admin = Client::connect(addr);
    assert_eq!(admin.call("CREATE STREAM s v:INT"), "OK");
    assert_eq!(admin.call("REGISTER QUERY feed SELECT v FROM s"), "OK");

    // All subscribers attach before any event flows.
    let mut subs: Vec<Client> = (0..SUBSCRIBERS)
        .map(|_| {
            let mut c = Client::connect(addr);
            assert_eq!(c.call("SUBSCRIBE feed"), "OK subscribed feed");
            c
        })
        .collect();
    // One extra subscriber that will vanish mid-stream.
    let mut doomed = Client::connect(addr);
    assert_eq!(doomed.call("SUBSCRIBE feed"), "OK subscribed feed");

    // Concurrent producers, each over its own connection. Event values
    // are globally unique: producer p emits p*1000+k.
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for k in 0..EVENTS_PER_PRODUCER {
                    let v = (p as i64) * 1_000 + k;
                    assert_eq!(c.call(&format!("INGEST s {v} {v}")), "OK staged");
                    if p == 0 && k == EVENTS_PER_PRODUCER / 2 {
                        // Mid-stream, the doomed subscriber's socket dies
                        // (simulated by the main thread; see below). The
                        // producer just keeps producing.
                    }
                }
            })
        })
        .collect();

    // Kill the doomed subscriber while the stream is in flight.
    std::thread::sleep(Duration::from_millis(10));
    drop(doomed);

    for p in producers {
        p.join().unwrap();
    }

    // Drain every surviving subscriber to exactly TOTAL updates.
    let mut sequences: Vec<Vec<String>> = Vec::new();
    for sub in &mut subs {
        let mut seq = Vec::with_capacity(TOTAL);
        while seq.len() < TOTAL {
            let frame = sub.recv();
            assert!(
                frame.starts_with("UPDATE feed + "),
                "subscribers receive only insert deltas here, got: {frame}"
            );
            seq.push(frame);
        }
        sequences.push(seq);
    }

    // Completeness: each subscriber saw every produced value once.
    let mut expected: Vec<String> = (0..PRODUCERS as i64)
        .flat_map(|p| (0..EVENTS_PER_PRODUCER).map(move |k| format!("UPDATE feed + {}", p * 1_000 + k)))
        .collect();
    expected.sort();
    for seq in &sequences {
        let mut got = seq.clone();
        got.sort();
        assert_eq!(got, expected, "no update may be lost or duplicated");
    }

    // Order: every subscriber observed the identical global sequence.
    for seq in &sequences[1..] {
        assert_eq!(
            seq, &sequences[0],
            "all subscribers must see the same per-query order"
        );
    }

    // Teardown: the dead subscriber was pruned; the survivors remain.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.hub().active_subscriptions() != SUBSCRIBERS {
        assert!(
            Instant::now() < deadline,
            "dead subscriber not pruned: {} subscriptions",
            server.hub().active_subscriptions()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Nothing was shed for the survivors (buffers were sized for the
    // full stream), so delivered counts are exact.
    assert_eq!(
        server.engine().admission().rejected_total(),
        0,
        "default Block policy never rejects"
    );
    server.shutdown();
}
