//! Integration: one captured change's trace ID survives the whole
//! pipeline — capture → route → evaluate (including CQ-derived events)
//! → deliver — and every stage records into its counter and latency
//! histogram (DESIGN.md §D9).

use std::sync::{Arc, Mutex};

use evdb::core::metrics::Registry;
use evdb::core::server::ServerConfig;
use evdb::core::{CaptureMechanism, EventServer};
use evdb::types::{DataType, Record, Schema, SimClock, Stage, TimestampMs, Trace, Value};

#[test]
fn trace_id_propagates_through_every_stage() {
    let clock = SimClock::new(TimestampMs(1_000));
    let server = EventServer::in_memory(ServerConfig {
        clock: clock.clone(),
        registry: Arc::new(Registry::new()),
        ..Default::default()
    })
    .unwrap();
    server
        .db()
        .create_table(
            "orders",
            Schema::of(&[("oid", DataType::Int), ("amount", DataType::Float)]),
            "oid",
        )
        .unwrap();
    let stream = server
        .capture_table("orders", CaptureMechanism::Trigger)
        .unwrap();
    server
        .add_alert_rule("big", &stream, "amount > 10", 2.0, None)
        .unwrap();
    server
        .register_cql(
            "volume",
            &format!("SELECT count() AS n FROM {stream} [ROWS 1]"),
        )
        .unwrap();

    // Record the trace of every CQ-derived event.
    let derived_traces: Arc<Mutex<Vec<Trace>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&derived_traces);
    server
        .on_query(
            "volume",
            Arc::new(move |ev| sink.lock().unwrap().push(ev.trace)),
        )
        .unwrap();

    server
        .db()
        .insert(
            "orders",
            Record::from_iter([Value::Int(1), Value::Float(100.0)]),
        )
        .unwrap();
    clock.advance(7); // capture→pump lag, so spans are nonzero.
    let stats = server.pump().unwrap();
    assert_eq!((stats.captured, stats.derived, stats.notified), (1, 1, 1));

    // The alert notification carries the captured change's trace…
    let delivered = server.notifications().drain_delivered();
    assert_eq!(delivered.len(), 1);
    let note_trace = delivered[0].trace;
    assert_ne!(note_trace.id, 0, "notification lost its trace id");

    // …the CQ-derived event carries the same trace…
    let derived = derived_traces.lock().unwrap();
    assert_eq!(derived.len(), 1);
    assert_eq!(
        derived[0].id, note_trace.id,
        "derived event has a different trace id than the notification"
    );

    // …and the stamp vector shows the stages it passed. (The evaluate
    // stamp lands on the *event* after notifications are collected, so
    // the notification's copy has capture/route/deliver.)
    for stage in [Stage::Capture, Stage::Route, Stage::Deliver] {
        assert!(
            note_trace.stamp_of(stage).is_some(),
            "notification trace missing {} stamp",
            stage.name()
        );
    }
    assert!(
        note_trace
            .span_ms(Stage::Capture, Stage::Deliver)
            .unwrap()
            >= 7,
        "capture→deliver span should cover the simulated lag"
    );

    // Every pipeline stage exported one counter tick and one histogram
    // sample for this event.
    let snap = server.registry().snapshot();
    for stage in Stage::ALL {
        let counter = format!("evdb_stage_{}_events_total", stage.name());
        let hist = format!("evdb_stage_{}_latency_ms", stage.name());
        assert_eq!(
            snap.counters.get(&counter).copied(),
            Some(1),
            "{counter} should count exactly the one event"
        );
        assert_eq!(
            snap.histograms.get(&hist).map(|h| h.count),
            Some(1),
            "{hist} should hold exactly one sample"
        );
    }
}

#[test]
fn disabled_registry_skips_stamps_but_keeps_pipeline_results() {
    let server = EventServer::in_memory(ServerConfig {
        registry: Arc::new(Registry::disabled()),
        ..Default::default()
    })
    .unwrap();
    server
        .db()
        .create_table(
            "orders",
            Schema::of(&[("oid", DataType::Int), ("amount", DataType::Float)]),
            "oid",
        )
        .unwrap();
    let stream = server
        .capture_table("orders", CaptureMechanism::Trigger)
        .unwrap();
    server
        .add_alert_rule("big", &stream, "amount > 10", 2.0, None)
        .unwrap();
    server
        .db()
        .insert(
            "orders",
            Record::from_iter([Value::Int(1), Value::Float(100.0)]),
        )
        .unwrap();
    let stats = server.pump().unwrap();
    assert_eq!((stats.captured, stats.notified), (1, 1));
    // The trace id still exists (capture mints it unconditionally); the
    // stage metrics stay empty.
    let delivered = server.notifications().drain_delivered();
    assert_ne!(delivered[0].trace.id, 0);
    let snap = server.registry().snapshot();
    for stage in Stage::ALL {
        let hist = format!("evdb_stage_{}_latency_ms", stage.name());
        assert_eq!(snap.histograms.get(&hist).map(|h| h.count), Some(0));
    }
}
