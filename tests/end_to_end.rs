//! Integration: the full EventServer pipeline across crates — capture →
//! CQL → alert rules → detectors → VIRT notifications — plus durable
//! restart of the facade.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evdb::analytics::detector::UpdatePolicy;
use evdb::analytics::ControlChartModel;
use evdb::core::notify::VirtPolicy;
use evdb::core::server::ServerConfig;
use evdb::core::{CaptureMechanism, EventServer};
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "evdb-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn capture_cql_rules_detectors_compose() {
    let clock = SimClock::new(TimestampMs(0));
    let server = EventServer::in_memory(ServerConfig {
        clock: clock.clone(),
        virt: VirtPolicy {
            min_severity: 0.5,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();

    server
        .db()
        .create_table(
            "readings",
            Schema::of(&[("rid", DataType::Int), ("sensor", DataType::Str), ("v", DataType::Float)]),
            "rid",
        )
        .unwrap();
    let stream = server
        .capture_table("readings", CaptureMechanism::Journal)
        .unwrap();

    // CQL aggregate over the change stream.
    server
        .register_cql(
            "avg-by-sensor",
            &format!("SELECT sensor, avg(v) AS av FROM {stream} [ROWS 4] GROUP BY sensor"),
        )
        .unwrap();
    let windows = Arc::new(AtomicU64::new(0));
    let w = Arc::clone(&windows);
    server
        .on_query("avg-by-sensor", Arc::new(move |_| {
            w.fetch_add(1, Ordering::Relaxed);
        }))
        .unwrap();

    // Rule + detector on the same stream.
    server
        .add_alert_rule("hot", &stream, "v > 95", 1.0, Some("sensor"))
        .unwrap();
    server
        .add_detector(
            "drift",
            &stream,
            "v",
            Some("sensor"),
            UpdatePolicy::Always,
            || Box::new(ControlChartModel::new(3.0, 30)),
        )
        .unwrap();

    // Drive writes through the database like any application would.
    let mut rid = 0;
    for round in 0..50 {
        for sensor in ["a", "b"] {
            rid += 1;
            let v = if round == 40 && sensor == "a" {
                99.0 // alert-worthy spike
            } else {
                50.0 + (round % 5) as f64
            };
            server
                .db()
                .insert(
                    "readings",
                    Record::from_iter([Value::Int(rid), Value::from(sensor), Value::Float(v)]),
                )
                .unwrap();
        }
        clock.advance(100);
        server.pump().unwrap();
    }

    let snap = server.metrics().snapshot();
    assert_eq!(snap.events_captured, 100);
    // ROWS windows are per GROUP BY key: 50 events per sensor → 12
    // complete count-4 windows each (2 leftovers stay open).
    assert_eq!(windows.load(Ordering::Relaxed), 24);
    assert!(snap.notifications >= 2, "rule + detector should both fire");
    assert!(snap.deviations >= 1);
    let delivered = server.notifications().drain_delivered();
    assert!(delivered.iter().any(|n| n.title.contains("hot")));
    assert!(delivered.iter().any(|n| n.key.starts_with("drift:")));
}

#[test]
fn durable_server_restarts_with_data_and_queues() {
    let dir = tmpdir("restart");
    let clock = SimClock::new(TimestampMs(0));
    {
        let server = EventServer::open(
            &dir,
            ServerConfig {
                clock: clock.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        server
            .db()
            .create_table(
                "t",
                Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
                "id",
            )
            .unwrap();
        server
            .db()
            .insert("t", Record::from_iter([Value::Int(1), Value::Float(5.0)]))
            .unwrap();
        server
            .create_queue(
                "outbox",
                Schema::of(&[("x", DataType::Int)]),
                Default::default(),
            )
            .unwrap();
        server.queues().subscribe("outbox", "sender").unwrap();
        server
            .queues()
            .enqueue("outbox", Record::from_iter([Value::Int(42)]), "app")
            .unwrap();
    }
    // Restart.
    let server = EventServer::open(
        &dir,
        ServerConfig {
            clock,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(server.db().table("t").unwrap().len(), 1);
    let d = server.queues().dequeue("outbox", "sender", 1).unwrap();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].message.payload, Record::from_iter([Value::Int(42)]));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn capture_mechanisms_see_the_same_changes() {
    // The three mechanisms observe an identical committed history.
    let clock = SimClock::new(TimestampMs(0));
    let server = EventServer::in_memory(ServerConfig {
        clock: clock.clone(),
        ..Default::default()
    })
    .unwrap();
    for t in ["a", "b", "c"] {
        server
            .db()
            .create_table(
                t,
                Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
                "id",
            )
            .unwrap();
    }
    let s1 = server.capture_table("a", CaptureMechanism::Trigger).unwrap();
    let s2 = server.capture_table("b", CaptureMechanism::Journal).unwrap();
    let s3 = server
        .capture_table("c", CaptureMechanism::QueryPoll { interval_ms: 1 })
        .unwrap();
    for (stream, slot) in [(&s1, 0), (&s2, 1), (&s3, 2)] {
        server
            .add_alert_rule(&format!("all-{slot}"), stream, "TRUE", 1.0, Some("row_key"))
            .unwrap();
    }
    for t in ["a", "b", "c"] {
        for i in 0..5 {
            server
                .db()
                .insert(t, Record::from_iter([Value::Int(i), Value::Float(i as f64)]))
                .unwrap();
        }
    }
    clock.advance(10);
    let stats = server.pump().unwrap();
    assert_eq!(stats.captured, 15);
    assert_eq!(stats.notified, 15);
}
