//! Crash-recovery torture harness (the test-side counterpart of
//! experiment E12, DESIGN.md D8).
//!
//! Each test runs many independent *cycles*. A cycle seeds a
//! [`FaultInjector`], arms it with a sampled countdown + fault kind,
//! drives a seeded workload until the injector "cuts the power" (or the
//! workload ends and we crash by dropping the process state), then
//! reopens the database with no injector and checks the recovery
//! invariants:
//!
//! * **storage** — recovered table state equals the committed model,
//!   except possibly the single operation that was in flight at the
//!   crash (a full frame can land even though the caller saw an error —
//!   `CutAfterWrite`). Torn or corrupted frames must never be accepted.
//! * **queue** — an ack that returned `Ok` is never redelivered; a
//!   message whose enqueue returned `Ok` and was never acked is
//!   delivered at least once after recovery; at most the one in-flight
//!   enqueue may surface beyond the `Ok` set; attempts stay bounded.
//! * **cq** — window/pane state rebuilt by replaying the recovered
//!   durable event trace matches a never-crashed run of the same trace.
//!
//! The seed is `TORTURE_SEED` (env) so CI can run a fixed seed matrix;
//! every cycle derives its own sub-seed from it, so one test run covers
//! `cycles` distinct crash schedules.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use evdb::cq::aggregate::AggMode;
use evdb::cq::delta::{ConsistencyLevel, DeltaLog};
use evdb::cq::{compile_query, StreamRuntime};
use evdb::faults::{FaultInjector, FaultRng};
use evdb::queue::{QueueConfig, QueueManager};
use evdb::storage::{
    compact_once, ChangeKind, CompactionPolicy, Database, DbOptions, QuerySnapshot, SegmentStore,
    SegmentStoreOptions, SyncPolicy,
};
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

/// Base seed for the whole run; CI sets `TORTURE_SEED` (3-seed matrix).
fn base_seed() -> u64 {
    std::env::var("TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE12D)
}

/// Per-cycle sub-seed (SplitMix-style spread so cycles are independent).
fn cycle_seed(base: u64, cycle: u64) -> u64 {
    base ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// `FaultRng::range` as an `i64` (the workloads key on signed ints).
fn irange(rng: &mut FaultRng, lo: u64, hi: u64) -> i64 {
    rng.range(lo, hi) as i64
}

fn tmpdir(tag: &str, cycle: u64) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "evdb-torture-{tag}-{cycle}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Aggregate crash-site statistics across cycles, printed at the end so
/// a failing seed is easy to characterise.
#[derive(Default)]
struct Stats {
    cycles: u64,
    crashed: u64,
    sites: BTreeMap<String, u64>,
}

impl Stats {
    fn record(&mut self, injector: &FaultInjector) {
        self.cycles += 1;
        if let Some(site) = injector.crash_site() {
            self.crashed += 1;
            *self.sites.entry(site).or_insert(0) += 1;
        }
    }

    fn report(&self, tag: &str) {
        eprintln!(
            "torture[{tag}]: {} cycles, {} crashed, sites {:?}",
            self.cycles, self.crashed, self.sites
        );
        // The schedule sampler must actually exercise crashes, otherwise
        // the harness silently degrades into a plain reopen test.
        assert!(
            self.crashed >= self.cycles / 8,
            "torture[{tag}]: only {}/{} cycles crashed — sampler broken?",
            self.crashed,
            self.cycles
        );
    }
}

// ---------------------------------------------------------------------
// Storage: committed transactions survive, in-flight ops never half-apply.
// ---------------------------------------------------------------------

/// What the op in flight at the crash *would* have done if its frame
/// landed in full (`CutAfterWrite` legitimately persists an op whose
/// caller saw an error).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pending {
    Put(i64, i64),
    Delete(i64),
    None,
}

fn read_table(db: &Database) -> BTreeMap<i64, i64> {
    let t = db.table("t").unwrap();
    let mut out = BTreeMap::new();
    for k in -1..64 {
        if let Some(row) = t.get(&Value::Int(k)) {
            out.insert(k, row.get(1).and_then(Value::as_int).unwrap());
        }
    }
    assert_eq!(t.len(), out.len(), "recovered rows outside the key domain");
    out
}

#[test]
fn storage_torture_committed_state_survives_sampled_crashes() {
    const CYCLES: u64 = 120;
    const OPS: u64 = 36;
    let base = base_seed();
    let mut stats = Stats::default();

    for cycle in 0..CYCLES {
        let seed = cycle_seed(base, cycle);
        let dir = tmpdir("st", cycle);
        let mut rng = FaultRng::new(seed);
        let injector = FaultInjector::new(seed ^ 0xFA);
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        let mut pending = Pending::None;

        {
            let db = Database::open(
                &dir,
                DbOptions {
                    sync: SyncPolicy::Never,
                    faults: Some(Arc::clone(&injector)),
                    ..Default::default()
                },
            )
            .unwrap();
            db.create_table("t", Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]), "k")
                .unwrap();
            // Arm only after setup so every crash lands inside the workload.
            injector.arm_sampled(OPS + OPS / 4);

            for _ in 0..OPS {
                let r = match rng.below(10) {
                    0..=5 => {
                        let (k, v) = (irange(&mut rng, 0, 32), irange(&mut rng, 0, 1_000));
                        let rec = Record::from_iter([Value::Int(k), Value::Int(v)]);
                        let r = if model.contains_key(&k) {
                            db.update("t", &Value::Int(k), rec).map(|_| ())
                        } else {
                            db.insert("t", rec).map(|_| ())
                        };
                        if r.is_ok() {
                            model.insert(k, v);
                        } else {
                            pending = Pending::Put(k, v);
                        }
                        r
                    }
                    6..=7 => {
                        let k = irange(&mut rng, 0, 32);
                        if !model.contains_key(&k) {
                            continue;
                        }
                        let r = db.delete("t", &Value::Int(k)).map(|_| ());
                        if r.is_ok() {
                            model.remove(&k);
                        } else {
                            pending = Pending::Delete(k);
                        }
                        r
                    }
                    _ => db.checkpoint().map(|_| ()), // crash here changes no logical state
                };
                if let Err(e) = r {
                    assert!(
                        FaultInjector::is_crash(&e),
                        "cycle {cycle}: non-crash workload error: {e}"
                    );
                    break;
                }
            }
            // Crash: drop the session (power already cut if the injector fired).
        }
        stats.record(&injector);

        // Recover with no injector: must open cleanly and match the model,
        // modulo the single in-flight op.
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        let got = read_table(&db);
        let mut with_pending = model.clone();
        match pending {
            Pending::Put(k, v) => {
                with_pending.insert(k, v);
            }
            Pending::Delete(k) => {
                with_pending.remove(&k);
            }
            Pending::None => {}
        }
        assert!(
            got == model || got == with_pending,
            "cycle {cycle} (site {:?}): recovered {got:?}\n != committed {model:?}\n nor +pending {with_pending:?}",
            injector.crash_site()
        );
        // The recovered database keeps working: write, checkpoint, reread.
        db.insert("t", Record::from_iter([Value::Int(-1), Value::Int(7)]))
            .unwrap();
        db.checkpoint().unwrap();
        assert!(db.table("t").unwrap().get(&Value::Int(-1)).is_some());
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    stats.report("storage");
}

// ---------------------------------------------------------------------
// Queue: at-least-once with a hard "acked-Ok never redelivered" bound.
// ---------------------------------------------------------------------

#[test]
fn queue_torture_acked_never_redelivered_unacked_never_lost() {
    const CYCLES: u64 = 60;
    const OPS: u64 = 30;
    let base = base_seed().wrapping_add(1);
    let mut stats = Stats::default();

    for cycle in 0..CYCLES {
        let seed = cycle_seed(base, cycle);
        let dir = tmpdir("q", cycle);
        let mut rng = FaultRng::new(seed);
        let injector = FaultInjector::new(seed ^ 0xFB);
        let clock = SimClock::new(TimestampMs(1_000));

        let mut enqueued_ok: BTreeSet<u64> = BTreeSet::new();
        let mut acked_ok: BTreeSet<u64> = BTreeSet::new();
        // Ids whose ack/enqueue errored at the crash: durability unknown.
        let mut ambiguous_acks: BTreeSet<u64> = BTreeSet::new();
        let mut enqueue_in_flight = false;

        {
            let db = Database::open(
                &dir,
                DbOptions {
                    sync: SyncPolicy::Never,
                    clock: clock.clone(),
                    faults: Some(Arc::clone(&injector)),
                    ..Default::default()
                },
            )
            .unwrap();
            let q = QueueManager::attach(Arc::clone(&db)).unwrap();
            q.create_queue(
                "work",
                Schema::of(&[("job", DataType::Int)]),
                QueueConfig::default()
                    .visibility_timeout(2_000)
                    .max_attempts(50),
            )
            .unwrap();
            q.subscribe("work", "g").unwrap();
            injector.arm_sampled(OPS * 2);

            'workload: for op in 0..OPS {
                match rng.below(10) {
                    0..=4 => {
                        match q.enqueue("work", Record::from_iter([Value::Int(op as i64)]), "torture")
                        {
                            Ok(id) => {
                                enqueued_ok.insert(id);
                            }
                            Err(e) => {
                                assert!(FaultInjector::is_crash(&e), "enqueue: {e}");
                                enqueue_in_flight = true;
                                break 'workload;
                            }
                        }
                    }
                    5..=7 => {
                        let batch = match q.dequeue("work", "g", 3) {
                            Ok(b) => b,
                            Err(e) => {
                                assert!(FaultInjector::is_crash(&e), "dequeue: {e}");
                                break 'workload;
                            }
                        };
                        for d in &batch {
                            assert!(d.attempt <= 50, "attempts unbounded");
                            match rng.below(3) {
                                0 => {
                                    // Leave in flight; visibility timeout redelivers.
                                }
                                1 => match q.ack(d) {
                                    Ok(()) => {
                                        acked_ok.insert(d.message.id);
                                    }
                                    Err(e) => {
                                        assert!(FaultInjector::is_crash(&e), "ack: {e}");
                                        ambiguous_acks.insert(d.message.id);
                                        break 'workload;
                                    }
                                },
                                _ => {
                                    if let Err(e) = q.nack(d, "torture") {
                                        assert!(FaultInjector::is_crash(&e), "nack: {e}");
                                        break 'workload;
                                    }
                                }
                            }
                        }
                    }
                    _ => {
                        clock.advance(1_000);
                        if let Err(e) = q.reap_timeouts("work") {
                            assert!(FaultInjector::is_crash(&e), "reap: {e}");
                            break 'workload;
                        }
                    }
                }
            }
            // Crash: drop manager + database.
        }
        stats.record(&injector);

        // Recover and drain everything that is still owed to the group.
        let db = Database::open(
            &dir,
            DbOptions {
                sync: SyncPolicy::Never,
                clock: clock.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        let q = QueueManager::attach(Arc::clone(&db)).unwrap();
        let mut seen_post: BTreeSet<u64> = BTreeSet::new();
        for _round in 0..40 {
            clock.advance(3_000); // lapse any visibility window
            q.reap_timeouts("work").unwrap();
            let batch = q.dequeue("work", "g", 100).unwrap();
            if batch.is_empty() && q.depth("work").unwrap() == 0 {
                break;
            }
            for d in batch {
                assert!(
                    !acked_ok.contains(&d.message.id),
                    "cycle {cycle} (site {:?}): acked-Ok message {} redelivered",
                    injector.crash_site(),
                    d.message.id
                );
                seen_post.insert(d.message.id);
                q.ack(&d).unwrap();
            }
        }

        // Every Ok-enqueued, never-Ok-acked, non-ambiguous message must
        // resurface at least once after the crash.
        for id in enqueued_ok.difference(&acked_ok) {
            assert!(
                ambiguous_acks.contains(id) || seen_post.contains(id),
                "cycle {cycle} (site {:?}): message {id} lost (enqueued-Ok, never acked, never redelivered)",
                injector.crash_site()
            );
        }
        // At most the single in-flight enqueue may surface beyond the Ok set.
        let unexpected: Vec<u64> = seen_post.difference(&enqueued_ok).copied().collect();
        assert!(
            unexpected.len() <= usize::from(enqueue_in_flight),
            "cycle {cycle}: phantom deliveries {unexpected:?}"
        );
        drop(q);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    stats.report("queue");
}

// ---------------------------------------------------------------------
// CQ: window state rebuilt from the recovered durable trace matches a
// never-crashed run (satellite: runtime recovery equivalence).
// ---------------------------------------------------------------------

/// Run the E12 reference pipeline over an event trace and render every
/// derived row (including the end-of-input flush).
fn run_cq(events: &[(i64, i64, i64)]) -> Vec<String> {
    let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
    let rt = StreamRuntime::new(0);
    rt.create_stream("s", Arc::clone(&schema)).unwrap();
    let pipeline = compile_query(
        "SELECT k, sum(v) AS total FROM s [RANGE 1 s] GROUP BY k",
        &schema,
        AggMode::Incremental,
    )
    .unwrap();
    rt.register_query("q", "s", pipeline).unwrap();
    let mut out = Vec::new();
    for (ts, k, v) in events {
        let derived = rt
            .push(
                "s",
                TimestampMs(*ts),
                Record::from_iter([Value::Int(*k), Value::Int(*v)]),
            )
            .unwrap();
        out.extend(derived.iter().map(|e| e.payload.to_string()));
    }
    let tail = rt.flush("s", TimestampMs(i64::MAX / 2)).unwrap();
    out.extend(tail.iter().map(|e| e.payload.to_string()));
    out
}

#[test]
fn cq_torture_window_state_rebuild_matches_uncrashed_run() {
    const CYCLES: u64 = 24;
    const EVENTS: usize = 40;
    let base = base_seed().wrapping_add(2);
    let mut stats = Stats::default();

    for cycle in 0..CYCLES {
        let seed = cycle_seed(base, cycle);
        let dir = tmpdir("cq", cycle);
        let mut rng = FaultRng::new(seed);
        let injector = FaultInjector::new(seed ^ 0xFC);

        // Seeded event trace: nondecreasing timestamps, small key domain.
        let mut trace: Vec<(i64, i64, i64)> = Vec::with_capacity(EVENTS);
        let mut ts = 0i64;
        for _ in 0..EVENTS {
            ts += irange(&mut rng, 0, 600);
            trace.push((ts, irange(&mut rng, 0, 5), irange(&mut rng, 1, 100)));
        }
        let reference = run_cq(&trace);

        // Ingest the trace into a durable table, crashing partway.
        {
            let db = Database::open(
                &dir,
                DbOptions {
                    sync: SyncPolicy::Never,
                    faults: Some(Arc::clone(&injector)),
                    ..Default::default()
                },
            )
            .unwrap();
            db.create_table(
                "trace",
                Schema::of(&[
                    ("i", DataType::Int),
                    ("ts", DataType::Int),
                    ("k", DataType::Int),
                    ("v", DataType::Int),
                ]),
                "i",
            )
            .unwrap();
            injector.arm_sampled(EVENTS as u64);
            for (i, (ts, k, v)) in trace.iter().enumerate() {
                let r = db.insert(
                    "trace",
                    Record::from_iter([
                        Value::Int(i as i64),
                        Value::Int(*ts),
                        Value::Int(*k),
                        Value::Int(*v),
                    ]),
                );
                if let Err(e) = r {
                    assert!(FaultInjector::is_crash(&e), "ingest: {e}");
                    break;
                }
            }
        }
        stats.record(&injector);

        // Recover: the surviving trace must be an exact prefix (an insert
        // either fully persisted or left no trace).
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        let t = db.table("trace").unwrap();
        let mut recovered: Vec<(i64, i64, i64)> = Vec::new();
        for i in 0..trace.len() {
            match t.get(&Value::Int(i as i64)) {
                Some(row) => recovered.push((
                    row.get(1).and_then(Value::as_int).unwrap(),
                    row.get(2).and_then(Value::as_int).unwrap(),
                    row.get(3).and_then(Value::as_int).unwrap(),
                )),
                None => break,
            }
        }
        assert_eq!(t.len(), recovered.len(), "cycle {cycle}: gap in recovered trace");
        assert_eq!(
            recovered,
            trace[..recovered.len()],
            "cycle {cycle}: recovered prefix diverges from the ingested trace"
        );

        // Rebuild: replay the *recovered* rows through a fresh runtime,
        // then continue with the rest of the live trace. Output must be
        // indistinguishable from the never-crashed reference run.
        let mut resumed = recovered;
        resumed.extend_from_slice(&trace[resumed.len()..]);
        assert_eq!(
            run_cq(&resumed),
            reference,
            "cycle {cycle} (site {:?}): rebuilt window state diverges",
            injector.crash_site()
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    stats.report("cq");
}

// ---------------------------------------------------------------------
// Out-of-order CQ: a speculative subscriber materializes a retraction
// stream durably, crashes anywhere — including between a retraction and
// its correcting insert — and converges after recovery via
// `QuerySnapshot::rebaseline` (no replayed insert storm).
// ---------------------------------------------------------------------

const OOO_LATENESS: i64 = 400;

/// Never-crashed reference: the arrival-order trace through a
/// speculative windowed aggregate, folded down to its net answer.
fn run_spec_cq(events: &[(i64, i64, i64)]) -> DeltaLog {
    let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
    let rt = StreamRuntime::new(OOO_LATENESS);
    rt.create_stream("s", Arc::clone(&schema)).unwrap();
    let pipeline = compile_query(
        "SELECT k, window_start, sum(v) AS total FROM s [RANGE 500 ms] \
         GROUP BY k EMIT SPECULATIVE",
        &schema,
        AggMode::Incremental,
    )
    .unwrap();
    rt.register_query_with("q", "s", pipeline, ConsistencyLevel::Speculative)
        .unwrap();
    let mut log = DeltaLog::default();
    for (ts, k, v) in events {
        for e in rt
            .push("s", TimestampMs(*ts), Record::from_iter([Value::Int(*k), Value::Int(*v)]))
            .unwrap()
        {
            log.observe(&e);
        }
    }
    for e in rt.flush("s", TimestampMs(i64::MAX / 8)).unwrap() {
        log.observe(&e);
    }
    log
}

/// Multiset view of a compacted answer: row text → multiplicity.
fn as_multiset(rows: Vec<String>) -> HashMap<String, i64> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(r).or_insert(0) += 1;
    }
    m
}

#[test]
fn ooo_torture_speculative_subscriber_converges_after_crash() {
    const CYCLES: u64 = 24;
    const EVENTS: usize = 40;
    let base = base_seed().wrapping_add(3);
    let mut stats = Stats::default();
    let results_schema = Schema::of(&[("row", DataType::Str), ("mult", DataType::Int)]);

    for cycle in 0..CYCLES {
        let seed = cycle_seed(base, cycle);
        let dir = tmpdir("ooo", cycle);
        let mut rng = FaultRng::new(seed);
        let injector = FaultInjector::new(seed ^ 0xFD);

        // Seeded out-of-order trace: event times jittered within the
        // allowed lateness, arrival order = jittered order.
        let mut trace: Vec<(i64, i64, i64)> = Vec::with_capacity(EVENTS);
        let mut ts = 0i64;
        let mut arrivals: Vec<(i64, usize)> = Vec::with_capacity(EVENTS);
        for i in 0..EVENTS {
            ts += irange(&mut rng, 0, 160);
            let delay = irange(&mut rng, 0, OOO_LATENESS as u64);
            trace.push((ts, irange(&mut rng, 0, 4), irange(&mut rng, 1, 50)));
            arrivals.push((ts + delay, i));
        }
        arrivals.sort_unstable();
        let arrival_trace: Vec<(i64, i64, i64)> =
            arrivals.iter().map(|(_, i)| trace[*i]).collect();
        let reference = as_multiset(run_spec_cq(&arrival_trace).rows());

        // Phase 1: ingest + materialize the speculative delta stream
        // durably, crashing anywhere in the middle of it.
        {
            let db = Database::open(
                &dir,
                DbOptions {
                    sync: SyncPolicy::Never,
                    faults: Some(Arc::clone(&injector)),
                    ..Default::default()
                },
            )
            .unwrap();
            db.create_table(
                "trace",
                Schema::of(&[
                    ("i", DataType::Int),
                    ("ts", DataType::Int),
                    ("k", DataType::Int),
                    ("v", DataType::Int),
                ]),
                "i",
            )
            .unwrap();
            db.create_table("results", Arc::clone(&results_schema), "row").unwrap();

            let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
            let rt = StreamRuntime::new(OOO_LATENESS);
            rt.create_stream("s", Arc::clone(&schema)).unwrap();
            let pipeline = compile_query(
                "SELECT k, window_start, sum(v) AS total FROM s [RANGE 500 ms] \
                 GROUP BY k EMIT SPECULATIVE",
                &schema,
                AggMode::Incremental,
            )
            .unwrap();
            rt.register_query_with("q", "s", pipeline, ConsistencyLevel::Speculative)
                .unwrap();
            injector.arm_sampled(EVENTS as u64 * 2);

            'ingest: for (i, (ts, k, v)) in arrival_trace.iter().enumerate() {
                let r = db.insert(
                    "trace",
                    Record::from_iter([
                        Value::Int(i as i64),
                        Value::Int(*ts),
                        Value::Int(*k),
                        Value::Int(*v),
                    ]),
                );
                if let Err(e) = r {
                    assert!(FaultInjector::is_crash(&e), "ingest: {e}");
                    break 'ingest;
                }
                let deltas = rt
                    .push("s", TimestampMs(*ts), Record::from_iter([Value::Int(*k), Value::Int(*v)]))
                    .unwrap();
                // Apply each signed delta to the durable materialization.
                // A crash between a retraction and its correcting insert
                // leaves the table mid-revision — exactly the state
                // recovery must converge out of.
                for d in &deltas {
                    let key = Value::from(d.payload.to_string().as_str());
                    let cur = db
                        .table("results")
                        .unwrap()
                        .get(&key)
                        .and_then(|r| r.get(1).and_then(Value::as_int))
                        .unwrap_or(0);
                    let next = cur + if d.is_retraction() { -1 } else { 1 };
                    let r = if next <= 0 {
                        db.delete("results", &key).map(|_| ())
                    } else if cur == 0 {
                        db.insert(
                            "results",
                            Record::from_iter([key.clone(), Value::Int(next)]),
                        )
                        .map(|_| ())
                    } else {
                        db.update(
                            "results",
                            &key,
                            Record::from_iter([key.clone(), Value::Int(next)]),
                        )
                        .map(|_| ())
                    };
                    if let Err(e) = r {
                        assert!(FaultInjector::is_crash(&e), "materialize: {e}");
                        break 'ingest;
                    }
                }
            }
        }
        stats.record(&injector);

        // Phase 2: recover. The trace prefix is exact (cq arm invariant);
        // the materialization may be mid-revision.
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        let t = db.table("trace").unwrap();
        let mut recovered: Vec<(i64, i64, i64)> = Vec::new();
        for i in 0..arrival_trace.len() {
            match t.get(&Value::Int(i as i64)) {
                Some(row) => recovered.push((
                    row.get(1).and_then(Value::as_int).unwrap(),
                    row.get(2).and_then(Value::as_int).unwrap(),
                    row.get(3).and_then(Value::as_int).unwrap(),
                )),
                None => break,
            }
        }

        // The recovered subscriber adopts its own durable state silently
        // — rebaseline, not poll, so the fill is not replayed as a storm
        // of spurious inserts.
        let mut snap = QuerySnapshot::new("results", evdb::expr::parse("mult > 0").unwrap());
        let baseline_size = snap.rebaseline(&db).unwrap();
        assert_eq!(
            baseline_size,
            db.table("results").unwrap().len(),
            "cycle {cycle}: rebaseline must adopt the whole recovered result set"
        );
        let mut subscriber_view: HashMap<String, i64> = db
            .table("results")
            .unwrap()
            .select(&evdb::expr::parse("mult > 0").unwrap())
            .unwrap()
            .into_iter()
            .map(|r| {
                (
                    r.get(0).and_then(Value::as_str).unwrap().to_string(),
                    r.get(1).and_then(Value::as_int).unwrap(),
                )
            })
            .collect();

        // Phase 3: rebuild from the recovered durable prefix, continue
        // with the rest of the live trace, and write the corrected
        // answer back.
        let mut resumed = recovered;
        resumed.extend_from_slice(&arrival_trace[resumed.len()..]);
        let converged = as_multiset(run_spec_cq(&resumed).rows());
        assert_eq!(
            converged, reference,
            "cycle {cycle} (site {:?}): rebuilt speculative state diverges",
            injector.crash_site()
        );
        let stale: Vec<String> = subscriber_view
            .keys()
            .filter(|k| !converged.contains_key(*k))
            .cloned()
            .collect();
        for row in stale {
            db.delete("results", &Value::from(row.as_str())).unwrap();
        }
        for (row, mult) in &converged {
            let key = Value::from(row.as_str());
            let rec = Record::from_iter([key.clone(), Value::Int(*mult)]);
            match db.table("results").unwrap().get(&key) {
                Some(cur) if cur.get(1).and_then(Value::as_int) == Some(*mult) => {}
                Some(_) => {
                    db.update("results", &key, rec).unwrap();
                }
                None => {
                    db.insert("results", rec).unwrap();
                }
            }
        }

        // Phase 4: the poll after convergence hands downstream exactly
        // the corrections — applying them to the recovered baseline
        // yields the never-crashed compacted answer.
        for change in snap.poll(&db).unwrap() {
            match change.kind {
                ChangeKind::Insert | ChangeKind::Update => {
                    let after = change.after.unwrap();
                    subscriber_view.insert(
                        after.get(0).and_then(Value::as_str).unwrap().to_string(),
                        after.get(1).and_then(Value::as_int).unwrap(),
                    );
                }
                ChangeKind::Delete => {
                    let before = change.before.unwrap();
                    subscriber_view
                        .remove(before.get(0).and_then(Value::as_str).unwrap());
                }
            }
        }
        assert_eq!(
            subscriber_view, reference,
            "cycle {cycle} (site {:?}): subscriber view did not converge",
            injector.crash_site()
        );
        // A further poll with no changes must be silent.
        assert!(snap.poll(&db).unwrap().is_empty());
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    stats.report("ooo");
}

// ---------------------------------------------------------------------
// Segment store: a crash mid-freeze or mid-compaction never loses or
// duplicates an event (DESIGN.md D14 — the manifest rename is the one
// commit point for both).
// ---------------------------------------------------------------------

#[test]
fn segment_store_torture_no_event_lost_or_duplicated() {
    const CYCLES: u64 = 120;
    const OPS: u64 = 48;
    let base = base_seed();
    let mut stats = Stats::default();
    let schema = Schema::of(&[("v", DataType::Int)]);
    // Aggressive thresholds so freezes and compactions happen constantly
    // and the sampled crash lands inside them often.
    let opts = |faults| SegmentStoreOptions {
        freeze_rows: 6,
        zone_rows: 4,
        faults,
        ..Default::default()
    };
    let policy = CompactionPolicy {
        max_segments: 2,
        small_rows: 1_000,
        max_merge: 4,
    };

    for cycle in 0..CYCLES {
        let seed = cycle_seed(base, cycle ^ 0x5E6);
        let dir = tmpdir("seg", cycle);
        let mut rng = FaultRng::new(seed);
        let injector = FaultInjector::new(seed ^ 0x5E);
        // (id, ts, retraction, v) for every append that returned Ok…
        let mut model: Vec<(u64, i64, bool, i64)> = Vec::new();
        // …plus the one whose caller saw the crash error (CutAfterWrite
        // can land a full head frame anyway).
        let mut pending: Option<(u64, i64, bool, i64)> = None;

        {
            let store =
                SegmentStore::open(&dir, Arc::clone(&schema), opts(Some(Arc::clone(&injector))))
                    .unwrap();
            injector.arm_sampled(OPS + OPS / 4);
            let mut next_id = 0u64;
            for _ in 0..OPS {
                let r = match rng.below(10) {
                    0..=6 => {
                        let id = next_id;
                        next_id += 1;
                        // Non-monotone timestamps: freezing re-sorts by
                        // time while replay must keep arrival order.
                        let ts = irange(&mut rng, 0, 1_000);
                        let retraction = rng.below(8) == 0;
                        let v = irange(&mut rng, 0, 1_000);
                        let r = store
                            .append(
                                id,
                                TimestampMs(ts),
                                retraction,
                                Record::from_iter([Value::Int(v)]),
                            )
                            .map(|_| ());
                        if r.is_ok() {
                            model.push((id, ts, retraction, v));
                        } else {
                            pending = Some((id, ts, retraction, v));
                        }
                        r
                    }
                    7..=8 => store.freeze(), // crash here changes no event set
                    _ => compact_once(&store, &policy).map(|_| ()),
                };
                if let Err(e) = r {
                    assert!(
                        FaultInjector::is_crash(&e),
                        "cycle {cycle}: non-crash workload error: {e}"
                    );
                    break;
                }
            }
        }
        stats.record(&injector);

        // Recover with no injector: every Ok append survives exactly
        // once, in arrival order; at most the in-flight one joins them.
        let store = SegmentStore::open(&dir, Arc::clone(&schema), opts(None)).unwrap();
        let got: Vec<(u64, i64, bool, i64)> = store
            .replay(0, u64::MAX)
            .unwrap()
            .iter()
            .map(|s| {
                (
                    s.id,
                    s.timestamp.0,
                    s.retraction,
                    s.payload.get(0).and_then(Value::as_int).unwrap(),
                )
            })
            .collect();
        let mut with_pending = model.clone();
        if let Some(p) = pending {
            with_pending.push(p);
        }
        assert!(
            got == model || got == with_pending,
            "cycle {cycle} (site {:?}): recovered {got:?}\n != committed {model:?}\n nor +pending {with_pending:?}",
            injector.crash_site()
        );

        // Never-crashed reference: a store fed exactly the surviving
        // events, then both fully compacted, must be indistinguishable
        // event-wise (scan order and replay order).
        let refdir = tmpdir("segref", cycle);
        let reference = SegmentStore::open(&refdir, Arc::clone(&schema), opts(None)).unwrap();
        for (id, ts, retraction, v) in &got {
            reference
                .append(
                    *id,
                    TimestampMs(*ts),
                    *retraction,
                    Record::from_iter([Value::Int(*v)]),
                )
                .unwrap();
        }
        store.freeze().unwrap();
        reference.freeze().unwrap();
        while compact_once(&store, &policy).unwrap() {}
        while compact_once(&reference, &policy).unwrap() {}
        assert_eq!(
            store.scan_all().unwrap(),
            reference.scan_all().unwrap(),
            "cycle {cycle}: compacted scan diverged from never-crashed reference"
        );
        assert_eq!(
            store.replay(0, u64::MAX).unwrap(),
            reference.replay(0, u64::MAX).unwrap(),
            "cycle {cycle}: compacted replay diverged from never-crashed reference"
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&refdir);
    }
    stats.report("segment");
}

// ---------------------------------------------------------------------
// Group commit (D15): under `SyncPolicy::Always`, a commit whose caller
// saw `Ok` was covered by a group fsync and must survive recovery; a
// crash at `wal.group.append` / `wal.group.sync` loses at most the
// commits of the one uncommitted group (all of which saw `Err`).
// ---------------------------------------------------------------------

#[test]
fn group_commit_torture_acked_commits_survive_crashes() {
    const CYCLES: u64 = 60;
    const THREADS: usize = 4;
    const PER: u64 = 12;
    let base = base_seed().wrapping_add(7);
    let mut stats = Stats::default();

    for cycle in 0..CYCLES {
        let seed = cycle_seed(base, cycle);
        let dir = tmpdir("gc", cycle);
        let injector = FaultInjector::new(seed ^ 0xFC);
        // Keys whose insert returned Ok (durable by contract) / Err at
        // the crash (durability unknown: the record may have reached the
        // log even though no fsync ack covered it).
        let mut acked: BTreeSet<i64> = BTreeSet::new();
        let mut ambiguous: BTreeSet<i64> = BTreeSet::new();

        {
            let db = Database::open(
                &dir,
                DbOptions {
                    sync: SyncPolicy::Always,
                    faults: Some(Arc::clone(&injector)),
                    ..Default::default()
                },
            )
            .unwrap();
            db.create_table("t", Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]), "k")
                .unwrap();
            // Arm after setup; sites hit per cycle ≈ appends + group
            // fsyncs, so the sampled countdown usually lands mid-workload.
            injector.arm_sampled(THREADS as u64 * PER);

            let results: Vec<(Vec<i64>, Vec<i64>)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|t| {
                        let db = &db;
                        s.spawn(move || {
                            let mut ok = Vec::new();
                            let mut err = Vec::new();
                            for i in 0..PER {
                                let k = (t as i64) * 1_000 + i as i64;
                                match db.insert(
                                    "t",
                                    Record::from_iter([Value::Int(k), Value::Int(k)]),
                                ) {
                                    Ok(_) => ok.push(k),
                                    Err(e) => {
                                        assert!(
                                            FaultInjector::is_crash(&e),
                                            "non-crash workload error: {e}"
                                        );
                                        err.push(k);
                                        break;
                                    }
                                }
                            }
                            (ok, err)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for (ok, err) in results {
                acked.extend(ok);
                ambiguous.extend(err);
            }
        }
        stats.record(&injector);

        // Recover with no injector: acked ⊆ recovered ⊆ acked ∪ ambiguous.
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        let t = db.table("t").unwrap();
        let recovered: BTreeSet<i64> = t
            .scan()
            .iter()
            .map(|r| r.get(0).and_then(Value::as_int).unwrap())
            .collect();
        for k in &acked {
            assert!(
                recovered.contains(k),
                "cycle {cycle} (site {:?}): acked-Ok commit {k} lost",
                injector.crash_site()
            );
        }
        for k in &recovered {
            assert!(
                acked.contains(k) || ambiguous.contains(k),
                "cycle {cycle} (site {:?}): phantom row {k} recovered",
                injector.crash_site()
            );
        }
        // The recovered database keeps committing durably.
        db.insert("t", Record::from_iter([Value::Int(-1), Value::Int(7)]))
            .unwrap();
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    stats.report("group-commit");
}
