//! Property tests for the CQ engine: incremental and recompute window
//! aggregation are semantically identical on arbitrary event streams and
//! window shapes, and window assignment covers exactly the right spans.

use std::sync::Arc;

use proptest::prelude::*;

use evdb::cq::aggregate::{AggFunc, AggMode, AggSpec, WindowAggregateOp};
use evdb::cq::op::Operator;
use evdb::cq::window::WindowSpec;
use evdb::types::{DataType, Event, EventId, Record, Schema, TimestampMs, Value};

fn schema() -> Arc<Schema> {
    Schema::of(&[("g", DataType::Str), ("x", DataType::Float)])
}

fn aggs() -> Vec<AggSpec> {
    vec![
        AggSpec {
            func: AggFunc::Count,
            field: None,
            expr: None,
            out_name: "n".into(),
        },
        AggSpec {
            func: AggFunc::Sum,
            field: Some("x".into()),
            expr: None,
            out_name: "s".into(),
        },
        AggSpec {
            func: AggFunc::Min,
            field: Some("x".into()),
            expr: None,
            out_name: "lo".into(),
        },
        AggSpec {
            func: AggFunc::Max,
            field: Some("x".into()),
            expr: None,
            out_name: "hi".into(),
        },
        AggSpec {
            func: AggFunc::StdDev,
            field: Some("x".into()),
            expr: None,
            out_name: "sd".into(),
        },
    ]
}

fn run(mode: AggMode, window: WindowSpec, events: &[(i64, String, f64)]) -> Vec<String> {
    let schema = schema();
    let mut op = WindowAggregateOp::new(&schema, window, &["g"], aggs(), mode).unwrap();
    let mut out = Vec::new();
    for (i, (ts, g, x)) in events.iter().enumerate() {
        let e = Event::new(
            EventId(i as u64),
            "s",
            TimestampMs(*ts),
            Record::from_iter([Value::from(g.as_str()), Value::Float(*x)]),
            Arc::clone(&schema),
        );
        op.on_event(&e, &mut out).unwrap();
    }
    op.on_watermark(TimestampMs(i64::MAX / 2), &mut out).unwrap();
    // Render rows with rounded floats so accumulation-order noise in
    // stddev/sum does not produce false mismatches.
    out.iter()
        .map(|e| {
            e.payload
                .values()
                .iter()
                .map(|v| match v {
                    // Normalize -0.0 and accumulation-order noise.
                    Value::Float(f) => {
                        let f = if *f == 0.0 { 0.0 } else { *f };
                        format!("{:.6}", f)
                    }
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect()
}

/// Events sorted by time (watermark-driven closing assumes in-order
/// arrival within the allowed lateness; we test the zero-lateness core).
fn arb_events() -> impl Strategy<Value = Vec<(i64, String, f64)>> {
    proptest::collection::vec(
        (0i64..5_000, 0u8..3, -100.0f64..100.0),
        1..120,
    )
    .prop_map(|mut v| {
        v.sort_by_key(|(t, _, _)| *t);
        v.into_iter()
            .map(|(t, g, x)| (t, format!("g{g}"), (x * 100.0).round() / 100.0))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_equals_recompute_tumbling(
        events in arb_events(),
        width in 1i64..2_000,
    ) {
        let w = WindowSpec::Tumbling { width_ms: width };
        prop_assert_eq!(
            run(AggMode::Incremental, w, &events),
            run(AggMode::Recompute, w, &events)
        );
    }

    #[test]
    fn incremental_equals_recompute_sliding(
        events in arb_events(),
        slide in 1i64..500,
        mult in 1i64..6,
    ) {
        let w = WindowSpec::Sliding { width_ms: slide * mult, slide_ms: slide };
        prop_assert_eq!(
            run(AggMode::Incremental, w, &events),
            run(AggMode::Recompute, w, &events)
        );
    }

    #[test]
    fn sliding_assignment_is_consistent(ts in -10_000i64..10_000, slide in 1i64..100, mult in 1i64..8) {
        let w = WindowSpec::Sliding { width_ms: slide * mult, slide_ms: slide };
        let starts = w.assign(TimestampMs(ts));
        // Exactly width/slide windows, each actually covering ts.
        prop_assert_eq!(starts.len() as i64, mult);
        for s in starts {
            prop_assert!(s.0 <= ts && ts < s.0 + slide * mult);
            prop_assert_eq!(s.0.rem_euclid(slide), 0);
        }
    }

    #[test]
    fn count_windows_partition_the_stream(events in arb_events(), count in 1usize..10) {
        let schema = schema();
        let mut op = WindowAggregateOp::new(
            &schema,
            WindowSpec::CountTumbling { count },
            &[], // global grouping: windows close every `count` events
            vec![AggSpec { func: AggFunc::Count, field: None, expr: None, out_name: "n".into() }],
            AggMode::Incremental,
        ).unwrap();
        let mut out = Vec::new();
        for (i, (ts, g, x)) in events.iter().enumerate() {
            let e = Event::new(
                EventId(i as u64),
                "s",
                TimestampMs(*ts),
                Record::from_iter([Value::from(g.as_str()), Value::Float(*x)]),
                Arc::clone(&schema),
            );
            op.on_event(&e, &mut out).unwrap();
        }
        prop_assert_eq!(out.len(), events.len() / count);
        for e in &out {
            let n_idx = e.schema.index_of("n").unwrap();
            prop_assert_eq!(e.payload.get(n_idx), Some(&Value::Int(count as i64)));
        }
    }
}
