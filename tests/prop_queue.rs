//! Model-based property test for the queue manager: random
//! enqueue/dequeue/ack/nack/timeout sequences against a reference model,
//! checking the delivery invariants the paper's staging areas promise:
//!
//! * every enqueued message is eventually delivered or dead-lettered,
//!   never lost;
//! * a message is never delivered concurrently twice to one group;
//! * acked messages never reappear;
//! * attempts never exceed `max_attempts` + 1.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;

use evdb::queue::{Delivery, QueueConfig, QueueManager};
use evdb::storage::{Database, DbOptions};
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

#[derive(Debug, Clone)]
enum Op {
    Enqueue(i64),
    Dequeue(usize),
    AckOldest,
    NackOldest,
    AdvanceAndReap,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0i64..1000).prop_map(Op::Enqueue),
        3 => (1usize..4).prop_map(Op::Dequeue),
        2 => Just(Op::AckOldest),
        1 => Just(Op::NackOldest),
        1 => Just(Op::AdvanceAndReap),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn queue_invariants_hold(ops in proptest::collection::vec(arb_op(), 1..60)) {
        const MAX_ATTEMPTS: u32 = 3;
        const VIS_MS: i64 = 1_000;

        let clock = SimClock::new(TimestampMs(0));
        let db = Database::in_memory(DbOptions {
            clock: clock.clone(),
            ..Default::default()
        })
        .unwrap();
        let q = QueueManager::attach(Arc::clone(&db)).unwrap();
        q.create_queue(
            "q",
            Schema::of(&[("x", DataType::Int)]),
            QueueConfig::default()
                .visibility_timeout(VIS_MS)
                .max_attempts(MAX_ATTEMPTS),
        )
        .unwrap();
        q.subscribe("q", "g").unwrap();

        let mut enqueued: HashSet<u64> = HashSet::new();
        let mut acked: HashSet<u64> = HashSet::new();
        let mut inflight: Vec<Delivery> = Vec::new();
        let mut attempts_seen: HashMap<u64, u32> = HashMap::new();

        for op in &ops {
            match op {
                Op::Enqueue(x) => {
                    let id = q.enqueue("q", Record::from_iter([Value::Int(*x)]), "p").unwrap();
                    prop_assert!(enqueued.insert(id), "id reuse: {}", id);
                }
                Op::Dequeue(n) => {
                    let ds = q.dequeue("q", "g", *n).unwrap();
                    for d in ds {
                        // Never deliver an acked message again.
                        prop_assert!(
                            !acked.contains(&d.message.id),
                            "acked message {} redelivered", d.message.id
                        );
                        // Never two concurrent deliveries of one message.
                        prop_assert!(
                            !inflight.iter().any(|x| x.message.id == d.message.id),
                            "concurrent delivery of {}", d.message.id
                        );
                        // Attempts monotonically increase, bounded.
                        let prev = attempts_seen.get(&d.message.id).copied().unwrap_or(0);
                        prop_assert!(d.attempt > prev);
                        prop_assert!(d.attempt <= MAX_ATTEMPTS + 1);
                        attempts_seen.insert(d.message.id, d.attempt);
                        inflight.push(d);
                    }
                }
                Op::AckOldest => {
                    if !inflight.is_empty() {
                        let d = inflight.remove(0);
                        q.ack(&d).unwrap();
                        acked.insert(d.message.id);
                    }
                }
                Op::NackOldest => {
                    if !inflight.is_empty() {
                        let d = inflight.remove(0);
                        q.nack(&d, "test").unwrap();
                    }
                }
                Op::AdvanceAndReap => {
                    clock.advance(VIS_MS + 1);
                    q.reap_timeouts("q").unwrap();
                    // Our un-acked handles are now stale: their messages
                    // may be redelivered. Forget them (the real consumer
                    // crashed).
                    inflight.clear();
                }
            }
        }

        // Drain to a terminal state: ack everything still deliverable,
        // advancing the clock to flush visibility timeouts.
        for d in inflight.drain(..) {
            // These handles may be stale if a timeout advanced past them;
            // ack errors are then expected.
            if q.ack(&d).is_ok() {
                acked.insert(d.message.id);
            }
        }
        for _ in 0..(MAX_ATTEMPTS as usize + 2) {
            clock.advance(VIS_MS + 1);
            q.reap_timeouts("q").unwrap();
            loop {
                let ds = q.dequeue("q", "g", 16).unwrap();
                if ds.is_empty() {
                    break;
                }
                for d in ds {
                    q.ack(&d).unwrap();
                    acked.insert(d.message.id);
                }
            }
        }

        // Conservation: every enqueued message is terminally acked or
        // dead-lettered; nothing lingers, nothing lost.
        let dead = q.dead_letter_count("q").unwrap();
        prop_assert_eq!(
            acked.len() + dead,
            enqueued.len(),
            "acked {} + dead {} != enqueued {}",
            acked.len(), dead, enqueued.len()
        );
        prop_assert_eq!(q.depth("q").unwrap(), 0, "queue fully reclaimed");
    }
}
