//! Integration tests for the bounded staged-ingest path (DESIGN.md D10):
//! cross-stream arrival-order drains, dropped-capture accounting, and the
//! three overload policies observed end to end through `EventServer`.

use std::sync::Arc;
use std::time::Duration;

use evdb::core::server::ServerConfig;
use evdb::core::{CaptureMechanism, EventServer, OverloadPolicy};
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

fn server_with(capacity: usize, overload: OverloadPolicy) -> EventServer {
    EventServer::in_memory(ServerConfig {
        clock: SimClock::new(TimestampMs(0)),
        ingest_capacity: capacity,
        overload,
        ..Default::default()
    })
    .unwrap()
}

fn int_table(server: &EventServer, name: &str) {
    server
        .db()
        .create_table(
            name,
            Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
            "id",
        )
        .unwrap();
}

fn row(id: i64) -> Record {
    Record::from_iter([Value::Int(id), Value::Float(id as f64)])
}

/// Regression: the drain used to group trigger events by stream through
/// a `HashMap`, making cross-stream evaluation order nondeterministic
/// and contradicting the documented "in capture order". Two interleaved
/// producers must come out exactly as they arrived.
#[test]
fn drain_preserves_cross_stream_arrival_order() {
    let server = server_with(1024, OverloadPolicy::Block);
    int_table(&server, "a");
    int_table(&server, "b");
    let sa = server.capture_table("a", CaptureMechanism::Trigger).unwrap();
    let sb = server.capture_table("b", CaptureMechanism::Trigger).unwrap();

    server.db().insert("a", row(1)).unwrap();
    server.db().insert("b", row(1)).unwrap();
    server.db().insert("a", row(2)).unwrap();
    server.db().insert("b", row(2)).unwrap();
    server.db().insert("a", row(3)).unwrap();

    let sources: Vec<String> = server
        .drain_captured()
        .unwrap()
        .iter()
        .map(|e| e.source.to_string())
        .collect();
    assert_eq!(
        sources,
        vec![sa.clone(), sb.clone(), sa.clone(), sb, sa],
        "drained events must interleave exactly as the writers did"
    );
}

/// Regression: staged trigger events whose capture was deregistered
/// between buffering and drain were silently discarded. They are still
/// dropped (their schema is gone) but now counted and visible.
#[test]
fn deregistered_capture_drops_are_counted() {
    let server = server_with(1024, OverloadPolicy::Block);
    int_table(&server, "t");
    server.capture_table("t", CaptureMechanism::Trigger).unwrap();

    server.db().insert("t", row(1)).unwrap(); // staged
    server.remove_capture("t_changes").unwrap();

    let stats = server.pump().unwrap();
    assert_eq!(stats.captured, 0);
    assert_eq!(server.admission().dropped_capture_total(), 1);
    let text = server.registry().render();
    assert!(
        text.contains("evdb_ingest_dropped_capture_total 1"),
        "dropped captures must be visible in the exposition:\n{text}"
    );

    // The trigger is gone: later writes stage nothing and the counter
    // does not move again.
    server.db().insert("t", row(2)).unwrap();
    assert_eq!(server.pump().unwrap().captured, 0);
    assert_eq!(server.admission().dropped_capture_total(), 1);

    assert!(server.remove_capture("t_changes").is_err());
}

/// `Reject` aborts the writer at capacity: the insert rolls back (table
/// and stream stay consistent) and the offer is counted as rejected.
#[test]
fn reject_policy_aborts_writes_at_capacity() {
    let server = server_with(2, OverloadPolicy::Reject);
    int_table(&server, "t");
    server.capture_table("t", CaptureMechanism::Trigger).unwrap();

    server.db().insert("t", row(1)).unwrap();
    server.db().insert("t", row(2)).unwrap();
    let err = server.db().insert("t", row(3)).unwrap_err();
    assert_eq!(err.kind(), "overloaded");
    assert_eq!(
        server.db().table("t").unwrap().len(),
        2,
        "a rejected capture must roll the producer's insert back"
    );

    let stats = server.pump().unwrap();
    assert_eq!(stats.captured, 2);
    let ac = server.admission();
    assert_eq!(ac.rejected_total(), 1);
    assert_eq!(ac.shed_total(), 0);
    assert!(ac.peak_depth() <= 2);
    // offered == evaluated + shed + rejected
    assert_eq!(3, stats.captured + ac.shed_total() + ac.rejected_total());

    // The buffer drained, so the writer's retry goes through.
    server.db().insert("t", row(3)).unwrap();
    assert_eq!(server.pump().unwrap().captured, 1);
}

/// `ShedLowest` keeps the highest-priority staged events: a full buffer
/// of low-priority events is displaced by a higher-priority stream, and
/// a low-priority newcomer into a high-priority buffer sheds itself.
#[test]
fn shed_lowest_prefers_high_priority_streams() {
    let server = server_with(2, OverloadPolicy::ShedLowest);
    let schema = Schema::of(&[("k", DataType::Int)]);
    server.create_stream("lo", Arc::clone(&schema)).unwrap();
    server.create_stream("hi", Arc::clone(&schema)).unwrap();
    server.set_ingest_priority("hi", 10).unwrap();
    assert!(server.set_ingest_priority("ghost", 1).is_err());

    let offer = |stream: &str, k: i64| {
        server
            .ingest_async(stream, TimestampMs(k), Record::from_iter([Value::Int(k)]))
            .unwrap();
    };
    offer("lo", 1);
    offer("lo", 2);
    offer("hi", 3); // displaces lo/1
    offer("hi", 4); // displaces lo/2
    offer("lo", 5); // buffer full of higher priority: newcomer shed

    let drained: Vec<String> = server
        .drain_captured()
        .unwrap()
        .iter()
        .map(|e| e.source.to_string())
        .collect();
    assert_eq!(drained, vec!["hi".to_string(), "hi".to_string()]);
    let ac = server.admission();
    assert_eq!(ac.shed_total(), 3);
    assert_eq!(ac.rejected_total(), 0);
    assert!(ac.peak_depth() <= 2);
    // offered == drained + shed + rejected
    assert_eq!(5, drained.len() as u64 + ac.shed_total() + ac.rejected_total());
    let text = server.registry().render();
    assert!(text.contains("evdb_ingest_shed_total 3"), "{text}");
}

/// `Block` backpressures the producer instead of dropping anything:
/// every offered event is eventually evaluated, nothing is shed or
/// rejected, and the staged depth never exceeds the capacity.
#[test]
fn block_policy_backpressures_producer() {
    let server = Arc::new(server_with(1, OverloadPolicy::Block));
    let schema = Schema::of(&[("k", DataType::Int)]);
    server.create_stream("s", schema).unwrap();

    let producer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for k in 0..50 {
                server
                    .ingest_async("s", TimestampMs(k), Record::from_iter([Value::Int(k)]))
                    .unwrap();
            }
        })
    };
    let mut evaluated = 0u64;
    for _ in 0..20_000 {
        evaluated += server.pump().unwrap().captured;
        if evaluated == 50 {
            break;
        }
        std::thread::sleep(Duration::from_micros(50));
    }
    producer.join().unwrap();
    evaluated += server.pump().unwrap().captured;
    assert_eq!(evaluated, 50);
    let ac = server.admission();
    assert_eq!(ac.shed_total(), 0, "Block must never shed");
    assert_eq!(ac.rejected_total(), 0, "Block must never reject");
    assert!(
        ac.peak_depth() <= 1,
        "staged depth {} exceeded capacity 1",
        ac.peak_depth()
    );
}
