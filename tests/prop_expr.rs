//! Property tests for the expression language: the print→parse
//! round-trip that makes "expressions as data" safe to store, and
//! evaluator totality (no panics, type errors only where typing says so).

use proptest::prelude::*;

use evdb::expr::{parse, BinaryOp, Expr};
use evdb::types::{DataType, FieldDef, Record, Schema, Value};

/// Strategy for leaf expressions over the fixed test schema
/// `(a INT, b FLOAT, s STR, flag BOOL)`.
fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i64..1000).prop_map(Expr::lit),
        (-1000.0f64..1000.0).prop_map(|f| Expr::lit((f * 100.0).round() / 100.0)),
        "[a-z]{0,6}".prop_map(|s| Expr::lit(s.as_str())),
        Just(Expr::lit(true)),
        Just(Expr::lit(false)),
        Just(Expr::Literal(Value::Null)),
        Just(Expr::field("a")),
        Just(Expr::field("b")),
        Just(Expr::field("s")),
        Just(Expr::field("flag")),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Lt, l, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Eq, l, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Add, l, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Mul, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: evdb::expr::UnaryOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(e, lo, hi)| {
                Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: false,
                }
            }),
            (inner.clone(), proptest::collection::vec(inner.clone(), 1..4)).prop_map(
                |(e, list)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: true,
                }
            ),
            inner.clone().prop_map(|e| Expr::IsNull {
                expr: Box::new(e),
                negated: false
            }),
            // Searched CASE.
            (
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner.clone()),
            )
                .prop_map(|(branches, else_expr)| Expr::Case {
                    operand: None,
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
            // Operand CASE.
            (
                inner.clone(),
                proptest::collection::vec((inner.clone(), inner), 1..3),
            )
                .prop_map(|(op, branches)| Expr::Case {
                    operand: Some(Box::new(op)),
                    branches,
                    else_expr: None,
                }),
        ]
    })
}

fn schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        FieldDef::nullable("a", DataType::Int),
        FieldDef::nullable("b", DataType::Float),
        FieldDef::nullable("s", DataType::Str),
        FieldDef::nullable("flag", DataType::Bool),
    ])
    .unwrap()
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        proptest::option::of(-1000i64..1000),
        proptest::option::of(-1000.0f64..1000.0),
        proptest::option::of("[a-z]{0,6}"),
        proptest::option::of(any::<bool>()),
    )
        .prop_map(|(a, b, s, f)| {
            Record::new(vec![
                a.map(Value::Int).unwrap_or(Value::Null),
                b.map(Value::Float).unwrap_or(Value::Null),
                s.map(|x| Value::from(x.as_str())).unwrap_or(Value::Null),
                f.map(Value::Bool).unwrap_or(Value::Null),
            ])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// print → parse reproduces the same AST.
    #[test]
    fn print_parse_round_trip(e in arb_expr()) {
        let text = e.to_string();
        let back = parse(&text)
            .unwrap_or_else(|err| panic!("failed to reparse `{text}`: {err}"));
        prop_assert_eq!(&back, &e, "round trip through `{}`", text);
    }

    /// Rendering is a fixed point: parse(print(e)) prints identically.
    #[test]
    fn printing_is_stable(e in arb_expr()) {
        let once = e.to_string();
        let twice = parse(&once).unwrap().to_string();
        prop_assert_eq!(once, twice);
    }

    /// If an expression binds, evaluation never panics on any record of
    /// the schema, and evaluating twice gives the same answer.
    #[test]
    fn eval_is_total_and_deterministic(e in arb_expr(), r in arb_record()) {
        let schema = schema();
        if let Ok(bound) = e.bind(&schema) {
            let v1 = bound.eval(&r);
            let v2 = bound.eval(&r);
            match (v1, v2) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {} // e.g. integer overflow, both times
                (a, b) => prop_assert!(false, "non-deterministic: {a:?} vs {b:?}"),
            }
        }
    }

    /// Constraint analysis is sound: for indexable conjuncts, an event
    /// accepted by the full predicate is accepted by every constraint.
    #[test]
    fn analysis_constraints_are_implied(e in arb_expr(), r in arb_record()) {
        let schema = schema();
        let Ok(bound) = e.bind_predicate(&schema) else { return Ok(()) };
        let Ok(matched) = bound.matches(&r) else { return Ok(()) };
        if matched {
            let form = evdb::expr::analyze(&e);
            for c in &form.constraints {
                let idx = schema.index_of(c.field()).unwrap();
                let v = r.get(idx).unwrap();
                prop_assert!(
                    c.accepts(v),
                    "predicate `{}` matched {:?} but constraint {:?} rejects",
                    e, r, c
                );
            }
        }
    }
}
