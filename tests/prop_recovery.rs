//! Property test: crash recovery is exact. Apply a random sequence of
//! committed transactions (with random rollbacks and checkpoints mixed
//! in), "crash" by dropping the database, reopen, and require the
//! recovered state to equal a model that only saw the committed
//! operations.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use evdb::faults::FaultInjector;
use evdb::storage::{Database, DbOptions, SyncPolicy};
use evdb::types::{DataType, Record, Schema, Value};

#[derive(Debug, Clone)]
enum Op {
    /// Upsert-ish: insert if free, else update.
    Put(i64, i64),
    Delete(i64),
    /// Multi-op transaction that rolls back (must leave no trace).
    RolledBackPut(i64, i64),
    Checkpoint,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (-20i64..20, any::<i64>()).prop_map(|(k, v)| Op::Put(k, v % 1000)),
        2 => (-20i64..20).prop_map(Op::Delete),
        2 => (-20i64..20, any::<i64>()).prop_map(|(k, v)| Op::RolledBackPut(k, v % 1000)),
        1 => Just(Op::Checkpoint),
    ]
}

fn tmpdir(tag: u64) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "evdb-prop-rec-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recovery_equals_committed_model(ops in proptest::collection::vec(arb_op(), 1..60), seed in 0u64..1_000_000) {
        let dir = tmpdir(seed);
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        {
            let db = Database::open(
                &dir,
                DbOptions {
                    sync: SyncPolicy::Never, // crash consistency comes from framing, not fsync, in-process
                    ..Default::default()
                },
            )
            .unwrap();
            db.create_table("t", Arc::clone(&schema), "k").unwrap();
            for op in &ops {
                match op {
                    Op::Put(k, v) => {
                        let rec = Record::from_iter([Value::Int(*k), Value::Int(*v)]);
                        if model.contains_key(k) {
                            db.update("t", &Value::Int(*k), rec).unwrap();
                        } else {
                            db.insert("t", rec).unwrap();
                        }
                        model.insert(*k, *v);
                    }
                    Op::Delete(k) => {
                        let ours = db.delete("t", &Value::Int(*k)).is_ok();
                        let theirs = model.remove(k).is_some();
                        prop_assert_eq!(ours, theirs);
                    }
                    Op::RolledBackPut(k, v) => {
                        let mut tx = db.begin();
                        let rec = Record::from_iter([Value::Int(*k), Value::Int(*v)]);
                        if model.contains_key(k) {
                            tx.update("t", &Value::Int(*k), rec).unwrap();
                        } else {
                            tx.insert("t", rec).unwrap();
                        }
                        tx.rollback(); // model unchanged
                    }
                    Op::Checkpoint => db.checkpoint().unwrap(),
                }
            }
            // Crash: drop without a final checkpoint.
        }

        // Recover and compare to the committed model exactly.
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        let t = db.table("t").unwrap();
        prop_assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            let row = t.get(&Value::Int(*k));
            prop_assert_eq!(
                row.as_ref().and_then(|r| r.get(1)).and_then(Value::as_int),
                Some(*v),
                "key {} after recovery", k
            );
        }
        // The recovered database accepts new writes with consistent ids.
        db.insert("t", Record::from_iter([Value::Int(1_000), Value::Int(1)])).unwrap();
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Same op language, but the crash is *injected mid-write* at a
    /// sampled fault site instead of always landing on a frame boundary:
    /// arm a [`FaultInjector`] with a proptest-chosen countdown, run the
    /// interleaved put/delete/checkpoint workload until the power cut,
    /// then require the recovered state to equal the committed model —
    /// or the model plus the single op in flight at the crash, which may
    /// legitimately persist when its full frame landed before the cut
    /// (`CutAfterWrite`). Torn/corrupt frames must never half-apply.
    #[test]
    fn injected_crash_recovers_committed_prefix(
        ops in proptest::collection::vec(arb_op(), 1..60),
        seed in 0u64..1_000_000,
        countdown in 0u64..80,
    ) {
        let dir = tmpdir(seed.wrapping_add(0xC0DE));
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let injector = FaultInjector::new(seed);
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        // (key, Some(v)) = put in flight, (key, None) = delete in flight.
        let mut pending: Option<(i64, Option<i64>)> = None;
        {
            let db = Database::open(
                &dir,
                DbOptions {
                    sync: SyncPolicy::Never,
                    faults: Some(Arc::clone(&injector)),
                    ..Default::default()
                },
            )
            .unwrap();
            db.create_table("t", Arc::clone(&schema), "k").unwrap();
            injector.arm(countdown, injector_fault(seed));
            for op in &ops {
                let r = match op {
                    Op::Put(k, v) => {
                        let rec = Record::from_iter([Value::Int(*k), Value::Int(*v)]);
                        let r = if model.contains_key(k) {
                            db.update("t", &Value::Int(*k), rec).map(|_| ())
                        } else {
                            db.insert("t", rec).map(|_| ())
                        };
                        if r.is_ok() {
                            model.insert(*k, *v);
                        } else {
                            pending = Some((*k, Some(*v)));
                        }
                        r
                    }
                    Op::Delete(k) => {
                        if !model.contains_key(k) {
                            continue;
                        }
                        let r = db.delete("t", &Value::Int(*k)).map(|_| ());
                        if r.is_ok() {
                            model.remove(k);
                        } else {
                            pending = Some((*k, None));
                        }
                        r
                    }
                    Op::RolledBackPut(k, v) => {
                        let mut tx = db.begin();
                        let rec = Record::from_iter([Value::Int(*k), Value::Int(*v)]);
                        let r = if model.contains_key(k) {
                            tx.update("t", &Value::Int(*k), rec).map(|_| ())
                        } else {
                            tx.insert("t", rec).map(|_| ())
                        };
                        match r {
                            Ok(()) => {
                                tx.rollback(); // model unchanged
                                Ok(())
                            }
                            Err(e) => Err(e),
                        }
                    }
                    // A checkpoint crash changes no logical state, whichever
                    // of its four fault sites fires.
                    Op::Checkpoint => db.checkpoint().map(|_| ()),
                };
                if let Err(e) = r {
                    prop_assert!(FaultInjector::is_crash(&e), "unexpected error: {e}");
                    break;
                }
            }
        }

        // Recover with no injector and compare against the model, modulo
        // the in-flight op.
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        let t = db.table("t").unwrap();
        let mut got: BTreeMap<i64, i64> = BTreeMap::new();
        for k in -20i64..20 {
            if let Some(row) = t.get(&Value::Int(k)) {
                got.insert(k, row.get(1).and_then(Value::as_int).unwrap());
            }
        }
        prop_assert_eq!(t.len(), got.len());
        let mut with_pending = model.clone();
        match pending {
            Some((k, Some(v))) => {
                with_pending.insert(k, v);
            }
            Some((k, None)) => {
                with_pending.remove(&k);
            }
            None => {}
        }
        prop_assert!(
            got == model || got == with_pending,
            "site {:?}: recovered {:?} != committed {:?} nor +pending {:?}",
            injector.crash_site(), got, model, with_pending
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Pick the injected fault kind from the case seed so the whole
/// [`evdb::faults::IoFault`] menu gets proptest coverage.
fn injector_fault(seed: u64) -> evdb::faults::IoFault {
    use evdb::faults::IoFault;
    IoFault::ALL[(seed % IoFault::ALL.len() as u64) as usize]
}
