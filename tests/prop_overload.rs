//! Property tests for admission control (DESIGN.md D10): over random
//! producer/pump interleavings every offered event is accounted for —
//! `offered == drained + shed + rejected` — no event is both shed and
//! drained for evaluation, and `Block` never sheds or rejects anything.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use evdb::core::server::ServerConfig;
use evdb::core::{EventServer, OverloadPolicy};
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

/// A server with three free-standing streams at shed priorities 0/1/2.
fn overload_server(capacity: usize, overload: OverloadPolicy) -> EventServer {
    let server = EventServer::in_memory(ServerConfig {
        clock: SimClock::new(TimestampMs(0)),
        ingest_capacity: capacity,
        overload,
        ..Default::default()
    })
    .unwrap();
    let schema = Schema::of(&[("k", DataType::Int)]);
    for p in 0..3 {
        let name = format!("p{p}");
        server.create_stream(&name, Arc::clone(&schema)).unwrap();
        server.set_ingest_priority(&name, p).unwrap();
    }
    server
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded random interleavings of offers (on streams of
    /// differing shed priority) and pump drains, under `Reject` and
    /// `ShedLowest`: the accounting balances exactly, drains never
    /// duplicate or invent events, and the staged depth respects the
    /// capacity bound.
    #[test]
    fn interleavings_balance_exactly(
        use_shed in 0..2u8,
        capacity in 1..6usize,
        // (action, stream): action 0..=2 offers on stream p{action},
        // action 3 drains.
        ops in proptest::collection::vec(0..4u8, 1..200),
    ) {
        let policy = if use_shed == 1 {
            OverloadPolicy::ShedLowest
        } else {
            OverloadPolicy::Reject
        };
        let server = overload_server(capacity, policy);

        let mut offered: u64 = 0;
        let mut rejected_seen: u64 = 0;
        let mut drained_ids: Vec<i64> = Vec::new();
        for (seq, op) in ops.iter().enumerate() {
            if *op < 3 {
                offered += 1;
                let r = server.ingest_async(
                    &format!("p{op}"),
                    TimestampMs(seq as i64),
                    Record::from_iter([Value::Int(seq as i64)]),
                );
                match r {
                    Ok(()) => {}
                    Err(e) => {
                        prop_assert_eq!(e.kind(), "overloaded");
                        rejected_seen += 1;
                    }
                }
                prop_assert!(server.admission().depth() <= capacity);
            } else {
                for ev in server.drain_captured().unwrap() {
                    drained_ids.push(ev.payload.get(0).unwrap().as_int().unwrap());
                }
            }
        }
        for ev in server.drain_captured().unwrap() {
            drained_ids.push(ev.payload.get(0).unwrap().as_int().unwrap());
        }

        let ac = server.admission();
        // Rejections only under Reject, sheds only under ShedLowest.
        prop_assert_eq!(ac.rejected_total(), rejected_seen);
        match policy {
            OverloadPolicy::Reject => prop_assert_eq!(ac.shed_total(), 0),
            OverloadPolicy::ShedLowest => prop_assert_eq!(ac.rejected_total(), 0),
            OverloadPolicy::Block => unreachable!(),
        }
        // offered == drained + shed + rejected, exactly.
        prop_assert_eq!(
            offered,
            drained_ids.len() as u64 + ac.shed_total() + ac.rejected_total()
        );
        // Each offered event is unique, so a drain sequence without
        // duplicates means no event was both shed and evaluated.
        let mut seen = std::collections::HashSet::new();
        for id in &drained_ids {
            prop_assert!(seen.insert(*id), "event {} drained twice", id);
        }
        prop_assert!(ac.peak_depth() as usize <= capacity);
    }
}

proptest! {
    // Each case spins a real producer thread; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `Block` under a concurrent producer: every offered event is
    /// drained exactly once in arrival order, nothing is shed or
    /// rejected, and the staged depth never exceeds the capacity.
    #[test]
    fn block_never_sheds(
        capacity in 1..4usize,
        n in 1..80i64,
    ) {
        let server = Arc::new(overload_server(capacity, OverloadPolicy::Block));
        let producer = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for k in 0..n {
                    server
                        .ingest_async(
                            &format!("p{}", k % 3),
                            TimestampMs(k),
                            Record::from_iter([Value::Int(k)]),
                        )
                        .unwrap();
                }
            })
        };
        let mut drained_ids: Vec<i64> = Vec::new();
        let t0 = Instant::now();
        while (drained_ids.len() as i64) < n {
            prop_assert!(
                t0.elapsed() < Duration::from_secs(30),
                "blocked producer never unblocked"
            );
            for ev in server.drain_captured().unwrap() {
                drained_ids.push(ev.payload.get(0).unwrap().as_int().unwrap());
            }
        }
        producer.join().unwrap();

        // One producer: arrival order is offer order, exactly once each.
        let expected: Vec<i64> = (0..n).collect();
        prop_assert_eq!(drained_ids, expected);
        let ac = server.admission();
        prop_assert_eq!(ac.shed_total(), 0, "Block must never shed");
        prop_assert_eq!(ac.rejected_total(), 0, "Block must never reject");
        prop_assert!(ac.peak_depth() as usize <= capacity);
    }
}
