//! Property tests for the network frame codec (`evdb_server::frame`):
//! under arbitrary payloads, arbitrary read-boundary splits, and
//! arbitrary garbage bytes, the decoder never panics, never desyncs on
//! well-formed input, and round-trips every payload byte-identically.

use proptest::prelude::*;

use evdb::net::frame::{encode_frame_vec, FrameDecoder, MAX_FRAME};

/// Feed `bytes` to a decoder in chunks of the given sizes (cycling;
/// a final push delivers any remainder), draining after every push.
fn decode_chunked(bytes: &[u8], chunks: &[usize]) -> Vec<Result<Vec<u8>, String>> {
    let mut decoder = FrameDecoder::new();
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < bytes.len() {
        let step = if chunks.is_empty() {
            bytes.len()
        } else {
            chunks[i % chunks.len()].max(1)
        };
        let end = (pos + step).min(bytes.len());
        decoder.push(&bytes[pos..end]);
        while let Some(frame) = decoder.next_frame() {
            out.push(frame.map_err(|e| e.to_string()));
        }
        pos = end;
        i += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Encode a batch of arbitrary payloads, deliver the byte stream
    /// split at arbitrary boundaries: every payload decodes exactly
    /// once, in order, byte-identical — no partial read can desync the
    /// framing.
    #[test]
    fn round_trips_across_arbitrary_splits(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..80),
            0..12,
        ),
        chunks in proptest::collection::vec(1..9usize, 0..32),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&encode_frame_vec(p));
        }
        let decoded = decode_chunked(&wire, &chunks);
        prop_assert_eq!(decoded.len(), payloads.len());
        for (got, want) in decoded.iter().zip(&payloads) {
            prop_assert_eq!(got.as_ref().unwrap(), want, "payload corrupted in transit");
        }
    }

    /// Arbitrary byte soup never panics the decoder, every produced
    /// frame respects the size cap, and the internal buffer stays
    /// bounded by what was pushed (no amplification).
    #[test]
    fn garbage_never_panics_or_amplifies(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
        chunks in proptest::collection::vec(1..17usize, 0..16),
    ) {
        let mut decoder = FrameDecoder::new();
        let mut pos = 0;
        let mut i = 0;
        while pos < bytes.len() {
            let step = if chunks.is_empty() {
                bytes.len()
            } else {
                chunks[i % chunks.len()]
            };
            let end = (pos + step).min(bytes.len());
            decoder.push(&bytes[pos..end]);
            while let Some(frame) = decoder.next_frame() {
                if let Ok(payload) = frame {
                    prop_assert!(payload.len() <= MAX_FRAME);
                }
            }
            prop_assert!(
                decoder.pending() <= bytes.len(),
                "decoder retained more than it was fed"
            );
            pos = end;
            i += 1;
        }
    }

    /// Garbage between well-formed frames is reported as an error (or
    /// consumed as a bogus line frame) without losing the frames that
    /// follow: the decoder resynchronizes on the next boundary.
    #[test]
    fn resyncs_after_interleaved_garbage(
        before in proptest::collection::vec(any::<u8>(), 0..40),
        payload in proptest::collection::vec(any::<u8>(), 0..60),
        chunks in proptest::collection::vec(1..9usize, 0..12),
    ) {
        // Terminate the garbage with a newline so it forms (at worst) a
        // complete bogus frame or a framing error, then a real frame.
        let mut wire = before.clone();
        wire.push(b'\n');
        wire.extend_from_slice(&encode_frame_vec(&payload));
        let decoded = decode_chunked(&wire, &chunks);
        let last = decoded.last().expect("trailing frame must decode");
        prop_assert_eq!(
            last.as_ref().unwrap(),
            &payload,
            "decoder failed to resync after garbage"
        );
    }

    /// Interleaving frames from two logical producers on one stream
    /// (as the shared writer does: replies + pushes) preserves global
    /// order — framing adds no reordering.
    #[test]
    fn interleaved_frames_keep_order(
        a in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 0..8),
        b in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 0..8),
        chunks in proptest::collection::vec(1..6usize, 0..24),
    ) {
        let mut order = Vec::new();
        let mut wire = Vec::new();
        let (mut ia, mut ib) = (0, 0);
        while ia < a.len() || ib < b.len() {
            // Deterministic alternation; chunking supplies the entropy.
            if ia < a.len() && (ib >= b.len() || ia <= ib) {
                order.push(a[ia].clone());
                wire.extend_from_slice(&encode_frame_vec(&a[ia]));
                ia += 1;
            } else {
                order.push(b[ib].clone());
                wire.extend_from_slice(&encode_frame_vec(&b[ib]));
                ib += 1;
            }
        }
        let decoded = decode_chunked(&wire, &chunks);
        prop_assert_eq!(decoded.len(), order.len());
        for (got, want) in decoded.iter().zip(&order) {
            prop_assert_eq!(got.as_ref().unwrap(), want);
        }
    }
}
