//! Sequential-equivalence and stress harness for the sharded pump
//! (`PumpMode::Sharded`): the same trace, pushed through the classic
//! single-threaded `pump()` and through the router/worker/merge
//! pipeline, must produce the identical notification multiset, the
//! identical per-key delivery order, and identical engine counters.
//!
//! The clock is a pinned `SimClock`, which makes the VIRT filter (whose
//! suppression and rate-limit state is entirely per key) a pure
//! function of each key's notification sequence — so any divergence
//! between the two modes is a real ordering or loss bug, not timing.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use evdb::analytics::detector::UpdatePolicy;
use evdb::analytics::ThresholdModel;
use evdb::core::server::ServerConfig;
use evdb::core::{spawn_pump_with, EventServer, Notification, PumpMode, VirtPolicy};
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

const SYMS: [&str; 8] = ["AAA", "BBB", "CCC", "DDD", "EEE", "FFF", "GGG", "HHH"];

/// A server with the full evaluation surface on four streams: keyed
/// alert rules everywhere, a windowed CQ on `s1`, a keyed threshold
/// detector on `s0`, and a VIRT policy with suppression + rate limiting
/// so delivery decisions depend on per-key history.
fn build_server(clock: Arc<SimClock>) -> Arc<EventServer> {
    let server = EventServer::in_memory(ServerConfig {
        clock,
        virt: VirtPolicy {
            suppression_window_ms: 5_000,
            max_per_key_per_window: 3,
            rate_window_ms: 10_000,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
    for i in 0..4 {
        let stream = format!("s{i}");
        server.create_stream(&stream, Arc::clone(&schema)).unwrap();
        server
            .add_alert_rule(&format!("hot{i}"), &stream, "px > 60", 1.0, Some("sym"))
            .unwrap();
        server
            .add_alert_rule(&format!("crit{i}"), &stream, "px > 85", 2.0, None)
            .unwrap();
    }
    server
        .register_cql(
            "avg1",
            "SELECT sym, avg(px) AS apx FROM s1 [RANGE 1 s] GROUP BY sym",
        )
        .unwrap();
    server
        .add_detector(
            "band",
            "s0",
            "px",
            Some("sym"),
            UpdatePolicy::Always,
            || Box::new(ThresholdModel::new(5.0, 80.0)),
        )
        .unwrap();
    Arc::new(server)
}

fn trace(n: usize, seed: u64) -> Vec<(String, TimestampMs, Record)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let stream = format!("s{}", rng.gen_range(0..4));
            let sym = SYMS[rng.gen_range(0..SYMS.len())];
            let px = rng.gen_range(0.0..100.0);
            (
                stream,
                TimestampMs(i as i64),
                Record::from_iter([Value::from(sym), Value::Float(px)]),
            )
        })
        .collect()
}

fn stage(server: &EventServer, trace: &[(String, TimestampMs, Record)]) {
    for (stream, ts, payload) in trace {
        server.ingest_async(stream, *ts, payload.clone()).unwrap();
    }
}

fn wait_processed(server: &EventServer, n: u64, budget: Duration) {
    let t0 = Instant::now();
    while server.metrics().snapshot().events_processed < n {
        assert!(
            t0.elapsed() < budget,
            "pump stalled: {} of {n} events processed",
            server.metrics().snapshot().events_processed
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Canonical form for multiset comparison.
fn canon(notes: &[Notification]) -> Vec<(String, u64, String, String, i64)> {
    let mut v: Vec<_> = notes
        .iter()
        .map(|n| {
            (
                n.key.clone(),
                n.severity.to_bits(),
                n.title.clone(),
                n.body.clone(),
                n.timestamp.0,
            )
        })
        .collect();
    v.sort();
    v
}

/// Delivery order per key (the order-sensitive half of equivalence).
fn per_key_order(notes: &[Notification]) -> HashMap<String, Vec<(String, i64)>> {
    let mut m: HashMap<String, Vec<(String, i64)>> = HashMap::new();
    for n in notes {
        m.entry(n.key.clone())
            .or_default()
            .push((n.title.clone(), n.timestamp.0));
    }
    m
}

#[test]
fn sharded_pump_is_sequentially_equivalent() {
    const N: usize = 2_000;
    let events = trace(N, 4207);

    // Reference: the classic single-threaded pump, one drain.
    let seq = build_server(SimClock::new(TimestampMs(0)));
    stage(&seq, &events);
    let stats = seq.pump().unwrap();
    assert_eq!(stats.captured, N as u64);
    let seq_delivered = seq.notifications().drain_delivered();
    let seq_snap = seq.metrics().snapshot();

    for workers in [1usize, 2, 4, 8] {
        let shr = build_server(SimClock::new(TimestampMs(0)));
        stage(&shr, &events);
        let handle = spawn_pump_with(
            &shr,
            Duration::from_millis(1),
            PumpMode::Sharded { workers },
        );
        wait_processed(&shr, N as u64, Duration::from_secs(30));
        assert_eq!(handle.errors(), 0);
        handle.stop();

        let delivered = shr.notifications().drain_delivered();
        let snap = shr.metrics().snapshot();

        assert_eq!(
            canon(&delivered),
            canon(&seq_delivered),
            "notification multiset diverged at {workers} workers"
        );
        assert_eq!(
            per_key_order(&delivered),
            per_key_order(&seq_delivered),
            "per-key delivery order diverged at {workers} workers"
        );
        assert_eq!(snap.events_captured, seq_snap.events_captured);
        assert_eq!(snap.events_processed, seq_snap.events_processed);
        assert_eq!(snap.derived_events, seq_snap.derived_events);
        assert_eq!(snap.deviations, seq_snap.deviations);
        assert_eq!(snap.notifications, seq_snap.notifications);
        assert_eq!(snap.suppressed, seq_snap.suppressed);

        // Routing bookkeeping: everything routed, nothing left queued.
        let shards = shr.metrics().shard_snapshots();
        assert_eq!(shards.len(), workers);
        assert_eq!(
            shards.iter().map(|s| s.events_routed).sum::<u64>(),
            N as u64
        );
        assert!(shards.iter().all(|s| s.queue_depth == 0));
    }
}

/// A keyed hot stream: one stream partitioned by `sym` spreads over the
/// workers while still matching the sequential outcome (rules and the
/// detector are keyed by the same field, and no CQ reads the stream).
#[test]
fn keyed_partitioning_is_sequentially_equivalent() {
    const N: usize = 1_500;
    let mut rng = StdRng::seed_from_u64(99);
    let events: Vec<(TimestampMs, Record)> = (0..N)
        .map(|i| {
            let sym = SYMS[rng.gen_range(0..SYMS.len())];
            let px = rng.gen_range(0.0..100.0);
            (
                TimestampMs(i as i64),
                Record::from_iter([Value::from(sym), Value::Float(px)]),
            )
        })
        .collect();

    let build = || {
        let server = EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            virt: VirtPolicy {
                suppression_window_ms: 5_000,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap();
        server
            .create_stream(
                "ticks",
                Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]),
            )
            .unwrap();
        server
            .add_alert_rule("hot", "ticks", "px > 70", 1.0, Some("sym"))
            .unwrap();
        server
            .add_detector(
                "band",
                "ticks",
                "px",
                Some("sym"),
                UpdatePolicy::Always,
                || Box::new(ThresholdModel::new(5.0, 80.0)),
            )
            .unwrap();
        Arc::new(server)
    };

    let seq = build();
    for (ts, payload) in &events {
        seq.ingest_async("ticks", *ts, payload.clone()).unwrap();
    }
    seq.pump().unwrap();
    let seq_delivered = seq.notifications().drain_delivered();

    let shr = build();
    shr.set_partition_field("ticks", "sym").unwrap();
    for (ts, payload) in &events {
        shr.ingest_async("ticks", *ts, payload.clone()).unwrap();
    }
    let handle = spawn_pump_with(
        &shr,
        Duration::from_millis(1),
        PumpMode::Sharded { workers: 4 },
    );
    wait_processed(&shr, N as u64, Duration::from_secs(30));
    handle.stop();
    let delivered = shr.notifications().drain_delivered();

    assert_eq!(canon(&delivered), canon(&seq_delivered));
    assert_eq!(per_key_order(&delivered), per_key_order(&seq_delivered));
    // The point of keying: the hot stream actually spread over shards.
    let busy = shr
        .metrics()
        .shard_snapshots()
        .iter()
        .filter(|s| s.events_routed > 0)
        .count();
    assert!(busy > 1, "keyed stream should occupy multiple shards");
}

/// Multi-threaded stress: four producers feed four streams while the
/// sharded pump runs and the main thread churns alert rules. Nothing
/// deadlocks, nothing is lost, and dropping the handle shuts the
/// pipeline down cleanly.
#[test]
fn concurrent_producers_with_rule_churn() {
    const PER_PRODUCER: usize = 2_000;
    let server = build_server(SimClock::new(TimestampMs(0)));
    let handle = spawn_pump_with(
        &server,
        Duration::from_millis(1),
        PumpMode::Sharded { workers: 4 },
    );

    let producers: Vec<_> = (0..4)
        .map(|p| {
            let s = Arc::clone(&server);
            std::thread::spawn(move || {
                let stream = format!("s{p}");
                let mut rng = StdRng::seed_from_u64(p as u64);
                for i in 0..PER_PRODUCER {
                    let sym = SYMS[rng.gen_range(0..SYMS.len())];
                    let px = rng.gen_range(0.0..100.0);
                    s.ingest_async(
                        &stream,
                        TimestampMs(i as i64),
                        Record::from_iter([Value::from(sym), Value::Float(px)]),
                    )
                    .unwrap();
                }
            })
        })
        .collect();

    // Rule churn while events are in flight: adds and removals must
    // never wedge the evaluation pipeline or corrupt the matcher.
    for round in 0..50 {
        let stream = format!("s{}", round % 4);
        let id = server
            .add_alert_rule("churn", &stream, "px > 99", 0.5, None)
            .unwrap();
        std::thread::sleep(Duration::from_micros(200));
        server.remove_alert_rule(&stream, id).unwrap();
    }

    for p in producers {
        p.join().unwrap();
    }
    wait_processed(&server, (4 * PER_PRODUCER) as u64, Duration::from_secs(60));
    assert_eq!(handle.errors(), 0);
    drop(handle); // clean shutdown via Drop, not stop()

    let snap = server.metrics().snapshot();
    assert_eq!(snap.events_captured, (4 * PER_PRODUCER) as u64);
    assert_eq!(snap.events_processed, (4 * PER_PRODUCER) as u64);
    assert!(server
        .metrics()
        .shard_snapshots()
        .iter()
        .all(|s| s.queue_depth == 0));
}

/// Events staged after the stop signal but before the router's final
/// drain are still delivered (the shutdown path's final-drain
/// guarantee), and a handle can be dropped with work still queued.
#[test]
fn stop_flushes_staged_events() {
    let server = build_server(SimClock::new(TimestampMs(0)));
    let handle = spawn_pump_with(
        &server,
        Duration::from_millis(250), // long interval: events wait for the final drain
        PumpMode::Sharded { workers: 2 },
    );
    // The first drain happens immediately at spawn; stage afterwards.
    std::thread::sleep(Duration::from_millis(30));
    for i in 0..100 {
        server
            .ingest_async(
                "s0",
                TimestampMs(i),
                Record::from_iter([Value::from("AAA"), Value::Float(50.0)]),
            )
            .unwrap();
    }
    handle.stop(); // must final-drain, not discard
    assert_eq!(server.metrics().snapshot().events_processed, 100);
}
