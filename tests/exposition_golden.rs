//! Golden test for the Prometheus-style text exposition: a fixed
//! workload on a simulated clock must render exactly the metric names,
//! `# TYPE` lines and line order recorded in
//! `tests/fixtures/exposition.golden`. Sample *values* are normalized
//! to `V` (wall-clock-derived numbers vary run to run); everything
//! else — which metrics exist, their kinds, their ordering — is pinned.
//!
//! Regenerate after intentional changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test exposition_golden
//! ```

use std::sync::Arc;

use evdb::core::metrics::Registry;
use evdb::core::server::ServerConfig;
use evdb::core::{CaptureMechanism, EventServer};
use evdb::net::hub::{Hub, ServerMetrics};
use evdb::obs::normalize_exposition;
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/exposition.golden"
);

/// The fixed workload: capture + one rule + one CQ, three inserts, one
/// pump, on a simulated clock.
fn render_fixed_workload() -> String {
    let clock = SimClock::new(TimestampMs(0));
    let server = EventServer::in_memory(ServerConfig {
        clock: clock.clone(),
        registry: Arc::new(Registry::new()),
        ..Default::default()
    })
    .unwrap();
    // Bind the network layer's counters/gauges too, so the golden pins
    // the full exposition a deployed `evdb-server` serves on /metrics.
    let hub = Hub::new();
    let metrics = Arc::new(ServerMetrics::bind(server.registry(), &hub));
    hub.set_metrics(metrics);
    server
        .db()
        .create_table(
            "orders",
            Schema::of(&[("oid", DataType::Int), ("amount", DataType::Float)]),
            "oid",
        )
        .unwrap();
    let stream = server
        .capture_table("orders", CaptureMechanism::Trigger)
        .unwrap();
    server
        .add_alert_rule("big", &stream, "amount > 10", 2.0, None)
        .unwrap();
    server
        .register_cql(
            "volume",
            &format!("SELECT count() AS n FROM {stream} [ROWS 2]"),
        )
        .unwrap();
    for oid in 0..3 {
        server
            .db()
            .insert(
                "orders",
                Record::from_iter([Value::Int(oid), Value::Float(100.0 * oid as f64)]),
            )
            .unwrap();
    }
    clock.advance(5);
    server.pump().unwrap();
    server.registry().render()
}

#[test]
fn exposition_matches_golden() {
    let normalized = normalize_exposition(&render_fixed_workload());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &normalized).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN)
        .expect("missing tests/fixtures/exposition.golden — run with UPDATE_GOLDEN=1");
    assert_eq!(
        normalized, expected,
        "text exposition drifted from the golden fixture; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn exposition_covers_every_layer() {
    let text = render_fixed_workload();
    // One spot check per layer registered into the unified registry.
    for name in [
        "evdb_stage_capture_events_total",   // stage tracing
        "evdb_stage_deliver_latency_ms_sum", // stage histograms
        "evdb_storage_wal_append_ms_count",  // storage
        "evdb_rules_candidates_total",       // rules
        "evdb_cq_panes_total",               // continuous queries
        "evdb_core_events_processed",        // engine bridge gauges
        "evdb_notify_delivered",             // notification center
        "evdb_ingest_depth",                 // admission control (D10)
        "evdb_ingest_shed_total",            // no-silent-caps counters
        "evdb_ingest_rejected_total",
        "evdb_queue_purged_inflight_total",  // retention-race no-ops
        "evdb_cq_retractions_total",         // out-of-order deltas (D12)
        "evdb_cq_pane_reopens_total",
        "evdb_cq_late_admitted_total",
        "evdb_cq_late_dropped_total",
        "evdb_cq_dup_dropped_total",         // replay dedup window
        "evdb_server_connections_total",     // network frontends (D13)
        "evdb_server_updates_dropped_total", // fan-out shed accounting
        "evdb_server_subscriptions_active",  // live subscription gauge
    ] {
        assert!(text.contains(name), "exposition missing {name}:\n{text}");
    }
}
