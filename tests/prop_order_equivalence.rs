//! Differential order-equivalence suite (ISSUE: out-of-order done right).
//!
//! The contract under test: for any event stream and any arrival
//! disorder bounded by the allowed lateness, the *compacted* answer of a
//! continuous query — inserts minus retractions, folded by [`DeltaLog`]
//! — is identical to the answer of the same query over the in-order
//! stream. This must hold at both consistency levels (DESIGN.md D12):
//!
//! * `EMIT WATERMARK` gates on the watermark and must emit **zero**
//!   retractions (asserted on every case);
//! * `EMIT SPECULATIVE` emits eagerly and revises; its retractions must
//!   be exactly accounted (`inserted == final + retracted`).
//!
//! Five properties × 128 cases = 640 random streams per run, covering
//! windowed aggregates (tumbling + sliding), WAL-prefix duplicate
//! replay, stream joins under revision, pattern matching under
//! reordering, and the delta-compaction algebra itself.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use evdb::cq::aggregate::AggMode;
use evdb::cq::delta::{ConsistencyLevel, DeltaLog};
use evdb::cq::join::StreamJoinOp;
use evdb::cq::op::Operator;
use evdb::cq::pattern::{Pattern, PatternMatcher, RevisablePatternMatcher, SkipStrategy, Step};
use evdb::cq::{compile_query, StreamRuntime};
use evdb::expr::parse;
use evdb::types::{DataType, Event, EventId, Record, Schema, TimestampMs, Value};

/// A generated event: (event time, group, integer-valued measure, delay).
/// The delay models network/processing skew: arrival order sorts by
/// `ts + delay`, and every delay is bounded by the allowed lateness so
/// nothing is ever beyond the finality horizon.
type GenEvent = (i64, u8, i64, i64);

const LATENESS: i64 = 256;

fn agg_schema() -> Arc<Schema> {
    Schema::of(&[("g", DataType::Str), ("x", DataType::Float)])
}

fn arb_disordered() -> impl Strategy<Value = Vec<GenEvent>> {
    proptest::collection::vec((0i64..3_000, 0u8..3, -50i64..50, 0i64..LATENESS), 1..70)
}

fn arrival_order(events: &[GenEvent]) -> Vec<(usize, GenEvent)> {
    let mut v: Vec<(usize, GenEvent)> = events.iter().copied().enumerate().collect();
    v.sort_by_key(|(i, (ts, _, _, d))| (ts + d, *i));
    v
}

fn event_time_order(events: &[GenEvent]) -> Vec<(usize, GenEvent)> {
    let mut v: Vec<(usize, GenEvent)> = events.iter().copied().enumerate().collect();
    v.sort_by_key(|(i, (ts, _, _, _))| (*ts, *i));
    v
}

/// Run a windowed aggregate over `feed` and fold the delta stream.
/// Returns the compacted rows plus (inserted, retracted) totals.
fn run_agg(
    feed: &[(usize, GenEvent)],
    width: i64,
    slide: i64,
    level: ConsistencyLevel,
) -> (Vec<String>, u64, u64) {
    let schema = agg_schema();
    let rt = StreamRuntime::new(LATENESS);
    rt.create_stream("s", Arc::clone(&schema)).unwrap();
    let emit = match level {
        ConsistencyLevel::Speculative => "SPECULATIVE",
        ConsistencyLevel::Watermark => "WATERMARK",
    };
    let cql = format!(
        "SELECT g, window_start, count() AS n, sum(x) AS s, \
         min(x) AS lo, max(x) AS hi, avg(x) AS a \
         FROM s [RANGE {width} ms SLIDE {slide} ms] GROUP BY g EMIT {emit}"
    );
    let pipeline = compile_query(&cql, &schema, AggMode::Incremental).unwrap();
    rt.register_query_with("q", "s", pipeline, level).unwrap();

    let mut log = DeltaLog::default();
    for (_, (ts, g, x, _)) in feed {
        let payload =
            Record::from_iter([Value::from(format!("g{g}").as_str()), Value::Float(*x as f64)]);
        for out in rt.push("s", TimestampMs(*ts), payload).unwrap() {
            log.observe(&out);
        }
    }
    for out in rt.flush("s", TimestampMs(i64::MAX / 8)).unwrap() {
        log.observe(&out);
    }
    (log.rows(), log.inserted(), log.retracted())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Windowed aggregates: shuffled-in × {Speculative, Watermark} both
    /// converge to the in-order answer; Watermark never retracts;
    /// Speculative retractions balance exactly.
    #[test]
    fn aggregates_converge_across_arrival_orders(
        events in arb_disordered(),
        slide in 1i64..400,
        mult in 1i64..5,
    ) {
        let width = slide * mult;
        let in_order = event_time_order(&events);
        let arrival = arrival_order(&events);

        let (reference, ref_ins, ref_ret) =
            run_agg(&in_order, width, slide, ConsistencyLevel::Watermark);
        prop_assert_eq!(ref_ret, 0);
        prop_assert_eq!(ref_ins as usize, reference.len());

        let (wm_rows, _, wm_ret) =
            run_agg(&arrival, width, slide, ConsistencyLevel::Watermark);
        prop_assert_eq!(wm_ret, 0, "watermark level must be retraction-free");
        prop_assert_eq!(&wm_rows, &reference);

        let (spec_rows, spec_ins, spec_ret) =
            run_agg(&arrival, width, slide, ConsistencyLevel::Speculative);
        prop_assert_eq!(&spec_rows, &reference);
        prop_assert_eq!(
            spec_ins, spec_rows.len() as u64 + spec_ret,
            "every speculative insert is either final or retracted"
        );

        let (spec_in_order, _, _) =
            run_agg(&in_order, width, slide, ConsistencyLevel::Speculative);
        prop_assert_eq!(&spec_in_order, &reference);
    }

    /// Replaying a WAL prefix (crash-recovery re-delivery) must not
    /// change any answer once the dedup window is on, and every
    /// duplicate must be counted.
    #[test]
    fn replayed_wal_prefix_changes_nothing(
        events in arb_disordered(),
        width in 1i64..800,
        prefix_frac in 0u8..=100,
    ) {
        let arrival = arrival_order(&events);
        let prefix_len = arrival.len() * prefix_frac as usize / 100;

        let run = |replay: bool| {
            let schema = agg_schema();
            let rt = StreamRuntime::new(LATENESS);
            rt.create_stream("s", Arc::clone(&schema)).unwrap();
            rt.enable_dedup(4 * arrival.len().max(1));
            let cql = format!(
                "SELECT g, count() AS n, sum(x) AS s FROM s [RANGE {width} ms] GROUP BY g"
            );
            let pipeline = compile_query(&cql, &schema, AggMode::Incremental).unwrap();
            rt.register_query("q", "s", pipeline).unwrap();
            let mk = |i: usize, ts: i64, g: u8, x: i64| {
                Event::new(
                    EventId(i as u64),
                    "s",
                    TimestampMs(ts),
                    Record::from_iter([
                        Value::from(format!("g{g}").as_str()),
                        Value::Float(x as f64),
                    ]),
                    Arc::clone(&schema),
                )
            };
            let mut log = DeltaLog::default();
            let deliver = |slice: &[(usize, GenEvent)], log: &mut DeltaLog| {
                for (i, (ts, g, x, _)) in slice {
                    for out in rt.push_event(&mk(*i, *ts, *g, *x)).unwrap() {
                        log.observe(&out);
                    }
                }
            };
            deliver(&arrival[..prefix_len], &mut log);
            if replay {
                // Crash: the journal prefix is mined again on recovery.
                deliver(&arrival[..prefix_len], &mut log);
            }
            deliver(&arrival[prefix_len..], &mut log);
            for out in rt.flush("s", TimestampMs(i64::MAX / 8)).unwrap() {
                log.observe(&out);
            }
            (log.rows(), rt.dup_dropped())
        };

        let (clean, clean_dups) = run(false);
        let (replayed, dups) = run(true);
        prop_assert_eq!(clean_dups, 0);
        prop_assert_eq!(dups, prefix_len as u64, "every duplicate is accounted");
        prop_assert_eq!(replayed, clean);
    }

    /// Stream join under revision: retract + corrected insert deltas on
    /// one input converge to the join of the corrected inputs.
    #[test]
    fn join_revisions_converge_to_corrected_join(
        lefts in proptest::collection::vec((0i64..800, 0i64..4, 0i64..1_000, 0u8..4), 0..30),
        rights in proptest::collection::vec((0i64..800, 0i64..4, 0i64..1_000), 0..30),
        window in 1i64..400,
    ) {
        let lschema = Schema::of(&[("k", DataType::Int), ("lv", DataType::Int)]);
        let rschema = Schema::of(&[("k", DataType::Int), ("rv", DataType::Int)]);
        let mut op = StreamJoinOp::new("L", &lschema, &rschema, "k", "k", window).unwrap();
        let mut log = DeltaLog::default();
        let mut push = |e: &Event, log: &mut DeltaLog| {
            let mut out = Vec::new();
            op.on_event(e, &mut out).unwrap();
            for o in &out {
                log.observe(o);
            }
        };
        let lev = |id: u64, ts: i64, k: i64, v: i64| {
            Event::new(
                EventId(id),
                "L",
                TimestampMs(ts),
                Record::from_iter([Value::Int(k), Value::Int(v)]),
                Arc::clone(&lschema),
            )
        };
        // Interleave both sides by event time, inserts only.
        let mut seq: Vec<Event> = Vec::new();
        for (i, (ts, k, v, _)) in lefts.iter().enumerate() {
            seq.push(lev(i as u64, *ts, *k, *v));
        }
        for (i, (ts, k, v)) in rights.iter().enumerate() {
            seq.push(Event::new(
                EventId(1_000 + i as u64),
                "R",
                TimestampMs(*ts),
                Record::from_iter([Value::Int(*k), Value::Int(*v)]),
                Arc::clone(&rschema),
            ));
        }
        seq.sort_by_key(|e| (e.timestamp, e.id));
        for e in &seq {
            push(e, &mut log);
        }
        // Revise flagged left rows: retraction of the original insert
        // followed by the corrected value.
        for (i, (ts, k, v, revise)) in lefts.iter().enumerate() {
            if *revise == 0 {
                push(&lev(i as u64, *ts, *k, *v).to_retraction(), &mut log);
                push(&lev(2_000 + i as u64, *ts, *k, *v + 10_000), &mut log);
            }
        }

        // Oracle: nested-loop join of the corrected inputs.
        let mut expected: Vec<String> = Vec::new();
        for (lts, lk, lv, revise) in &lefts {
            let lv = if *revise == 0 { *lv + 10_000 } else { *lv };
            for (rts, rk, rv) in &rights {
                if lk == rk && (lts - rts).abs() <= window {
                    expected.push(
                        Record::from_iter([
                            Value::Int(*lk),
                            Value::Int(lv),
                            Value::Int(*rk),
                            Value::Int(*rv),
                        ])
                        .to_string(),
                    );
                }
            }
        }
        expected.sort();
        prop_assert_eq!(log.rows(), expected);
    }

    /// Pattern matching under reordering: the revisable matcher's
    /// compacted match set equals a fresh NFA fed the stream in order,
    /// at both consistency levels.
    #[test]
    fn patterns_converge_across_arrival_orders(
        events in proptest::collection::vec((0i64..500, 0u8..3, 0i64..LATENESS), 1..50),
        within in 50i64..600,
    ) {
        let schema = Schema::of(&[("kind", DataType::Str), ("v", DataType::Float)]);
        let pattern = || {
            Pattern::new(
                vec![
                    Step::new("a", parse("kind = 'A'").unwrap()),
                    Step::new("b", parse("kind = 'B'").unwrap()),
                ],
                within,
            )
            .unwrap()
        };
        let mk = |i: usize, ts: i64, kind: u8| {
            let k = ["A", "B", "C"][kind as usize];
            Event::new(
                EventId(i as u64),
                "s",
                TimestampMs(ts),
                Record::from_iter([Value::from(k), Value::Float(i as f64)]),
                Arc::clone(&schema),
            )
        };

        // Reference: plain NFA over the in-order stream.
        let mut reference = PatternMatcher::new(pattern(), &schema, SkipStrategy::SkipTillNext)
            .unwrap();
        let mut in_order: Vec<(usize, (i64, u8, i64))> =
            events.iter().copied().enumerate().collect();
        in_order.sort_by_key(|(i, (ts, _, _))| (*ts, *i));
        let mut expected: Vec<String> = Vec::new();
        for (i, (ts, kind, _)) in &in_order {
            for m in reference.push(&mk(*i, *ts, *kind)).unwrap() {
                expected.push(m.payload.to_string());
            }
        }
        expected.sort();

        // Disordered arrival through the revisable matcher.
        let mut arrival: Vec<(usize, (i64, u8, i64))> =
            events.iter().copied().enumerate().collect();
        arrival.sort_by_key(|(i, (ts, _, d))| (ts + d, *i));
        for level in [ConsistencyLevel::Speculative, ConsistencyLevel::Watermark] {
            let mut m = RevisablePatternMatcher::new(
                pattern(),
                &schema,
                SkipStrategy::SkipTillNext,
                level,
            )
            .unwrap();
            let mut log = DeltaLog::default();
            for (i, (ts, kind, _)) in &arrival {
                for out in m.push(&mk(*i, *ts, *kind)).unwrap() {
                    log.observe(&out);
                }
            }
            for out in m.advance_watermark(TimestampMs(i64::MAX / 8)).unwrap() {
                log.observe(&out);
            }
            if level == ConsistencyLevel::Watermark {
                prop_assert_eq!(log.retracted(), 0, "watermark level must be retraction-free");
            }
            prop_assert_eq!(log.rows(), expected.clone(), "level {:?}", level);
        }
    }

    /// The compaction algebra itself: DeltaLog nets signed multiplicities
    /// exactly like a reference multiset.
    #[test]
    fn delta_log_matches_multiset_semantics(
        ops in proptest::collection::vec((0u8..6, 0u8..2), 1..200),
    ) {
        let mut log = DeltaLog::default();
        let mut oracle: HashMap<String, i64> = HashMap::new();
        for (key, retract) in &ops {
            let retract = *retract == 1;
            let key = format!("k{key}");
            *oracle.entry(key.clone()).or_insert(0) += if retract { -1 } else { 1 };
            log.observe_keyed(key, retract);
        }
        let mut expected: Vec<String> = Vec::new();
        for (k, n) in &oracle {
            let (label, n) = if *n < 0 {
                (format!("-{k}"), -n)
            } else {
                (k.clone(), *n)
            };
            for _ in 0..n {
                expected.push(label.clone());
            }
        }
        expected.sort();
        prop_assert_eq!(log.rows(), expected);
        prop_assert_eq!(
            log.inserted() as i64 - log.retracted() as i64,
            oracle.values().sum::<i64>()
        );
    }
}
