//! ChemSecure use case (§2.2.e.iii): hazardous-material monitoring where
//! "any threat has to be known to the people who are authorized and able
//! to respond most efficiently".
//!
//! Responders subscribe to the hazmat topic with predicates encoding
//! their site, chemical qualification and availability; incidents route
//! only to matching responders; access control guards who may publish
//! and every check lands in the durable audit trail.
//!
//! ```text
//! cargo run --example chemsecure
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use evdb::core::server::ServerConfig;
use evdb::core::{EventServer, Principal, Privilege};
use evdb::expr::parse;

use evdb_bench::workloads::{hazmat_events, hazmat_schema};
use std::sync::Mutex;

fn main() -> evdb::types::Result<()> {
    let server = EventServer::in_memory(ServerConfig::default())?;
    let broker = server.broker();
    broker.create_topic("hazmat", hazmat_schema())?;

    // Responder roster: (name, site, qualified chemical, on duty).
    let roster = [
        ("casey", "site0", "CL2", true),
        ("jordan", "site0", "NH3", true),
        ("riley", "site1", "CL2", true),
        ("avery", "site1", "H2S", false), // off duty — must receive nothing
        ("sam", "site2", "NH3", true),
        ("quinn", "site2", "H2S", true),
    ];
    for (name, site, chem, on_duty) in roster {
        if !on_duty {
            continue; // unavailable responders never subscribe
        }
        broker.subscribe(
            "hazmat",
            name,
            parse(&format!(
                "site = '{site}' AND chem = '{chem}' AND level > 80"
            ))
            .unwrap(),
        )?;
    }

    // Publishers must be authorized: the sensor gateway is, a rogue
    // station is not — and both checks are audited.
    server.access().grant("gateway", "topic:hazmat", Privilege::Write);
    let gateway = Principal::named("gateway").with_attr("kind", "sensor-gateway");
    let rogue = Principal::named("rogue-station");

    let denied = server
        .access()
        .check(&rogue, "topic:hazmat", Privilege::Write);
    println!("rogue publish authorized? {}", denied.is_ok());
    assert!(denied.is_err());

    // Stream a day of sensor readings (3% incidents, labelled).
    let events = hazmat_events(5_000, 0.03, 1234);
    let deliveries: Arc<Mutex<HashMap<String, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut incidents = 0u64;
    let mut routed = 0u64;
    let mut unroutable = Vec::new();

    for (rec, incident) in &events {
        server
            .access()
            .check(&gateway, "topic:hazmat", Privilege::Write)?;
        let publication = broker.publish("hazmat", rec)?;
        if *incident {
            incidents += 1;
            if publication.matched_subscribers.is_empty() {
                // No authorized on-duty responder for this site+chem.
                unroutable.push(rec.clone());
            }
            for r in &publication.matched_subscribers {
                *deliveries.lock().unwrap().entry(r.clone()).or_insert(0) += 1;
                routed += 1;
            }
        } else {
            assert!(
                publication.matched_subscribers.is_empty(),
                "non-incident must not page anyone: {rec}"
            );
        }
    }

    println!("readings   : {}", events.len());
    println!("incidents  : {incidents}");
    println!("routed     : {routed}");
    println!("unroutable : {} (site1/H2S with avery off duty, site gaps)", unroutable.len());
    let d = deliveries.lock().unwrap();
    let mut names: Vec<&String> = d.keys().collect();
    names.sort();
    for name in names {
        println!("  {name:<8} received {}", d[name]);
    }
    println!(
        "audit trail: {} checked publishes recorded",
        server.access().audit_len()
    );
    assert!(d.values().all(|&n| n > 0));
    assert!(!d.contains_key("avery"), "off-duty responder was paged");
    assert_eq!(server.access().audit_len(), events.len() + 1);
    Ok(())
}
