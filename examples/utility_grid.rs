//! Utilities use case (§2.2.e.ii): monitor per-meter usage against a
//! learned model of expected behaviour — management by exception.
//!
//! Each meter gets its own seasonal expectation model (daily cycle);
//! deviations become notifications; and because the generator plants
//! anomalies with ground truth, the example reports the detector's
//! false-positive / false-negative counts — the paper's keyword metrics.
//!
//! ```text
//! cargo run --example utility_grid
//! ```

use std::sync::Arc;

use evdb::analytics::detector::UpdatePolicy;
use evdb::analytics::{ConfusionMatrix, SeasonalNaiveModel};
use evdb::core::server::ServerConfig;
use evdb::core::EventServer;
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};
use evdb_bench::workloads::meter_trace;

fn main() -> evdb::types::Result<()> {
    let clock = SimClock::new(TimestampMs(0));
    let server = EventServer::in_memory(ServerConfig {
        clock: clock.clone(),
        ..Default::default()
    })?;

    server.create_stream(
        "meters",
        Schema::of(&[("meter", DataType::Str), ("kw", DataType::Float)]),
    )?;

    // One seasonal model per meter (96 readings per simulated day).
    server.add_detector(
        "load-expectation",
        "meters",
        "kw",
        Some("meter"),
        UpdatePolicy::Always,
        || Box::new(SeasonalNaiveModel::new(96, 3.0, 5.0)),
    )?;

    let alerts = Arc::new(parking_lot_free_counter::Counter::default());
    let a2 = Arc::clone(&alerts);
    server.on_notification(Arc::new(move |n| {
        a2.incr();
        if a2.get() <= 5 {
            println!("  [exception] {}", n.body);
        }
    }));

    // Ten simulated days for four meters, 1% planted anomalies.
    let days = 10;
    let per_meter = 96 * days;
    let meters = 4;
    let mut cm = ConfusionMatrix::default();
    let mut traces: Vec<Vec<(TimestampMs, f64, bool)>> = (0..meters)
        .map(|m| meter_trace(per_meter, 96, 0.01, 7_000 + m as u64))
        .collect();

    // Interleave meters like a real collector would.
    for i in 0..per_meter {
        for (m, trace) in traces.iter_mut().enumerate() {
            let (ts, v, truth) = trace[i];
            clock.set(ts);
            let before = server.metrics().snapshot().deviations;
            server.ingest(
                "meters",
                ts,
                Record::from_iter([Value::from(format!("meter{m}")), Value::Float(v)]),
            )?;
            let flagged = server.metrics().snapshot().deviations > before;
            // Skip the first two days while models warm up.
            if i >= 96 * 2 {
                cm.record(flagged, truth);
            }
        }
    }

    println!("readings        : {}", per_meter * meters);
    println!("exceptions      : {}", alerts.get());
    println!(
        "confusion       : tp={} fp={} fn={} tn={}",
        cm.tp, cm.fp, cm.fn_, cm.tn
    );
    println!(
        "precision/recall: {:.3} / {:.3}",
        cm.precision().unwrap_or(0.0),
        cm.recall().unwrap_or(0.0)
    );
    assert!(cm.recall().unwrap_or(0.0) > 0.5, "detector misses too much");
    assert!(
        cm.false_positive_rate().unwrap_or(1.0) < 0.05,
        "detector cries wolf"
    );
    Ok(())
}

/// Tiny atomic counter so the example needs no extra dependencies.
mod parking_lot_free_counter {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    pub struct Counter(AtomicU64);

    impl Counter {
        pub fn incr(&self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
        pub fn get(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
    }
}
