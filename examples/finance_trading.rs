//! Financial services use case (§2.2.e.i): react to opportunities and
//! threats in a market feed.
//!
//! * a windowed VWAP continuous query per symbol,
//! * alert rules for price spikes,
//! * a CEP pattern — three consecutive up-ticks on the same symbol
//!   followed by a volume burst — detected with the NFA matcher,
//! * VIRT filtering so a noisy symbol cannot flood the trader.
//!
//! ```text
//! cargo run --example finance_trading
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evdb::core::notify::VirtPolicy;
use evdb::core::server::ServerConfig;
use evdb::core::EventServer;
use evdb::cq::pattern::{Pattern, PatternMatcher, SkipStrategy, Step};
use evdb::expr::parse;
use evdb::types::{SimClock, TimestampMs};
use evdb_bench::workloads::{market_ticks, tick_schema};

fn main() -> evdb::types::Result<()> {
    let clock = SimClock::new(TimestampMs(0));
    let server = EventServer::in_memory(ServerConfig {
        clock: clock.clone(),
        virt: VirtPolicy {
            suppression_window_ms: 5_000, // one alert per symbol per 5s
            ..Default::default()
        },
        ..Default::default()
    })?;

    server.create_stream("ticks", tick_schema())?;

    // Continuous analytics: per-symbol VWAP over 1-second windows.
    server.register_cql(
        "vwap",
        "SELECT sym, avg(px) AS vwap, sum(qty) AS volume \
         FROM ticks [RANGE 1 s] GROUP BY sym HAVING count() > 2",
    )?;
    let windows = Arc::new(AtomicU64::new(0));
    let w2 = Arc::clone(&windows);
    server.on_query("vwap", Arc::new(move |_| {
        w2.fetch_add(1, Ordering::Relaxed);
    }))?;

    // Threat: price spike.
    server.add_alert_rule("spike", "ticks", "px > 130", 3.0, Some("sym"))?;

    // Opportunity: momentum pattern — burst of large lots after quiet.
    let momentum = Pattern::new(
        vec![
            Step::new("q", parse("qty < 100").unwrap()),
            Step::new("burst", parse("qty > 900").unwrap()).one_or_more(),
        ],
        2_000,
    )?;
    let mut pattern = PatternMatcher::new(momentum, &tick_schema(), SkipStrategy::SkipTillNext)?;

    let alerts = Arc::new(AtomicU64::new(0));
    let a2 = Arc::clone(&alerts);
    server.on_notification(Arc::new(move |n| {
        a2.fetch_add(1, Ordering::Relaxed);
        println!("  [alert] {}", n.title);
    }));

    // Drive a deterministic market day.
    let ticks = market_ticks(20_000, 8, 5, 2024);
    let mut momentum_hits = 0u64;
    for t in &ticks {
        clock.set(t.ts);
        server.ingest("ticks", t.ts, t.record())?;
        // The pattern matcher runs as a bare operator here to show the
        // lower-level API (the server's CQL covers windows, not SEQ).
        let ev = evdb::types::Event::new(
            evdb::types::EventId(t.ts.0 as u64),
            "ticks",
            t.ts,
            t.record(),
            tick_schema(),
        );
        momentum_hits += pattern.push(&ev)?.len() as u64;
    }
    server.flush_stream("ticks", TimestampMs(i64::MAX / 2))?;

    let snap = server.metrics().snapshot();
    println!("ticks processed : {}", snap.events_processed);
    println!("vwap windows    : {}", windows.load(Ordering::Relaxed));
    println!("spike alerts    : {}", alerts.load(Ordering::Relaxed));
    println!("momentum matches: {momentum_hits}");
    println!(
        "suppressed (VIRT): {} — a trader sees signal, not noise",
        snap.suppressed
    );
    assert!(windows.load(Ordering::Relaxed) > 0);
    assert!(momentum_hits > 0);
    Ok(())
}
