//! SensorNet use case (§2.2.e.iv): capture detections in the field and
//! deliver them to first responders over an unreliable network —
//! at-least-once, idempotent, audited.
//!
//! Topology: `field` node (sensor ingest) → lossy 50ms link →
//! `command` node (responder delivery via an external paging service
//! that itself fails 20% of calls).
//!
//! ```text
//! cargo run --example sensornet
//! ```

use std::sync::Arc;

use evdb::dist::{
    forwarder, ExternalService, FlakyService, LinkConfig, Node, QueueForwarder, ServiceDelivery,
    SimNetwork,
};
use evdb::queue::QueueConfig;
use evdb::types::{Clock, DataType, Record, Schema, SimClock, TimestampMs, Value};

fn main() -> evdb::types::Result<()> {
    let clock = SimClock::new(TimestampMs(0));
    let field = Node::new("field", clock.clone())?;
    let command = Node::new("command", clock.clone())?;

    let schema = Schema::of(&[
        ("sensor", DataType::Str),
        ("kind", DataType::Str),
        ("level", DataType::Float),
    ]);
    for node in [&field, &command] {
        node.queues().create_queue(
            "detections",
            Arc::clone(&schema),
            QueueConfig::default()
                .visibility_timeout(400)
                .max_attempts(50),
        )?;
    }

    // The command node pages responders through a flaky external service.
    let pager = FlakyService::new(0.2, 77);
    let mut delivery = ServiceDelivery::new(command.queues(), "detections", &pager)?;

    // A 20% lossy, jittery field link.
    let mut net = SimNetwork::new(
        LinkConfig {
            latency_ms: 50,
            jitter_ms: 25,
            loss: 0.2,
            ..Default::default()
        },
        42,
    );
    let mut fwd = QueueForwarder::new(&field, "detections", "command", "detections")?;

    // Field sensors report 1,000 detections.
    let n = 1_000;
    for i in 0..n {
        field.queues().enqueue(
            "detections",
            Record::from_iter([
                Value::from(format!("sensor{:02}", i % 40)),
                Value::from(if i % 97 == 0 { "chemical" } else { "motion" }),
                Value::Float((i % 100) as f64),
            ]),
            "field-ingest",
        )?;
    }

    // Drive the fabric until every detection is paged out.
    let mut steps = 0u64;
    while pager.delivered_ids().len() < n {
        steps += 1;
        assert!(steps < 100_000, "fabric failed to converge");
        let now = clock.now();
        fwd.pump(&field, &mut net, now)?;
        for pkt in net.poll(now) {
            if QueueForwarder::is_data(&pkt) {
                let ack = QueueForwarder::receive(&command, &pkt)?;
                net.send(ack, now);
            } else if fwd.owns_ack(&pkt) {
                fwd.on_ack(&field, &pkt)?;
            }
        }
        delivery.pump()?;
        clock.advance(25);
    }

    let (calls, failures) = pager.stats();
    println!("detections sent      : {n}");
    println!("paged to responders  : {}", pager.delivered_ids().len());
    println!("network packets      : sent={} dropped={}", net.sent, net.dropped);
    println!("data resends         : {}", fwd.sends - n as u64);
    println!("pager calls/failures : {calls}/{failures}");
    println!("receiver audit rows  : {}", forwarder::audit_count(&command));
    println!("simulated time       : {}ms over {steps} steps", clock.now().0);

    // The guarantees the tutorial asks of the distribution layer:
    assert_eq!(pager.delivered_ids().len(), n, "nothing lost");
    let mut ids = pager.delivered_ids();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "nothing paged twice");
    assert!(net.dropped > 0, "the link really was lossy");
    assert_eq!(pager.name(), "flaky");
    Ok(())
}
