//! Regenerates the golden corruption fixtures under `tests/fixtures/`.
//!
//! The fixtures are hex-encoded WAL files: one clean baseline and three
//! corruptions of it (torn tail, CRC-corrupt tail frame, zero-filled
//! page appended). `tests/golden_corruption.rs` decodes them and pins
//! down exactly where recovery stops and what it reports.
//!
//! Run with `cargo run --example gen_fault_fixtures` after any change to
//! the WAL framing or record encoding, and commit the updated fixtures.

use evdb::storage::{Database, DbOptions, SyncPolicy};
use evdb::types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2 + bytes.len() / 16);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            s.push('\n');
        }
        s.push_str(&format!("{b:02x}"));
    }
    s.push('\n');
    s
}

fn main() {
    // A deterministic little database: fixed clock, fixed workload, so
    // the generated log is byte-identical on every run.
    let dir = std::env::temp_dir().join(format!("evdb-gen-fixtures-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    {
        let db = Database::open(
            &dir,
            DbOptions {
                sync: SyncPolicy::Never,
                clock: SimClock::new(TimestampMs(1_000)),
                ..Default::default()
            },
        )
        .unwrap();
        db.create_table(
            "t",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
            "k",
        )
        .unwrap();
        for i in 0..8 {
            db.insert("t", Record::from_iter([Value::Int(i), Value::Int(i * 10)]))
                .unwrap();
        }
    }
    let base = std::fs::read(dir.join("evdb.wal")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // Torn tail: the final frame loses its last 5 bytes (crash mid-write).
    let torn = base[..base.len() - 5].to_vec();

    // Bad CRC: one bit flipped in the final frame's payload (bit rot).
    let mut bad_crc = base.clone();
    let last = bad_crc.len() - 1;
    bad_crc[last] ^= 0x01;

    // Zero page: a page of never-written zeroes after the valid log (a
    // preallocated-but-unwritten region surfacing after a power cut).
    let mut zero_page = base.clone();
    zero_page.extend(std::iter::repeat_n(0u8, 4096));

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&out).unwrap();
    for (name, bytes) in [
        ("clean.wal.hex", &base),
        ("truncated_tail.wal.hex", &torn),
        ("bad_crc.wal.hex", &bad_crc),
        ("zero_page.wal.hex", &zero_page),
    ] {
        std::fs::write(out.join(name), hex(bytes)).unwrap();
        println!("wrote tests/fixtures/{name} ({} bytes raw)", bytes.len());
    }
}
