//! Supply chain & logistics (one of §2.1's motivating domains): depot
//! scan events flow over a lossy fabric to headquarters, where a
//! continuous query computes per-route delay statistics, a CASE
//! expression classifies severity, and a Top-K operator keeps the
//! worst-routes digest — VIRT at the query layer.
//!
//! ```text
//! cargo run --example logistics
//! ```

use std::sync::Arc;

use evdb::cq::extra::TopKOp;
use evdb::cq::op::{Operator, Pipeline, ProjectOp};
use evdb::cq::StreamRuntime;
use evdb::dist::{Fabric, LinkConfig};
use evdb::expr::parse;
use evdb::queue::QueueConfig;
use evdb::types::{Clock, DataType, Record, Schema, SimClock, TimestampMs, Value};

fn main() -> evdb::types::Result<()> {
    let clock = SimClock::new(TimestampMs(0));

    // ---- fabric: three depots feeding HQ over flaky links -------------
    let mut fabric = Fabric::new(
        clock.clone(),
        LinkConfig {
            latency_ms: 30,
            jitter_ms: 20,
            loss: 0.15,
            ..Default::default()
        },
        2026,
    );
    let scan_schema = Schema::of(&[
        ("route", DataType::Str),
        ("shipment", DataType::Int),
        ("delay_h", DataType::Float),
    ]);
    for name in ["depot_a", "depot_b", "depot_c", "hq"] {
        let node = fabric.add_node(name)?;
        node.queues().create_queue(
            "scans",
            Arc::clone(&scan_schema),
            QueueConfig::default()
                .visibility_timeout(400)
                .max_attempts(100),
        )?;
    }
    fabric.node("hq")?.queues().subscribe("scans", "analytics")?;
    for depot in ["depot_a", "depot_b", "depot_c"] {
        fabric.connect(depot, "scans", "hq", "scans")?;
    }

    // ---- depots scan shipments -----------------------------------------
    let mut seed = 20_260_706u64;
    let mut rand = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 33) as f64 / (1u64 << 31) as f64
    };
    let routes = ["R1", "R2", "R3", "R4", "R5"];
    let n_per_depot = 400;
    for (d, depot) in ["depot_a", "depot_b", "depot_c"].iter().enumerate() {
        for i in 0..n_per_depot {
            let r = &routes[(i + d) % routes.len()];
            // R3 is systematically congested.
            let delay = if *r == "R3" {
                6.0 + rand() * 6.0
            } else {
                rand() * 4.0
            };
            fabric.node(depot)?.queues().enqueue(
                "scans",
                Record::from_iter([
                    Value::from(*r),
                    Value::Int((d * n_per_depot + i) as i64),
                    Value::Float((delay * 10.0_f64).round() / 10.0),
                ]),
                depot,
            )?;
        }
    }

    // Drive the fabric until every scan reaches HQ.
    let c2 = clock.clone();
    let idle = fabric.run_until_idle(50_000, move || {
        c2.advance(40);
    })?;
    assert!(idle, "fabric failed to drain");
    let (sent, dropped, _) = fabric.network_stats();
    println!("fabric: packets sent={sent} dropped={dropped} (lossy links, nothing lost)");

    // ---- HQ analytics over the consolidated stream ---------------------
    let rt = StreamRuntime::new(0);
    rt.create_stream("scans", Arc::clone(&scan_schema))?;

    // CQL: per-route mean delay per 100-scan window, with a CASE
    // severity label computed in the projection.
    rt.register_query(
        "route-health",
        "scans",
        evdb::cq::compile_query(
            "SELECT route, avg(delay_h) AS mean_delay, \
                    CASE WHEN avg(delay_h) > 6 THEN 'critical' \
                         WHEN avg(delay_h) > 3 THEN 'degraded' \
                         ELSE 'ok' END AS severity \
             FROM scans [ROWS 100] GROUP BY route",
            &scan_schema,
            evdb::cq::aggregate::AggMode::Incremental,
        )?,
    )?;

    // Top-3 slowest shipments digest over a trailing 10-minute window,
    // projected to a compact record.
    let topk = TopKOp::new(&scan_schema, "delay_h", 3, 600_000)?;
    let topk_schema = topk.output_schema();
    let digest = ProjectOp::new(
        vec![
            parse("rank").unwrap().bind(&topk_schema)?,
            parse("route").unwrap().bind(&topk_schema)?,
            parse("delay_h").unwrap().bind(&topk_schema)?,
        ],
        Schema::of(&[
            ("rank", DataType::Int),
            ("route", DataType::Str),
            ("delay_h", DataType::Float),
        ]),
    );
    rt.register_query(
        "worst-shipments",
        "scans",
        Pipeline::new(vec![Box::new(topk), Box::new(digest)]),
    )?;

    // Feed HQ's queue into the runtime.
    let hq = fabric.node("hq")?;
    let mut health_reports = Vec::new();
    loop {
        let ds = hq.queues().dequeue("scans", "analytics", 64)?;
        if ds.is_empty() {
            break;
        }
        for d in ds {
            let out = rt.push("scans", d.message.enqueued_at, d.message.payload.clone())?;
            health_reports.extend(out);
            hq.queues().ack(&d)?;
        }
    }
    // Flush the Top-K digest at end of day.
    let digest_rows = rt.flush("scans", clock.now())?;

    // `health_reports` interleaves both queries' outputs (the Top-K
    // digest re-emits on every watermark); split them by schema.
    let health_rows: Vec<_> = health_reports
        .iter()
        .filter(|e| e.schema.index_of("severity").is_some())
        .collect();
    println!("\nroute health (last windows):");
    for ev in health_rows.iter().rev().take(5).rev() {
        println!("  {}", ev.payload);
    }
    println!("\nworst shipments (top 3 by delay):");
    for ev in &digest_rows {
        println!("  {}", ev.payload);
    }

    // The congested route must be flagged and dominate the digest.
    let r3_critical = health_rows.iter().any(|e| {
        e.get("route") == Some(&Value::from("R3"))
            && e.get("severity") == Some(&Value::from("critical"))
    });
    assert!(r3_critical, "R3 congestion must be classified critical");
    assert!(digest_rows
        .iter()
        .all(|e| e.get("route") == Some(&Value::from("R3"))));
    assert_eq!(
        rt.stats().0,
        (3 * n_per_depot) as u64,
        "every scan from every depot reached analytics exactly once"
    );
    println!("\nall {} scans consolidated; R3 flagged critical ✓", 3 * n_per_depot);
    Ok(())
}
