//! Quickstart: the smallest end-to-end EventDB application.
//!
//! An `orders` table is captured through a trigger; an alert rule turns
//! large inserted orders into notifications; a continuous query keeps a
//! running per-window order count.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use evdb::core::server::ServerConfig;
use evdb::core::{CaptureMechanism, EventServer};
use evdb::types::{DataType, Record, Schema, Value};

fn main() -> evdb::types::Result<()> {
    // 1. A server with default configuration (in-memory journal).
    let server = EventServer::in_memory(ServerConfig::default())?;

    // 2. An ordinary database table.
    server.db().create_table(
        "orders",
        Schema::of(&[
            ("oid", DataType::Int),
            ("sym", DataType::Str),
            ("amount", DataType::Float),
        ]),
        "oid",
    )?;

    // 3. Capture its changes into the stream "orders_changes" using a
    //    row trigger (the synchronous capture mechanism).
    let stream = server.capture_table("orders", CaptureMechanism::Trigger)?;

    // 4. An alert rule over the change stream — the predicate is plain
    //    text ("expressions as data").
    server.add_alert_rule(
        "large-order",
        &stream,
        "change = 'insert' AND amount > 10000",
        2.0,
        Some("sym"),
    )?;

    // 5. A continuous query counting orders per 2-event window.
    server.register_cql(
        "order-volume",
        &format!("SELECT count() AS n, sum(amount) AS total FROM {stream} [ROWS 2]"),
    )?;
    server.on_query(
        "order-volume",
        Arc::new(|ev| println!("  [query] order-volume → {}", ev.payload)),
    )?;

    // 6. Notification delivery (post-VIRT-filter).
    server.on_notification(Arc::new(|n| {
        println!("  [alert] {} (severity {:.1}): {}", n.title, n.severity, n.body);
    }));

    // 7. Normal database work — the application just writes rows.
    println!("inserting orders…");
    let orders = [
        (1, "IBM", 500.0),
        (2, "MSFT", 25_000.0),
        (3, "IBM", 99.0),
        (4, "AAPL", 1_000_000.0),
    ];
    for (oid, sym, amount) in orders {
        server.db().insert(
            "orders",
            Record::from_iter([Value::Int(oid), Value::from(sym), Value::Float(amount)]),
        )?;
    }

    // 8. Pump the evaluation pipeline.
    let stats = server.pump()?;
    println!(
        "pumped: captured={} derived={} notified={}",
        stats.captured, stats.derived, stats.notified
    );

    let snap = server.metrics().snapshot();
    println!(
        "metrics: processed={} notifications={} suppressed={}",
        snap.events_processed, snap.notifications, snap.suppressed
    );
    assert_eq!(stats.captured, 4);
    assert_eq!(stats.notified, 2);

    // 9. The unified observability layer: every stage of the pipeline
    //    (capture → route → evaluate → deliver) exports a counter and a
    //    latency histogram into one registry, rendered Prometheus-style.
    println!("\nstage metrics (text exposition excerpt):");
    for line in server.registry().render().lines() {
        if line.starts_with("evdb_stage_") && !line.contains('{') {
            println!("  {line}");
        }
    }
    Ok(())
}
