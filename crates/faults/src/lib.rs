//! Seeded, deterministic fault injection for EventDB's durable paths.
//!
//! The paper's operational claims rest on "recoverability and transactional
//! support of message storage and consumption" (§2.2.b.ii.3). Clean-shutdown
//! replay tests (E10) cannot validate that claim against *mid-write* crashes:
//! torn WAL frames, partial checkpoint writes, bit rot, or a power cut
//! between an ack's state update and its reclaim. This crate provides the
//! substrate the torture harness (`tests/torture_recovery.rs`, experiment
//! E12) uses to sample exactly those schedules, deterministically.
//!
//! Design (FoundationDB-style deterministic simulation, scaled down):
//!
//! * A [`FaultInjector`] is shared (`Arc`) between the test driver and the
//!   engine. The storage layer consults it at every **fault site**: named
//!   crash points (`point`) and durable writes (`on_write`).
//! * The driver **arms** the injector: "after N more site hits, fire fault
//!   F". Everything downstream of the seed is deterministic — same seed,
//!   same workload, same crash, same recovery.
//! * Firing at a write site yields a [`WriteDecision`] that tears, shortens
//!   or bit-flips the buffer before the simulated power cut; firing at a
//!   plain crash point is a pure power cut.
//! * After firing, the injector is *crashed*: every subsequent site returns
//!   the crash error, so the workload halts the way a dead process would.
//!   Recovery then reopens the store **without** the injector (or after
//!   [`FaultInjector::heal`]) and the harness checks the durability
//!   invariants (DESIGN.md D8).
//!
//! The injector is deliberately dependency-free (types + locks only) so any
//! crate in the workspace can thread it through without cycles.

#![warn(missing_docs)]

mod injector;
mod rng;

pub use injector::{FaultInjector, IoFault, WriteDecision, CRASH_PREFIX};
pub use rng::FaultRng;
