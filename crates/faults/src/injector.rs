//! The fault injector: armed crash schedules over named fault sites.

use std::collections::BTreeMap;
use std::sync::Arc;

use evdb_types::{Error, Result};
use parking_lot::Mutex;

use crate::rng::FaultRng;

/// Message prefix of every simulated-crash error, so harnesses can tell an
/// injected power cut apart from a real I/O failure.
pub const CRASH_PREFIX: &str = "simulated power cut";

/// What happens to a durable write when the armed fault fires on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Nothing reaches the medium; the process dies before the write.
    PowerCut,
    /// A random strict prefix of the buffer lands, then the process dies
    /// (classic torn frame).
    TornWrite,
    /// Exactly half the buffer lands, then the process dies (a short write
    /// the caller never got to retry).
    ShortWrite,
    /// The full buffer lands with one bit flipped (media corruption during
    /// the power event), then the process dies.
    BitFlip,
    /// The full buffer lands but the process dies before acknowledging —
    /// the "commit ack lost" case: recovery may legitimately surface it.
    CutAfterWrite,
}

impl IoFault {
    /// All variants, for schedule sampling.
    pub const ALL: [IoFault; 5] = [
        IoFault::PowerCut,
        IoFault::TornWrite,
        IoFault::ShortWrite,
        IoFault::BitFlip,
        IoFault::CutAfterWrite,
    ];
}

/// Instruction to the caller of [`FaultInjector::on_write`]: how many bytes
/// to persist, whether to corrupt one bit first, and whether to return the
/// simulated crash error after persisting.
#[derive(Debug, Clone, Copy)]
pub struct WriteDecision {
    /// Number of leading bytes of the buffer to actually persist.
    pub keep: usize,
    /// Flip bit `1 << .1` of byte `.0` (within the kept prefix) first.
    pub flip: Option<(usize, u8)>,
    /// After persisting `keep` bytes, fail with [`FaultInjector::crash_error`].
    pub crash_after: bool,
}

impl WriteDecision {
    /// The no-fault decision: persist everything, carry on.
    pub fn clean(len: usize) -> WriteDecision {
        WriteDecision {
            keep: len,
            flip: None,
            crash_after: false,
        }
    }
}

struct Inner {
    rng: FaultRng,
    /// Sites remaining before the armed fault fires (`Some(0)` = fire at
    /// the next site). `None` = disarmed.
    countdown: Option<u64>,
    fault: IoFault,
    /// Site where the simulated crash happened, once it has.
    crashed: Option<String>,
    hits: u64,
    points: BTreeMap<String, u64>,
}

/// A seeded, shareable fault injector. See the crate docs for the model.
///
/// All methods take `&self`; state lives behind a mutex so one injector can
/// be threaded through the WAL, the checkpointer and the queue manager at
/// once.
pub struct FaultInjector {
    inner: Mutex<Inner>,
}

impl FaultInjector {
    /// Create a disarmed injector with a deterministic schedule seed.
    pub fn new(seed: u64) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            inner: Mutex::new(Inner {
                rng: FaultRng::new(seed),
                countdown: None,
                fault: IoFault::PowerCut,
                crashed: None,
                hits: 0,
                points: BTreeMap::new(),
            }),
        })
    }

    /// Arm: after `after_hits` further site hits, fire `fault` at the next
    /// site. `after_hits == 0` fires at the very next site.
    pub fn arm(&self, after_hits: u64, fault: IoFault) {
        let mut inner = self.inner.lock();
        inner.countdown = Some(after_hits);
        inner.fault = fault;
    }

    /// Arm a randomly sampled schedule: countdown uniform in
    /// `0..max_countdown` and a uniformly chosen [`IoFault`]. Returns the
    /// chosen pair so harnesses can log reproducible schedules.
    pub fn arm_sampled(&self, max_countdown: u64) -> (u64, IoFault) {
        let mut inner = self.inner.lock();
        let after = inner.rng.below(max_countdown.max(1));
        let fault = IoFault::ALL[inner.rng.below(IoFault::ALL.len() as u64) as usize];
        inner.countdown = Some(after);
        inner.fault = fault;
        (after, fault)
    }

    /// Remove any armed (but not yet fired) fault.
    pub fn disarm(&self) {
        self.inner.lock().countdown = None;
    }

    /// Clear the crashed state (and any armed fault), as if the process had
    /// been restarted with the same injector handle.
    pub fn heal(&self) {
        let mut inner = self.inner.lock();
        inner.countdown = None;
        inner.crashed = None;
    }

    /// Site where the simulated crash fired, if it has.
    pub fn crash_site(&self) -> Option<String> {
        self.inner.lock().crashed.clone()
    }

    /// Whether the simulated crash has fired.
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().crashed.is_some()
    }

    /// Total fault-site hits observed (points + writes).
    pub fn hits(&self) -> u64 {
        self.inner.lock().hits
    }

    /// How many times the named site was hit.
    pub fn point_count(&self, site: &str) -> u64 {
        self.inner.lock().points.get(site).copied().unwrap_or(0)
    }

    /// All sites seen so far with their hit counts (deterministic order).
    pub fn site_counts(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .points
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// A named pure crash point (no payload). Fails with the crash error if
    /// the armed fault fires here or if the injector already crashed.
    pub fn point(&self, site: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.note(site);
        if inner.crashed.is_some() {
            return Err(Self::crash_error(site));
        }
        if inner.strike() {
            inner.crashed = Some(site.to_string());
            return Err(Self::crash_error(site));
        }
        Ok(())
    }

    /// Consult the injector before persisting a `len`-byte buffer at `site`.
    /// On a clean pass the decision persists everything; when the armed
    /// fault fires the decision encodes the torn/short/flipped prefix and
    /// `crash_after` — the caller must persist exactly `keep` bytes (with
    /// the flip applied) and then return [`FaultInjector::crash_error`].
    pub fn on_write(&self, site: &str, len: usize) -> Result<WriteDecision> {
        let mut inner = self.inner.lock();
        inner.note(site);
        if inner.crashed.is_some() {
            return Err(Self::crash_error(site));
        }
        if !inner.strike() {
            return Ok(WriteDecision::clean(len));
        }
        inner.crashed = Some(site.to_string());
        let decision = match inner.fault {
            IoFault::PowerCut => WriteDecision {
                keep: 0,
                flip: None,
                crash_after: true,
            },
            IoFault::TornWrite => WriteDecision {
                // A strict prefix: at least 0, at most len-1 bytes land.
                keep: inner.rng.below(len.max(1) as u64) as usize,
                flip: None,
                crash_after: true,
            },
            IoFault::ShortWrite => WriteDecision {
                keep: len / 2,
                flip: None,
                crash_after: true,
            },
            IoFault::BitFlip => {
                let flip = if len == 0 {
                    None
                } else {
                    let off = inner.rng.below(len as u64) as usize;
                    let bit = inner.rng.below(8) as u8;
                    Some((off, bit))
                };
                WriteDecision {
                    keep: len,
                    flip,
                    crash_after: true,
                }
            }
            IoFault::CutAfterWrite => WriteDecision {
                keep: len,
                flip: None,
                crash_after: true,
            },
        };
        Ok(decision)
    }

    /// The error every fired or post-crash site returns.
    pub fn crash_error(site: &str) -> Error {
        Error::Io(std::io::Error::other(format!("{CRASH_PREFIX} at {site}")))
    }

    /// Whether `err` is a simulated crash from an injector (vs. a real
    /// engine error the harness should treat as a bug).
    pub fn is_crash(err: &Error) -> bool {
        matches!(err, Error::Io(e) if e.to_string().starts_with(CRASH_PREFIX))
    }
}

impl Inner {
    fn note(&mut self, site: &str) {
        self.hits += 1;
        *self.points.entry(site.to_string()).or_insert(0) += 1;
    }

    /// Decrement the countdown; true when the armed fault fires now.
    fn strike(&mut self) -> bool {
        match self.countdown {
            Some(0) => {
                self.countdown = None;
                true
            }
            Some(n) => {
                self.countdown = Some(n - 1);
                false
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FaultInjector")
            .field("armed", &inner.countdown)
            .field("fault", &inner.fault)
            .field("crashed", &inner.crashed)
            .field("hits", &inner.hits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_injector_is_transparent() {
        let inj = FaultInjector::new(1);
        for _ in 0..10 {
            inj.point("a").unwrap();
            let d = inj.on_write("b", 100).unwrap();
            assert_eq!(d.keep, 100);
            assert!(d.flip.is_none());
            assert!(!d.crash_after);
        }
        assert_eq!(inj.hits(), 20);
        assert_eq!(inj.point_count("a"), 10);
        assert!(!inj.is_crashed());
    }

    #[test]
    fn countdown_fires_at_exact_site() {
        let inj = FaultInjector::new(2);
        inj.arm(2, IoFault::PowerCut);
        inj.point("s1").unwrap();
        inj.point("s2").unwrap();
        let err = inj.point("s3").unwrap_err();
        assert!(FaultInjector::is_crash(&err), "{err}");
        assert_eq!(inj.crash_site().as_deref(), Some("s3"));
        // Everything after the crash also fails.
        assert!(inj.point("s4").is_err());
        assert!(inj.on_write("w", 10).is_err());
    }

    #[test]
    fn write_faults_shape_the_buffer() {
        for (fault, check) in [
            (IoFault::PowerCut, (0usize, 0usize)),
            (IoFault::TornWrite, (0, 99)),
            (IoFault::ShortWrite, (50, 50)),
            (IoFault::BitFlip, (100, 100)),
            (IoFault::CutAfterWrite, (100, 100)),
        ] {
            let inj = FaultInjector::new(3);
            inj.arm(0, fault);
            let d = inj.on_write("w", 100).unwrap();
            assert!(d.crash_after, "{fault:?}");
            assert!(d.keep >= check.0 && d.keep <= check.1, "{fault:?}: {d:?}");
            if fault == IoFault::BitFlip {
                let (off, bit) = d.flip.unwrap();
                assert!(off < 100 && bit < 8);
            } else {
                assert!(d.flip.is_none());
            }
        }
    }

    #[test]
    fn sampled_schedules_are_deterministic() {
        let a = FaultInjector::new(99);
        let b = FaultInjector::new(99);
        for _ in 0..20 {
            assert_eq!(a.arm_sampled(50), b.arm_sampled(50));
        }
    }

    #[test]
    fn heal_clears_crash_state() {
        let inj = FaultInjector::new(4);
        inj.arm(0, IoFault::PowerCut);
        assert!(inj.point("x").is_err());
        assert!(inj.is_crashed());
        inj.heal();
        assert!(!inj.is_crashed());
        inj.point("x").unwrap();
        assert_eq!(inj.point_count("x"), 2);
    }

    #[test]
    fn crash_error_is_recognizable() {
        let err = FaultInjector::crash_error("wal.append");
        assert!(FaultInjector::is_crash(&err));
        assert!(err.to_string().contains("wal.append"));
        let other = Error::Io(std::io::Error::other("disk on fire"));
        assert!(!FaultInjector::is_crash(&other));
    }
}
