//! A tiny seeded PRNG (SplitMix64) so fault schedules never depend on the
//! `rand` crate's version or the host's entropy.

/// Deterministic SplitMix64 generator. Cheap, full-period over `u64`, and
/// good enough for sampling fault schedules (not for cryptography).
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng {
            // Avoid the all-zero fixed point without changing other seeds.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform value in `lo..hi` (returns `lo` when the range is empty).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.below(hi - lo)
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultRng::new(1);
        let mut b = FaultRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut r = FaultRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 9);
            assert!((5..9).contains(&v));
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.range(3, 3), 3);
    }

    #[test]
    fn chance_extremes() {
        let mut r = FaultRng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
