//! Topic-based publish/subscribe with predicate subscriptions, plus the
//! tutorial's **subscribe-to-publish** extension (§2.2.c.i.1).
//!
//! * Consumers **subscribe** to a topic with a predicate ("expressions as
//!   data"); publishing a record delivers it to every subscriber whose
//!   predicate matches — evaluated by an [`IndexedMatcher`] so large
//!   subscriber populations stay fast.
//! * Producers may **register** on a topic to be told when subscriptions
//!   appear or disappear — the subscribe-to-publish pattern: a data source
//!   only starts producing once someone cares.

use std::collections::HashMap;
use std::sync::Arc;

use evdb_expr::Expr;
use evdb_types::{Error, Record, Result, Schema};
use parking_lot::RwLock;

use crate::indexed::IndexedMatcher;
use crate::matcher::Matcher;
use crate::rule::{Rule, RuleId};

/// Description of a subscription, as shown to publishers.
#[derive(Debug, Clone)]
pub struct SubscriptionInfo {
    /// Subscription id (rule id in the topic's matcher).
    pub id: RuleId,
    /// Subscriber name.
    pub subscriber: String,
    /// Predicate text.
    pub predicate: String,
}

/// Callback invoked when interest in a topic changes.
/// Arguments: the subscription, and `true` for subscribe / `false` for
/// unsubscribe.
pub type InterestCallback = Arc<dyn Fn(&SubscriptionInfo, bool) + Send + Sync>;

/// The result of publishing one record.
#[derive(Debug, Clone)]
pub struct Publication {
    /// Names of subscribers whose predicates matched (sorted, deduped —
    /// a subscriber with several matching subscriptions is notified once).
    pub matched_subscribers: Vec<String>,
    /// Ids of the matching subscriptions.
    pub matched_subscriptions: Vec<RuleId>,
}

struct Topic {
    schema: Arc<Schema>,
    matcher: IndexedMatcher,
    subs: HashMap<RuleId, SubscriptionInfo>,
    publishers: Vec<(String, InterestCallback)>,
    next_id: RuleId,
}

/// A multi-topic broker.
#[derive(Default)]
pub struct Broker {
    topics: RwLock<HashMap<String, Topic>>,
}

impl Broker {
    /// Empty broker.
    pub fn new() -> Broker {
        Broker::default()
    }

    /// Create a topic carrying records of `schema`.
    pub fn create_topic(&self, name: &str, schema: Arc<Schema>) -> Result<()> {
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(Error::AlreadyExists(format!("topic '{name}'")));
        }
        topics.insert(
            name.to_string(),
            Topic {
                matcher: IndexedMatcher::new(Arc::clone(&schema)),
                schema,
                subs: HashMap::new(),
                publishers: Vec::new(),
                next_id: 1,
            },
        );
        Ok(())
    }

    /// Topic names.
    pub fn topic_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.topics.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Schema of a topic.
    pub fn topic_schema(&self, topic: &str) -> Result<Arc<Schema>> {
        let topics = self.topics.read();
        topics
            .get(topic)
            .map(|t| Arc::clone(&t.schema))
            .ok_or_else(|| Error::NotFound(format!("topic '{topic}'")))
    }

    /// Subscribe `subscriber` to `topic` with a predicate. Returns the
    /// subscription id. Registered publishers are told interest appeared.
    pub fn subscribe(&self, topic: &str, subscriber: &str, predicate: Expr) -> Result<RuleId> {
        let mut topics = self.topics.write();
        let t = topics
            .get_mut(topic)
            .ok_or_else(|| Error::NotFound(format!("topic '{topic}'")))?;
        let id = t.next_id;
        t.matcher
            .add_rule(Rule::new(id, subscriber, predicate.clone()))?;
        t.next_id += 1;
        let info = SubscriptionInfo {
            id,
            subscriber: subscriber.to_string(),
            predicate: predicate.to_string(),
        };
        t.subs.insert(id, info.clone());
        for (_, cb) in &t.publishers {
            cb(&info, true);
        }
        Ok(id)
    }

    /// Cancel a subscription. Publishers are told interest disappeared.
    pub fn unsubscribe(&self, topic: &str, id: RuleId) -> Result<()> {
        let mut topics = self.topics.write();
        let t = topics
            .get_mut(topic)
            .ok_or_else(|| Error::NotFound(format!("topic '{topic}'")))?;
        let info = t
            .subs
            .remove(&id)
            .ok_or_else(|| Error::NotFound(format!("subscription {id}")))?;
        t.matcher.remove_rule(id)?;
        for (_, cb) in &t.publishers {
            cb(&info, false);
        }
        Ok(())
    }

    /// Register a publisher on a topic (subscribe-to-publish). The
    /// callback fires immediately for every existing subscription, then on
    /// each later subscribe/unsubscribe.
    pub fn register_publisher(
        &self,
        topic: &str,
        publisher: &str,
        on_interest: InterestCallback,
    ) -> Result<()> {
        let mut topics = self.topics.write();
        let t = topics
            .get_mut(topic)
            .ok_or_else(|| Error::NotFound(format!("topic '{topic}'")))?;
        let mut infos: Vec<&SubscriptionInfo> = t.subs.values().collect();
        infos.sort_by_key(|i| i.id);
        for info in infos {
            on_interest(info, true);
        }
        t.publishers.push((publisher.to_string(), on_interest));
        Ok(())
    }

    /// Number of live subscriptions on a topic.
    pub fn subscription_count(&self, topic: &str) -> Result<usize> {
        let topics = self.topics.read();
        topics
            .get(topic)
            .map(|t| t.subs.len())
            .ok_or_else(|| Error::NotFound(format!("topic '{topic}'")))
    }

    /// Publish a record; returns which subscribers matched. The record is
    /// validated against the topic schema (the broker is a trust
    /// boundary — this is the paper's "rules service evaluating external
    /// data", §2.2.c.ii).
    pub fn publish(&self, topic: &str, record: &Record) -> Result<Publication> {
        let topics = self.topics.read();
        let t = topics
            .get(topic)
            .ok_or_else(|| Error::NotFound(format!("topic '{topic}'")))?;
        t.schema.validate(record)?;
        let ids = t.matcher.match_record(record)?;
        let mut names: Vec<String> = ids
            .iter()
            .filter_map(|id| t.subs.get(id).map(|s| s.subscriber.clone()))
            .collect();
        names.sort();
        names.dedup();
        Ok(Publication {
            matched_subscribers: names,
            matched_subscriptions: ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;
    use evdb_types::{DataType, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn broker() -> Broker {
        let b = Broker::new();
        b.create_topic(
            "ticks",
            Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]),
        )
        .unwrap();
        b
    }

    #[test]
    fn predicate_routing() {
        let b = broker();
        b.subscribe("ticks", "alice", parse("sym = 'IBM'").unwrap())
            .unwrap();
        b.subscribe("ticks", "bob", parse("px > 100").unwrap()).unwrap();
        b.subscribe("ticks", "alice", parse("px > 1000").unwrap())
            .unwrap();

        let p = b
            .publish(
                "ticks",
                &Record::from_iter([Value::from("IBM"), Value::Float(150.0)]),
            )
            .unwrap();
        assert_eq!(p.matched_subscribers, vec!["alice", "bob"]);
        assert_eq!(p.matched_subscriptions.len(), 2);

        let p = b
            .publish(
                "ticks",
                &Record::from_iter([Value::from("IBM"), Value::Float(2000.0)]),
            )
            .unwrap();
        // alice matched twice but is notified once.
        assert_eq!(p.matched_subscribers, vec!["alice", "bob"]);
        assert_eq!(p.matched_subscriptions.len(), 3);
    }

    #[test]
    fn publish_validates_schema() {
        let b = broker();
        assert!(b
            .publish("ticks", &Record::from_iter([Value::Int(1)]))
            .is_err());
        assert!(b
            .publish("ghost", &Record::from_iter([Value::Int(1)]))
            .is_err());
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let b = broker();
        let id = b
            .subscribe("ticks", "alice", parse("px > 0").unwrap())
            .unwrap();
        assert_eq!(b.subscription_count("ticks").unwrap(), 1);
        b.unsubscribe("ticks", id).unwrap();
        assert!(b.unsubscribe("ticks", id).is_err());
        let p = b
            .publish(
                "ticks",
                &Record::from_iter([Value::from("X"), Value::Float(1.0)]),
            )
            .unwrap();
        assert!(p.matched_subscribers.is_empty());
    }

    #[test]
    fn subscribe_to_publish_notifies_producers() {
        let b = broker();
        // Existing subscription before the publisher registers.
        b.subscribe("ticks", "early", parse("px > 0").unwrap()).unwrap();

        let interest = Arc::new(AtomicUsize::new(0));
        let i2 = Arc::clone(&interest);
        b.register_publisher(
            "ticks",
            "feed",
            Arc::new(move |_info, up| {
                if up {
                    i2.fetch_add(1, Ordering::SeqCst);
                } else {
                    i2.fetch_sub(1, Ordering::SeqCst);
                }
            }),
        )
        .unwrap();
        assert_eq!(interest.load(Ordering::SeqCst), 1); // backfilled

        let id = b.subscribe("ticks", "late", parse("px > 5").unwrap()).unwrap();
        assert_eq!(interest.load(Ordering::SeqCst), 2);
        b.unsubscribe("ticks", id).unwrap();
        assert_eq!(interest.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn duplicate_topic_rejected() {
        let b = broker();
        assert!(b
            .create_topic("ticks", Schema::of(&[("x", DataType::Int)]))
            .is_err());
        assert_eq!(b.topic_names(), vec!["ticks".to_string()]);
    }
}
