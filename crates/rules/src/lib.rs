//! # evdb-rules
//!
//! Rules technology (Chandy & Gawlick §2.2.c): predicates stored as data,
//! evaluated against streams of records at scale.
//!
//! Two matchers implement the same [`Matcher`] contract:
//!
//! * [`ScanMatcher`] — the baseline: evaluate every rule on every record.
//!   O(rules) per record; what a naive rules service does.
//! * [`IndexedMatcher`] — the scalable design (DESIGN.md D1): each rule's
//!   predicate is decomposed (via `evdb_expr::analyze`) into per-attribute
//!   equality/range constraints, and the matcher performs **access-path
//!   selection** — the rule is indexed under its most selective
//!   constraint (equality ≻ small IN ≻ two-sided range ≻ one-sided
//!   range) in per-attribute hash/ordered structures, and candidates are
//!   verified against the full predicate. Cost per record is
//!   `O(probes + candidates)`, not `O(rules)` — the property behind the
//!   paper's "large rule sets" scalability claim (experiment E3) — and
//!   updates touch only the changed rule's postings, covering the
//!   "frequently changing rule sets" claim (experiment E4).
//!
//! On top of the matchers, [`broker`] provides topic-based
//! publish/subscribe with predicate subscriptions and the tutorial's
//! **subscribe-to-publish** pattern (publishers are told when interest in
//! their topic appears, so they can start producing).

pub mod broker;
pub mod indexed;
pub mod matcher;
pub mod rule;
pub mod scan;

pub use broker::{Broker, Publication, SubscriptionInfo};
pub use indexed::{IndexedMatcher, VerifyMode};
pub use matcher::{MatchScratch, Matcher};
pub use rule::{Rule, RuleId};
pub use scan::ScanMatcher;
