//! The predicate-indexed matcher (DESIGN.md D1).
//!
//! Every rule is decomposed by [`evdb_expr::analyze`] into indexable
//! constraints; the matcher then performs **access-path selection**: it
//! indexes the rule under its *most selective* constraint —
//!
//! `Eq` (hash probe) ≻ `In` (one hash entry per value) ≻ two-sided
//! `Range` ≻ one-sided `Range` (ordered stab probes) —
//!
//! and verifies the rule's **full predicate** on each candidate. A rule
//! with no indexable constraint falls into an always-evaluate set.
//!
//! Matching one record therefore costs `O(probe + candidates)`:
//! a record only pays for rules whose access constraint it satisfies,
//! not for every rule (the scan baseline) nor for every satisfied
//! constraint anywhere in the rule set (the counting algorithm, which
//! degrades when rules carry wide range predicates). Updates touch only
//! the changed rule's postings, which is what keeps frequently changing
//! rule sets cheap (experiment E4).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use evdb_expr::{analyze, BoundExpr, CompiledExpr, Constraint};
use evdb_obs::{Counter, Registry};
use evdb_types::{Error, Record, Result, Schema, Value};

use crate::matcher::{MatchScratch, Matcher};
use crate::rule::{Rule, RuleId};

/// How candidate predicates are verified (experiment E15 compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Bytecode programs compiled at registration (the production path).
    #[default]
    Compiled,
    /// The tree-walking interpreter (differential-testing oracle).
    Interpreted,
}

/// Where a rule's access posting lives, for removal.
#[derive(Debug, Clone)]
enum Posting {
    Eq { field: usize, values: Vec<Value> },
    LowBounded { field: usize, key: (Value, u64) },
    HighOnly { field: usize, key: (Value, u64) },
    Unindexed,
}

#[derive(Debug)]
struct RuleMeta {
    /// Interpreter form (oracle; used in [`VerifyMode::Interpreted`]).
    predicate: BoundExpr,
    /// Bytecode form (hot path; used in [`VerifyMode::Compiled`]).
    compiled: CompiledExpr,
    posting: Posting,
}

impl RuleMeta {
    #[inline]
    fn verify(&self, record: &Record, mode: VerifyMode) -> Result<bool> {
        match mode {
            VerifyMode::Compiled => self.compiled.matches(record),
            VerifyMode::Interpreted => self.predicate.matches(record),
        }
    }
}

/// Entry in the low-keyed range structure.
#[derive(Debug, Clone)]
struct RangeEntry {
    rule: RuleId,
    low_inclusive: bool,
    /// Upper bound for two-sided intervals.
    high: Option<(Value, bool)>,
}

#[derive(Debug, Clone)]
struct HighEntry {
    rule: RuleId,
    inclusive: bool,
}

#[derive(Debug, Default)]
struct FieldIndex {
    /// value → rules whose access constraint is equality with it.
    eq: HashMap<Value, Vec<RuleId>>,
    /// Access constraints with a lower bound, keyed by `(low, seq)`.
    low_keyed: BTreeMap<(Value, u64), RangeEntry>,
    /// Upper-bound-only access constraints, keyed by `(high, seq)`.
    high_keyed: BTreeMap<(Value, u64), HighEntry>,
}

/// The scalable matcher.
///
/// # Example
///
/// ```
/// use evdb_rules::{IndexedMatcher, Matcher, Rule};
/// use evdb_types::{DataType, Record, Schema, Value};
///
/// let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
/// let mut m = IndexedMatcher::new(schema);
/// m.add_rule(Rule::new(1, "ibm-spike",
///     evdb_expr::parse("sym = 'IBM' AND px > 100").unwrap())).unwrap();
/// m.add_rule(Rule::new(2, "any-cheap",
///     evdb_expr::parse("px < 5").unwrap())).unwrap();
///
/// let tick = Record::from_iter([Value::from("IBM"), Value::Float(150.0)]);
/// assert_eq!(m.match_record(&tick).unwrap(), vec![1]);
/// ```
pub struct IndexedMatcher {
    schema: Arc<Schema>,
    fields: Vec<FieldIndex>,
    rules: HashMap<RuleId, RuleMeta>,
    /// Rules with no indexable access constraint.
    unindexed: BTreeMap<RuleId, ()>,
    seq: u64,
    /// Which engine verifies candidate predicates.
    verify_mode: VerifyMode,
    /// Candidate rules probed per record (index hits + unindexed fallbacks).
    candidates_obs: Option<Arc<Counter>>,
    /// Rules whose full predicate matched.
    matches_obs: Option<Arc<Counter>>,
}

/// Selectivity rank of a constraint (higher = preferred access path).
fn rank(c: &Constraint) -> u8 {
    match c {
        Constraint::Eq { .. } => 4,
        Constraint::In { values, .. } if values.len() <= 8 => 3,
        Constraint::Range { low: Some(_), high: Some(_), .. } => 2,
        Constraint::Range { .. } => 1,
        Constraint::In { .. } => 1,
    }
}

impl IndexedMatcher {
    /// Create a matcher for records of `schema`.
    pub fn new(schema: Arc<Schema>) -> IndexedMatcher {
        let nfields = schema.len();
        IndexedMatcher {
            schema,
            fields: (0..nfields).map(|_| FieldIndex::default()).collect(),
            rules: HashMap::new(),
            unindexed: BTreeMap::new(),
            seq: 0,
            verify_mode: VerifyMode::default(),
            candidates_obs: None,
            matches_obs: None,
        }
    }

    /// Select the candidate-verification engine (default:
    /// [`VerifyMode::Compiled`]). The interpreted mode exists for
    /// differential testing and the E15 comparison.
    pub fn set_verify_mode(&mut self, mode: VerifyMode) {
        self.verify_mode = mode;
    }

    /// Register candidate/match counters with `registry`
    /// (`evdb_rules_candidates_total`, `evdb_rules_matches_total`).
    pub fn bind_obs(&mut self, registry: &Registry) {
        if registry.is_enabled() {
            self.candidates_obs = Some(registry.counter("evdb_rules_candidates_total"));
            self.matches_obs = Some(registry.counter("evdb_rules_matches_total"));
        }
    }

    /// How many rules have an indexed access path.
    pub fn fully_indexed_count(&self) -> usize {
        self.rules.len() - self.unindexed.len()
    }

    /// How many rules fall back to always-evaluate.
    pub fn unindexed_count(&self) -> usize {
        self.unindexed.len()
    }

    /// Probe every field index and append the record's candidate rule
    /// ids (shared by [`Matcher::match_record`] and
    /// [`Matcher::match_batch`]; each candidate appears once — one
    /// access posting per rule, IN values are distinct).
    fn collect_candidates(&self, record: &Record, candidates: &mut Vec<RuleId>) {
        for (field_pos, fidx) in self.fields.iter().enumerate() {
            let Some(v) = record.get(field_pos) else { continue };
            if v.is_null() {
                continue;
            }
            if let Some(rules) = fidx.eq.get(v) {
                candidates.extend_from_slice(rules);
            }
            if !fidx.low_keyed.is_empty() {
                let upper = (v.clone(), u64::MAX);
                for ((low, _), entry) in fidx.low_keyed.range(..=upper) {
                    let low_ok = match v.sql_cmp(low) {
                        Some(std::cmp::Ordering::Greater) => true,
                        Some(std::cmp::Ordering::Equal) => entry.low_inclusive,
                        _ => false,
                    };
                    if !low_ok {
                        continue;
                    }
                    let high_ok = match &entry.high {
                        None => true,
                        Some((h, inc)) => match v.sql_cmp(h) {
                            Some(std::cmp::Ordering::Less) => true,
                            Some(std::cmp::Ordering::Equal) => *inc,
                            _ => false,
                        },
                    };
                    if high_ok {
                        candidates.push(entry.rule);
                    }
                }
            }
            if !fidx.high_keyed.is_empty() {
                let lower = (v.clone(), 0u64);
                for ((high, _), entry) in fidx.high_keyed.range(lower..) {
                    let ok = match v.sql_cmp(high) {
                        Some(std::cmp::Ordering::Less) => true,
                        Some(std::cmp::Ordering::Equal) => entry.inclusive,
                        _ => false,
                    };
                    if ok {
                        candidates.push(entry.rule);
                    }
                }
            }
        }
    }
}

impl Matcher for IndexedMatcher {
    fn add_rule(&mut self, rule: Rule) -> Result<()> {
        if self.rules.contains_key(&rule.id) {
            return Err(Error::AlreadyExists(format!("rule {}", rule.id)));
        }
        let predicate = rule.predicate.bind_predicate(&self.schema)?;
        let compiled = CompiledExpr::compile(&predicate);
        let form = analyze(&rule.predicate);

        // Access-path selection: the highest-ranked constraint wins.
        let access = form
            .constraints
            .iter()
            .max_by_key(|c| rank(c))
            .filter(|c| rank(c) > 0);

        let posting = match access {
            None => {
                self.unindexed.insert(rule.id, ());
                Posting::Unindexed
            }
            Some(c) => {
                // bind_predicate validated all fields, so this exists.
                let field = self
                    .schema
                    .index_of(c.field())
                    .expect("constraint field exists");
                match c {
                    Constraint::Eq { value, .. } => {
                        self.fields[field]
                            .eq
                            .entry(value.clone())
                            .or_default()
                            .push(rule.id);
                        Posting::Eq {
                            field,
                            values: vec![value.clone()],
                        }
                    }
                    Constraint::In { values, .. } => {
                        for v in values {
                            self.fields[field]
                                .eq
                                .entry(v.clone())
                                .or_default()
                                .push(rule.id);
                        }
                        Posting::Eq {
                            field,
                            values: values.clone(),
                        }
                    }
                    Constraint::Range { low, high, .. } => {
                        self.seq += 1;
                        match (low, high) {
                            (Some(lo), hi) => {
                                let key = (lo.value.clone(), self.seq);
                                self.fields[field].low_keyed.insert(
                                    key.clone(),
                                    RangeEntry {
                                        rule: rule.id,
                                        low_inclusive: lo.inclusive,
                                        high: hi
                                            .as_ref()
                                            .map(|b| (b.value.clone(), b.inclusive)),
                                    },
                                );
                                Posting::LowBounded { field, key }
                            }
                            (None, Some(hi)) => {
                                let key = (hi.value.clone(), self.seq);
                                self.fields[field].high_keyed.insert(
                                    key.clone(),
                                    HighEntry {
                                        rule: rule.id,
                                        inclusive: hi.inclusive,
                                    },
                                );
                                Posting::HighOnly { field, key }
                            }
                            (None, None) => {
                                unreachable!("analyze never emits unbounded ranges")
                            }
                        }
                    }
                }
            }
        };

        self.rules.insert(
            rule.id,
            RuleMeta {
                predicate,
                compiled,
                posting,
            },
        );
        Ok(())
    }

    fn remove_rule(&mut self, id: RuleId) -> Result<()> {
        let meta = self
            .rules
            .remove(&id)
            .ok_or_else(|| Error::NotFound(format!("rule {id}")))?;
        match meta.posting {
            Posting::Unindexed => {
                self.unindexed.remove(&id);
            }
            Posting::Eq { field, values } => {
                for value in values {
                    if let Some(v) = self.fields[field].eq.get_mut(&value) {
                        v.retain(|r| *r != id);
                        if v.is_empty() {
                            self.fields[field].eq.remove(&value);
                        }
                    }
                }
            }
            Posting::LowBounded { field, key } => {
                self.fields[field].low_keyed.remove(&key);
            }
            Posting::HighOnly { field, key } => {
                self.fields[field].high_keyed.remove(&key);
            }
        }
        Ok(())
    }

    fn match_record(&self, record: &Record) -> Result<Vec<RuleId>> {
        let mut candidates: Vec<RuleId> = Vec::new();
        self.collect_candidates(record, &mut candidates);

        // Verify full predicates on candidates (each candidate appears
        // once: one access posting per rule, IN values are distinct).
        let candidate_count = candidates.len();
        let mut out = Vec::new();
        for id in candidates {
            let meta = &self.rules[&id];
            if meta.verify(record, self.verify_mode)? {
                out.push(id);
            }
        }
        // Unindexed rules: evaluate outright.
        for id in self.unindexed.keys() {
            if self.rules[id].verify(record, self.verify_mode)? {
                out.push(*id);
            }
        }
        out.sort_unstable();
        out.dedup();
        if let Some(c) = &self.candidates_obs {
            c.add((candidate_count + self.unindexed.len()) as u64);
        }
        if let Some(c) = &self.matches_obs {
            c.add(out.len() as u64);
        }
        Ok(out)
    }

    /// Batched candidate-verify: records are bucketed *by probe value*
    /// per indexed field, so every record sharing a value shares one
    /// index probe, and each posting hit yields a rule-major group (the
    /// rule plus the whole bucket) ready for one batch-VM pass — no
    /// per-pair sorting or hashing. Per-record results — ids, ordering,
    /// and first-error-wins — are reconstructed in the record's
    /// original candidate order, so `out[i]` is identical to a
    /// per-record call.
    fn match_batch(
        &self,
        records: &[&Record],
        scratch: &mut MatchScratch,
        out: &mut Vec<Result<Vec<RuleId>>>,
    ) {
        if self.verify_mode == VerifyMode::Interpreted {
            // Oracle mode: stay on the reference path.
            out.clear();
            out.extend(records.iter().map(|r| self.match_record(r)));
            return;
        }
        let n = records.len();
        let MatchScratch {
            expr,
            bools,
            val_buckets,
            bucket_lists,
            groups,
            grouped,
            rec_cursor,
            rec_off,
            verdict_bits,
            pair_rule,
            errs,
        } = scratch;

        // Phase 1: bucket records by probe value, then walk each field's
        // postings once per *distinct value* instead of once per record.
        // Groups are appended in each record's candidate order (fields
        // in schema order; per field eq then low-keyed then high-keyed,
        // mirroring `collect_candidates`; unindexed rules last) — a
        // record belongs to exactly one bucket per field, so the group
        // build order restricted to that record is its verify order.
        groups.clear();
        grouped.clear();
        rec_cursor.clear();
        rec_cursor.resize(n, 0);
        for (field_pos, fidx) in self.fields.iter().enumerate() {
            if fidx.eq.is_empty() && fidx.low_keyed.is_empty() && fidx.high_keyed.is_empty() {
                continue;
            }
            val_buckets.clear();
            let mut nb = 0u32;
            for (ri, record) in records.iter().enumerate() {
                let Some(v) = record.get(field_pos) else { continue };
                if v.is_null() {
                    continue;
                }
                let b = match val_buckets.get(v) {
                    Some(&b) => b,
                    None => {
                        let b = nb;
                        nb += 1;
                        if bucket_lists.len() <= b as usize {
                            bucket_lists.push(Vec::new());
                        } else {
                            bucket_lists[b as usize].clear();
                        }
                        val_buckets.insert(v.clone(), b);
                        b
                    }
                };
                bucket_lists[b as usize].push(ri as u32);
            }
            for (v, &b) in val_buckets.iter() {
                let recs = &bucket_lists[b as usize];
                let mut push_group = |rule: RuleId| {
                    let start = grouped.len() as u32;
                    grouped.extend_from_slice(recs);
                    for &r in recs {
                        rec_cursor[r as usize] += 1;
                    }
                    groups.push((rule, start, recs.len() as u32));
                };
                if let Some(rules) = fidx.eq.get(v) {
                    for &rule in rules {
                        push_group(rule);
                    }
                }
                if !fidx.low_keyed.is_empty() {
                    let upper = (v.clone(), u64::MAX);
                    for ((low, _), entry) in fidx.low_keyed.range(..=upper) {
                        let low_ok = match v.sql_cmp(low) {
                            Some(std::cmp::Ordering::Greater) => true,
                            Some(std::cmp::Ordering::Equal) => entry.low_inclusive,
                            _ => false,
                        };
                        if !low_ok {
                            continue;
                        }
                        let high_ok = match &entry.high {
                            None => true,
                            Some((h, inc)) => match v.sql_cmp(h) {
                                Some(std::cmp::Ordering::Less) => true,
                                Some(std::cmp::Ordering::Equal) => *inc,
                                _ => false,
                            },
                        };
                        if high_ok {
                            push_group(entry.rule);
                        }
                    }
                }
                if !fidx.high_keyed.is_empty() {
                    let lower = (v.clone(), 0u64);
                    for ((high, _), entry) in fidx.high_keyed.range(lower..) {
                        let ok = match v.sql_cmp(high) {
                            Some(std::cmp::Ordering::Less) => true,
                            Some(std::cmp::Ordering::Equal) => entry.inclusive,
                            _ => false,
                        };
                        if ok {
                            push_group(entry.rule);
                        }
                    }
                }
            }
        }
        for &id in self.unindexed.keys() {
            let start = grouped.len() as u32;
            grouped.extend(0..n as u32);
            for c in rec_cursor.iter_mut() {
                *c += 1;
            }
            groups.push((id, start, n as u32));
        }

        // Phase 2: one batch-VM pass per group; verdicts scatter into
        // record-major slots. Scatter cursors advance in group build
        // order, which per record is its candidate order (see above).
        rec_off.clear();
        rec_off.reserve(n + 1);
        let mut acc = 0u32;
        rec_off.push(0);
        for &cnt in rec_cursor.iter() {
            acc += cnt;
            rec_off.push(acc);
        }
        let total = grouped.len();
        debug_assert_eq!(acc as usize, total);
        for c in rec_cursor.iter_mut() {
            *c = 0;
        }
        verdict_bits.clear();
        verdict_bits.resize(total, false);
        pair_rule.clear();
        pair_rule.resize(total, 0);
        errs.clear();
        for &(rule, start, len) in groups.iter() {
            let recs = &grouped[start as usize..(start + len) as usize];
            let compiled = &self.rules[&rule].compiled;
            compiled.matches_batch(recs, |i| records[*i as usize], expr, bools);
            for (k, v) in bools.drain(..).enumerate() {
                let rec = recs[k] as usize;
                let j = (rec_off[rec] + rec_cursor[rec]) as usize;
                rec_cursor[rec] += 1;
                pair_rule[j] = rule;
                match v {
                    Ok(hit) => verdict_bits[j] = hit,
                    Err(e) => errs.push((j as u32, Some(e))),
                }
            }
        }

        // Phase 3: reconstruct per-record outputs from the record-major
        // verdict slots. Errors are rare; the sorted side table yields
        // each record's *first* error (smallest slot = earliest in its
        // candidate order), matching the per-record `?` abort.
        errs.sort_unstable_by_key(|e| e.0);
        out.clear();
        let mut cand_total = 0u64;
        let mut match_total = 0u64;
        for ri in 0..n {
            let lo = rec_off[ri] as usize;
            let hi = rec_off[ri + 1] as usize;
            if !errs.is_empty() {
                let e = errs.partition_point(|e| (e.0 as usize) < lo);
                if e < errs.len() && (errs[e].0 as usize) < hi {
                    out.push(Err(errs[e].1.take().expect("first error taken once")));
                    continue;
                }
            }
            let mut ids: Vec<RuleId> = Vec::new();
            for j in lo..hi {
                if verdict_bits[j] {
                    ids.push(pair_rule[j]);
                }
            }
            ids.sort_unstable();
            ids.dedup();
            // Counters fire only for records that completed, as on the
            // per-record path (`?` aborts before them).
            cand_total += (hi - lo) as u64;
            match_total += ids.len() as u64;
            out.push(Ok(ids));
        }
        if let Some(c) = &self.candidates_obs {
            c.add(cand_total);
        }
        if let Some(c) = &self.matches_obs {
            c.add(match_total);
        }
    }

    fn len(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;
    use evdb_types::DataType;

    fn schema() -> Arc<Schema> {
        Schema::of(&[
            ("sym", DataType::Str),
            ("px", DataType::Float),
            ("qty", DataType::Int),
        ])
    }

    fn rec(sym: &str, px: f64, qty: i64) -> Record {
        Record::from_iter([Value::from(sym), Value::Float(px), Value::Int(qty)])
    }

    #[test]
    fn equality_access_path_with_residual_verification() {
        let mut m = IndexedMatcher::new(schema());
        m.add_rule(Rule::new(1, "", parse("sym = 'IBM' AND px > 100").unwrap()))
            .unwrap();
        assert_eq!(m.match_record(&rec("IBM", 150.0, 1)).unwrap(), vec![1]);
        assert!(m.match_record(&rec("IBM", 50.0, 1)).unwrap().is_empty());
        assert!(m.match_record(&rec("X", 150.0, 1)).unwrap().is_empty());
        assert_eq!(m.fully_indexed_count(), 1);
    }

    #[test]
    fn ranges_one_and_two_sided() {
        let mut m = IndexedMatcher::new(schema());
        m.add_rule(Rule::new(1, "", parse("px > 100").unwrap())).unwrap();
        m.add_rule(Rule::new(2, "", parse("px <= 100").unwrap())).unwrap();
        m.add_rule(Rule::new(3, "", parse("px BETWEEN 50 AND 150").unwrap()))
            .unwrap();
        m.add_rule(Rule::new(4, "", parse("qty >= 10 AND qty < 20").unwrap()))
            .unwrap();

        assert_eq!(m.match_record(&rec("A", 100.0, 10)).unwrap(), vec![2, 3, 4]);
        assert_eq!(m.match_record(&rec("A", 100.5, 20)).unwrap(), vec![1, 3]);
        assert_eq!(m.match_record(&rec("A", 40.0, 5)).unwrap(), vec![2]);
        assert_eq!(m.match_record(&rec("A", 160.0, 19)).unwrap(), vec![1, 4]);
    }

    #[test]
    fn in_lists_and_residuals() {
        let mut m = IndexedMatcher::new(schema());
        m.add_rule(Rule::new(1, "", parse("sym IN ('A', 'B')").unwrap()))
            .unwrap();
        m.add_rule(Rule::new(
            2,
            "",
            parse("sym = 'A' AND (px > 10 OR qty > 10)").unwrap(),
        ))
        .unwrap();
        assert_eq!(m.match_record(&rec("B", 1.0, 1)).unwrap(), vec![1]);
        assert_eq!(m.match_record(&rec("A", 11.0, 1)).unwrap(), vec![1, 2]);
        assert_eq!(m.match_record(&rec("A", 1.0, 1)).unwrap(), vec![1]);
    }

    #[test]
    fn access_path_prefers_equality_over_wide_range() {
        let mut m = IndexedMatcher::new(schema());
        // Equality should be the access path; the wide px range must not
        // make this rule a candidate for every record.
        m.add_rule(Rule::new(1, "", parse("px > 0 AND sym = 'RARE'").unwrap()))
            .unwrap();
        match &m.rules[&1].posting {
            Posting::Eq { .. } => {}
            other => panic!("expected Eq access path, got {other:?}"),
        }
        assert_eq!(m.match_record(&rec("RARE", 1.0, 1)).unwrap(), vec![1]);
        assert!(m.match_record(&rec("COMMON", 1.0, 1)).unwrap().is_empty());
    }

    #[test]
    fn unindexable_rules_still_match() {
        let mut m = IndexedMatcher::new(schema());
        m.add_rule(Rule::new(1, "", parse("length(sym) = 3").unwrap()))
            .unwrap();
        m.add_rule(Rule::new(2, "", parse("px * 2 > qty").unwrap()))
            .unwrap();
        assert_eq!(m.unindexed_count(), 2);
        assert_eq!(m.match_record(&rec("IBM", 10.0, 5)).unwrap(), vec![1, 2]);
        assert_eq!(
            m.match_record(&rec("IB", 1.0, 50)).unwrap(),
            Vec::<RuleId>::new()
        );
    }

    #[test]
    fn removal_is_complete() {
        let mut m = IndexedMatcher::new(schema());
        m.add_rule(Rule::new(
            1,
            "",
            parse("sym = 'A' AND px > 1 AND qty IN (1,2)").unwrap(),
        ))
        .unwrap();
        m.add_rule(Rule::new(2, "", parse("sym = 'A'").unwrap())).unwrap();
        assert_eq!(m.match_record(&rec("A", 2.0, 1)).unwrap(), vec![1, 2]);
        m.remove_rule(1).unwrap();
        assert_eq!(m.match_record(&rec("A", 2.0, 1)).unwrap(), vec![2]);
        assert!(m.remove_rule(1).is_err());
        m.update_rule(Rule::new(2, "", parse("sym = 'B'").unwrap()))
            .unwrap();
        assert!(m.match_record(&rec("A", 2.0, 1)).unwrap().is_empty());
        assert_eq!(m.match_record(&rec("B", 2.0, 1)).unwrap(), vec![2]);
    }

    #[test]
    fn null_fields_never_match_indexed_constraints() {
        let schema = evdb_types::Schema::new(vec![
            evdb_types::FieldDef::nullable("sym", DataType::Str),
            evdb_types::FieldDef::required("px", DataType::Float),
        ])
        .unwrap();
        let mut m = IndexedMatcher::new(schema);
        m.add_rule(Rule::new(1, "", parse("sym = 'A'").unwrap())).unwrap();
        let r = Record::from_iter([Value::Null, Value::Float(1.0)]);
        assert!(m.match_record(&r).unwrap().is_empty());
    }

    #[test]
    fn agrees_with_scan_on_random_rules() {
        use crate::scan::ScanMatcher;
        let schema = schema();
        let mut idx = IndexedMatcher::new(Arc::clone(&schema));
        let mut scan = ScanMatcher::new(Arc::clone(&schema));
        let preds = [
            "px > 50",
            "px BETWEEN 10 AND 60",
            "sym = 'S3'",
            "sym IN ('S1', 'S5') AND px <= 30",
            "qty = 7",
            "qty >= 3 AND qty <= 9 AND sym = 'S2'",
            "length(sym) = 2",
            "px < 20 OR qty > 90",
        ];
        for (i, p) in preds.iter().enumerate() {
            let r = Rule::new(i as u64, "", parse(p).unwrap());
            idx.add_rule(r.clone()).unwrap();
            scan.add_rule(r).unwrap();
        }
        let mut state = 42u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let sym = format!("S{}", state % 8);
            let px = ((state >> 8) % 1000) as f64 / 10.0;
            let qty = ((state >> 16) % 100) as i64;
            let r = rec(&sym, px, qty);
            assert_eq!(
                idx.match_record(&r).unwrap(),
                scan.match_record(&r).unwrap(),
                "disagreement on {r}"
            );
        }
    }

    #[test]
    fn verify_modes_agree() {
        let mut m = IndexedMatcher::new(schema());
        let preds = [
            "sym = 'A' AND px > 10",
            "sym LIKE 'S%' AND qty BETWEEN 2 AND 8",
            "px * 2 > qty",
            "length(sym) = 2 AND px < 50",
        ];
        for (i, p) in preds.iter().enumerate() {
            m.add_rule(Rule::new(i as u64, "", parse(p).unwrap())).unwrap();
        }
        let records = [
            rec("A", 11.0, 1),
            rec("S7", 3.0, 5),
            rec("ZZ", 49.0, 97),
            rec("A", 1.0, 1),
        ];
        for r in &records {
            let compiled = m.match_record(r).unwrap();
            m.set_verify_mode(VerifyMode::Interpreted);
            let interpreted = m.match_record(r).unwrap();
            m.set_verify_mode(VerifyMode::Compiled);
            assert_eq!(compiled, interpreted, "mode disagreement on {r}");
        }
    }
}
