//! The matcher contract shared by the scan baseline and the indexed
//! design, so benchmarks and property tests can compare them head-to-head.

use std::collections::HashMap;

use evdb_expr::BatchScratch;
use evdb_types::{Error, Record, Result, Value};

use crate::rule::{Rule, RuleId};

/// Reusable state for [`Matcher::match_batch`]: the expression-VM batch
/// scratch plus the candidate-grouping buffers the indexed matcher
/// uses. Hold one per evaluating thread; buffers size themselves to the
/// batch on first use and are reused afterwards (D15).
///
/// The indexed matcher groups candidates *by probe value*, not by
/// sorting `(rule, record)` pairs: records sharing a field value share
/// one index probe and land in one bucket, so rule-major groups fall
/// out of the posting lists directly — no per-pair sort or hash.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Expression-VM scratch shared by every rule verified in a batch.
    pub(crate) expr: BatchScratch,
    /// Verdict buffer for one rule group.
    pub(crate) bools: Vec<Result<bool>>,
    /// Probe value → bucket slot, for the field currently bucketed.
    pub(crate) val_buckets: HashMap<Value, u32>,
    /// Record-index list pool backing the value buckets.
    pub(crate) bucket_lists: Vec<Vec<u32>>,
    /// Rule-major verify groups: `(rule, start, len)` into `grouped`.
    pub(crate) groups: Vec<(RuleId, u32, u32)>,
    /// Arena of record indices the groups slice into.
    pub(crate) grouped: Vec<u32>,
    /// Per-record pair counts during build, then scatter cursors.
    pub(crate) rec_cursor: Vec<u32>,
    /// Per-record verdict-slot offsets (prefix sums of pair counts).
    pub(crate) rec_off: Vec<u32>,
    /// Per-pair verdicts in record-major candidate order.
    pub(crate) verdict_bits: Vec<bool>,
    /// Per-pair rule ids in record-major candidate order.
    pub(crate) pair_rule: Vec<RuleId>,
    /// Rare verify errors: `(record-major slot, error)`.
    pub(crate) errs: Vec<(u32, Option<Error>)>,
}

impl MatchScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> MatchScratch {
        MatchScratch::default()
    }
}

/// A set of rules matchable against records of one schema.
pub trait Matcher: Send + Sync {
    /// Add a rule. Fails if the id is taken or the predicate does not
    /// type-check against the matcher's schema.
    fn add_rule(&mut self, rule: Rule) -> Result<()>;

    /// Remove a rule by id. Fails if absent.
    fn remove_rule(&mut self, id: RuleId) -> Result<()>;

    /// Replace a rule's predicate (remove + add, atomically from the
    /// caller's perspective).
    fn update_rule(&mut self, rule: Rule) -> Result<()> {
        self.remove_rule(rule.id)?;
        self.add_rule(rule)
    }

    /// Ids of all rules whose predicate is TRUE for the record,
    /// in ascending id order (deterministic for tests and dedup).
    fn match_record(&self, record: &Record) -> Result<Vec<RuleId>>;

    /// Match a whole batch: `out[i]` must equal
    /// `self.match_record(records[i])` — same ids, same first-error
    /// semantics per record. The default delegates record-at-a-time;
    /// implementations override to amortize verification through the
    /// batch evaluator (D15).
    fn match_batch(
        &self,
        records: &[&Record],
        _scratch: &mut MatchScratch,
        out: &mut Vec<Result<Vec<RuleId>>>,
    ) {
        out.clear();
        out.extend(records.iter().map(|r| self.match_record(r)));
    }

    /// Number of rules.
    fn len(&self) -> usize;

    /// True when no rules are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
