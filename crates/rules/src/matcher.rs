//! The matcher contract shared by the scan baseline and the indexed
//! design, so benchmarks and property tests can compare them head-to-head.

use evdb_types::{Record, Result};

use crate::rule::{Rule, RuleId};

/// A set of rules matchable against records of one schema.
pub trait Matcher: Send + Sync {
    /// Add a rule. Fails if the id is taken or the predicate does not
    /// type-check against the matcher's schema.
    fn add_rule(&mut self, rule: Rule) -> Result<()>;

    /// Remove a rule by id. Fails if absent.
    fn remove_rule(&mut self, id: RuleId) -> Result<()>;

    /// Replace a rule's predicate (remove + add, atomically from the
    /// caller's perspective).
    fn update_rule(&mut self, rule: Rule) -> Result<()> {
        self.remove_rule(rule.id)?;
        self.add_rule(rule)
    }

    /// Ids of all rules whose predicate is TRUE for the record,
    /// in ascending id order (deterministic for tests and dedup).
    fn match_record(&self, record: &Record) -> Result<Vec<RuleId>>;

    /// Number of rules.
    fn len(&self) -> usize;

    /// True when no rules are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
