//! The baseline matcher: evaluate every rule on every record.

use std::collections::BTreeMap;
use std::sync::Arc;

use evdb_expr::CompiledExpr;
use evdb_types::{Error, Record, Result, Schema};

use crate::matcher::Matcher;
use crate::rule::{Rule, RuleId};

/// O(rules)-per-record matcher; the comparison point for experiment E3.
/// Predicates are compiled to bytecode at registration like the indexed
/// matcher's, so E3 compares indexing strategies, not eval engines.
pub struct ScanMatcher {
    schema: Arc<Schema>,
    rules: BTreeMap<RuleId, CompiledExpr>,
}

impl ScanMatcher {
    /// Create a matcher for records of `schema`.
    pub fn new(schema: Arc<Schema>) -> ScanMatcher {
        ScanMatcher {
            schema,
            rules: BTreeMap::new(),
        }
    }
}

impl Matcher for ScanMatcher {
    fn add_rule(&mut self, rule: Rule) -> Result<()> {
        if self.rules.contains_key(&rule.id) {
            return Err(Error::AlreadyExists(format!("rule {}", rule.id)));
        }
        let bound = rule.predicate.bind_predicate(&self.schema)?;
        self.rules.insert(rule.id, CompiledExpr::compile(&bound));
        Ok(())
    }

    fn remove_rule(&mut self, id: RuleId) -> Result<()> {
        self.rules
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(format!("rule {id}")))
    }

    fn match_record(&self, record: &Record) -> Result<Vec<RuleId>> {
        let mut out = Vec::new();
        for (id, pred) in &self.rules {
            if pred.matches(record)? {
                out.push(*id);
            }
        }
        Ok(out)
    }

    fn len(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;
    use evdb_types::{DataType, Value};

    fn matcher() -> ScanMatcher {
        let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
        let mut m = ScanMatcher::new(schema);
        m.add_rule(Rule::new(1, "ibm", parse("sym = 'IBM'").unwrap()))
            .unwrap();
        m.add_rule(Rule::new(2, "hot", parse("px > 100").unwrap()))
            .unwrap();
        m.add_rule(Rule::new(3, "both", parse("sym = 'IBM' AND px > 100").unwrap()))
            .unwrap();
        m
    }

    #[test]
    fn matches_in_id_order() {
        let m = matcher();
        let r = Record::from_iter([Value::from("IBM"), Value::Float(150.0)]);
        assert_eq!(m.match_record(&r).unwrap(), vec![1, 2, 3]);
        let r = Record::from_iter([Value::from("IBM"), Value::Float(50.0)]);
        assert_eq!(m.match_record(&r).unwrap(), vec![1]);
        let r = Record::from_iter([Value::from("X"), Value::Float(50.0)]);
        assert!(m.match_record(&r).unwrap().is_empty());
    }

    #[test]
    fn add_remove_update() {
        let mut m = matcher();
        assert_eq!(m.len(), 3);
        assert!(m.add_rule(Rule::new(1, "dup", parse("px > 0").unwrap())).is_err());
        assert!(m.add_rule(Rule::new(9, "bad", parse("ghost = 1").unwrap())).is_err());
        m.remove_rule(2).unwrap();
        assert!(m.remove_rule(2).is_err());
        m.update_rule(Rule::new(3, "both", parse("px < 0").unwrap()))
            .unwrap();
        let r = Record::from_iter([Value::from("IBM"), Value::Float(150.0)]);
        assert_eq!(m.match_record(&r).unwrap(), vec![1]);
    }
}
