//! Rules: named, stored predicates.

use evdb_expr::Expr;

/// Identifier of a rule within one matcher/broker.
pub type RuleId = u64;

/// A rule: a predicate over one event schema, stored as data.
///
/// The rules engine is deliberately *action-free*: matching returns rule
/// ids and the embedding layer (the core engine's evaluation pipeline, or
/// the broker's subscriptions) decides what a match means — enqueue a
/// message, invoke a handler, forward to a node. This keeps the matcher
/// benchmarkable in isolation.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Unique id.
    pub id: RuleId,
    /// Human-readable name (audit trail, diagnostics).
    pub name: String,
    /// The predicate (parseable/printable — "expressions as data").
    pub predicate: Expr,
}

impl Rule {
    /// Construct a rule.
    pub fn new(id: RuleId, name: impl Into<String>, predicate: Expr) -> Rule {
        Rule {
            id,
            name: name.into(),
            predicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;

    #[test]
    fn rule_round_trips_its_predicate_text() {
        let r = Rule::new(1, "hot", parse("temp > 100 AND site = 'A'").unwrap());
        let text = r.predicate.to_string();
        assert_eq!(parse(&text).unwrap(), r.predicate);
    }
}
