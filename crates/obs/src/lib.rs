//! # evdb-obs
//!
//! The unified observability layer: a process-wide [`Registry`] of named
//! counters, gauges and latency histograms that every EventDB crate
//! registers into, plus a Prometheus-style text renderer and a
//! snapshot-diff rates view.
//!
//! The paper's "management by exception" stance (§2.1) presupposes the
//! platform can report on itself — capture latencies, queue depths,
//! notification counts. This crate is that reporting substrate:
//!
//! * **Handles are cheap.** [`Counter`] is one relaxed atomic add;
//!   [`Gauge`] one atomic store; [`HistogramHandle`] a short mutex-guarded
//!   bin increment. A registry created with [`Registry::disabled`] turns
//!   every handle into a branch-predicted no-op, which is the baseline
//!   experiment E13 measures overhead against.
//! * **Names are the contract.** Metric names follow
//!   `evdb_<area>_<what>[_total|_ms]` (see DESIGN.md §D9); the renderer
//!   emits them sorted, so the exposition text is deterministic and can
//!   be golden-tested.
//! * **Bridging, not rewriting.** Existing ad-hoc atomics (e.g.
//!   `core::Metrics`) are surfaced through [`Registry::gauge_fn`]
//!   closures instead of being migrated wholesale.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evdb_analytics::Histogram;
use parking_lot::Mutex;

/// A monotonically increasing counter handle.
///
/// Cloned handles (via `Arc`) all update the same cell; reads are
/// point-in-time. Disabled counters ignore updates.
#[derive(Debug)]
pub struct Counter {
    enabled: bool,
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. Zero adds skip the atomic entirely — hot paths add
    /// per-event deltas (candidates, matches, panes) that are usually
    /// zero, and a zero `fetch_add` still costs a locked RMW.
    pub fn add(&self, n: u64) {
        if self.enabled && n != 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64`.
#[derive(Debug)]
pub struct Gauge {
    enabled: bool,
    bits: AtomicU64,
}

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: f64) {
        if self.enabled {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-range latency histogram handle with a running sum.
pub struct HistogramHandle {
    enabled: bool,
    state: Mutex<HistogramState>,
}

struct HistogramState {
    hist: Histogram,
    sum: f64,
}

impl HistogramHandle {
    /// Record one observation (typically milliseconds).
    pub fn observe(&self, v: f64) {
        if self.enabled {
            let mut s = self.state.lock();
            s.hist.observe(v.max(0.0));
            s.sum += v.max(0.0);
        }
    }

    /// Record a batch of observations under a single lock — the
    /// amortized path for hot loops that accrue samples per event but
    /// can flush per batch (see `core::metrics::StageBatch`).
    pub fn observe_many(&self, vs: &[f64]) {
        if self.enabled && !vs.is_empty() {
            let mut s = self.state.lock();
            for &v in vs {
                s.hist.observe(v.max(0.0));
                s.sum += v.max(0.0);
            }
        }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> HistogramStats {
        let s = self.state.lock();
        HistogramStats {
            count: s.hist.count(),
            sum: s.sum,
            p50: s.hist.quantile(0.5),
            p99: s.hist.quantile(0.99),
            saturated: s.hist.saturated(),
        }
    }
}

impl fmt::Debug for HistogramHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.stats();
        f.debug_struct("HistogramHandle")
            .field("enabled", &self.enabled)
            .field("count", &st.count)
            .finish()
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramStats {
    /// Observations recorded (including out-of-range).
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Median, if any data.
    pub p50: Option<f64>,
    /// 99th percentile, if any data. Clamped to the range cap when
    /// `saturated` — read it as "at least".
    pub p99: Option<f64>,
    /// Observations hit the histogram cap; upper quantiles are bounds.
    pub saturated: bool,
}

type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    gauge_fns: BTreeMap<String, GaugeFn>,
    histograms: BTreeMap<String, Arc<HistogramHandle>>,
}

/// The unified metric registry every crate registers into.
///
/// Get-or-create semantics: asking for the same name twice returns the
/// same handle, so independent components can share a metric without
/// coordinating registration order.
pub struct Registry {
    enabled: bool,
    inner: Mutex<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .field("counters", &inner.counters.len())
            .field("gauges", &(inner.gauges.len() + inner.gauge_fns.len()))
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An enabled registry: handles record.
    pub fn new() -> Registry {
        Registry {
            enabled: true,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// A disabled registry: handles are branch-predicted no-ops. This is
    /// the "observability off" arm of experiment E13.
    pub fn disabled() -> Registry {
        Registry {
            enabled: false,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// Do handles from this registry record?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock();
        Arc::clone(inner.counters.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Counter {
                enabled: self.enabled,
                value: AtomicU64::new(0),
            })
        }))
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock();
        Arc::clone(inner.gauges.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Gauge {
                enabled: self.enabled,
                bits: AtomicU64::new(0f64.to_bits()),
            })
        }))
    }

    /// Register (or replace) a pull-style gauge evaluated at
    /// render/snapshot time — the bridge for pre-existing atomics.
    pub fn gauge_fn(&self, name: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        self.inner.lock().gauge_fns.insert(name.to_string(), Box::new(f));
    }

    /// Get-or-create the histogram `name` over `[lo, hi)` with `nbins`
    /// uniform bins. The range of the first registration wins.
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, nbins: usize) -> Arc<HistogramHandle> {
        let mut inner = self.inner.lock();
        Arc::clone(inner.histograms.entry(name.to_string()).or_insert_with(|| {
            Arc::new(HistogramHandle {
                enabled: self.enabled,
                state: Mutex::new(HistogramState {
                    hist: Histogram::new(lo, hi, nbins),
                    sum: 0.0,
                }),
            })
        }))
    }

    /// A latency histogram with the standard range: 0..10s in 10ms bins,
    /// matching the engine's capture→process histogram.
    pub fn latency_histogram(&self, name: &str) -> Arc<HistogramHandle> {
        self.histogram(name, 0.0, 10_000.0, 1_000)
    }

    /// Copy out every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        let mut gauges: BTreeMap<String, f64> = inner
            .gauges
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect();
        for (k, f) in &inner.gauge_fns {
            gauges.insert(k.clone(), f());
        }
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges,
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.stats()))
                .collect(),
        }
    }

    /// Render the Prometheus-style text exposition: `# TYPE` headers plus
    /// one sample line per value, names sorted within each kind so the
    /// output is deterministic (and golden-testable).
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &snap.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_f64(*v)));
        }
        for (name, h) in &snap.histograms {
            out.push_str(&format!("# TYPE {name} summary\n"));
            if let Some(p50) = h.p50 {
                out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", fmt_f64(p50)));
            }
            if let Some(p99) = h.p99 {
                out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", fmt_f64(p99)));
            }
            out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum)));
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_saturated {}\n", u64::from(h.saturated)));
        }
        out
    }
}

/// Normalize a text exposition for golden comparison: keep `# TYPE`
/// lines verbatim and replace each sample line's value with `V`, so
/// wall-clock-derived numbers don't churn fixtures. The set of metric
/// names, their kinds, and their order stay pinned. Shared by the
/// in-process exposition golden and the HTTP `/metrics` parity test.
pub fn normalize_exposition(exposition: &str) -> String {
    let mut out = String::new();
    for line in exposition.lines() {
        if line.starts_with("# ") {
            out.push_str(line);
        } else if let Some(idx) = line.rfind(' ') {
            out.push_str(&line[..idx]);
            out.push_str(" V");
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Format a per-second rate: two decimals, trailing zeros trimmed.
fn fmt_per_sec(v: f64) -> String {
    let s = format!("{v:.2}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Format an `f64` sample value: shortest round-trip form.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A point-in-time copy of every metric in a [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (including pull-style gauges).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramStats>,
}

impl Snapshot {
    /// Render the per-second rates between `earlier` and `self`, given
    /// the elapsed wall time — the periodic "rates" view for examples
    /// and the bench harness. Counters absent from `earlier` count from
    /// zero; lines are sorted by name.
    pub fn rates_since(&self, earlier: &Snapshot, elapsed_ms: i64) -> String {
        let secs = (elapsed_ms.max(1) as f64) / 1_000.0;
        let mut out = String::new();
        for (name, cur) in &self.counters {
            let prev = earlier.counters.get(name).copied().unwrap_or(0);
            let delta = cur.saturating_sub(prev);
            out.push_str(&format!("{name} {}/s\n", fmt_per_sec(delta as f64 / secs)));
        }
        for (name, cur) in &self.histograms {
            let prev = earlier.histograms.get(name).map_or(0, |h| h.count);
            let delta = cur.count.saturating_sub(prev);
            out.push_str(&format!(
                "{name}_count {}/s\n",
                fmt_per_sec(delta as f64 / secs)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_when_enabled() {
        let r = Registry::new();
        let c = r.counter("evdb_test_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same cell.
        assert_eq!(r.counter("evdb_test_total").get(), 5);

        let g = r.gauge("evdb_test_depth");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn disabled_registry_ignores_updates() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("evdb_test_total");
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = r.gauge("evdb_test_depth");
        g.set(9.0);
        assert_eq!(g.get(), 0.0);
        let h = r.latency_histogram("evdb_test_ms");
        h.observe(5.0);
        assert_eq!(h.stats().count, 0);
    }

    #[test]
    fn gauge_fn_bridges_external_state() {
        let r = Registry::new();
        let external = Arc::new(AtomicU64::new(7));
        let e2 = Arc::clone(&external);
        r.gauge_fn("evdb_bridge", move || e2.load(Ordering::Relaxed) as f64);
        assert_eq!(r.snapshot().gauges["evdb_bridge"], 7.0);
        external.store(9, Ordering::Relaxed);
        assert_eq!(r.snapshot().gauges["evdb_bridge"], 9.0);
    }

    #[test]
    fn histogram_tracks_sum_count_and_saturation() {
        let r = Registry::new();
        let h = r.histogram("evdb_test_ms", 0.0, 100.0, 10);
        for _ in 0..99 {
            h.observe(10.0);
        }
        h.observe(500.0); // past the cap
        let s = h.stats();
        assert_eq!(s.count, 100);
        assert!(s.saturated);
        assert_eq!(s.sum, 99.0 * 10.0 + 500.0);
        assert_eq!(s.p99, Some(100.0)); // clamped to the cap, not a midpoint
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("evdb_b_total").inc();
        r.counter("evdb_a_total").add(2);
        r.gauge("evdb_depth").set(3.0);
        r.histogram("evdb_lat_ms", 0.0, 10.0, 10).observe(4.0);
        let text = r.render();
        let a = text.find("evdb_a_total 2").unwrap();
        let b = text.find("evdb_b_total 1").unwrap();
        assert!(a < b, "counters must render name-sorted");
        assert!(text.contains("# TYPE evdb_depth gauge\nevdb_depth 3\n"));
        assert!(text.contains("# TYPE evdb_lat_ms summary"));
        assert!(text.contains("evdb_lat_ms{quantile=\"0.5\"}"));
        assert!(text.contains("evdb_lat_ms_count 1"));
        assert!(text.contains("evdb_lat_ms_saturated 0"));
        assert_eq!(text, r.render(), "rendering must be deterministic");
    }

    #[test]
    fn rates_view_diffs_counters_per_second() {
        let r = Registry::new();
        let c = r.counter("evdb_events_total");
        c.add(10);
        let before = r.snapshot();
        c.add(30);
        let after = r.snapshot();
        let rates = after.rates_since(&before, 2_000);
        assert!(rates.contains("evdb_events_total 15/s"), "got: {rates}");
    }
}
