//! Criterion microbench for E5: per-event cost of windowed aggregation
//! in both modes, and of the stateless operators.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evdb_bench::workloads::{market_ticks, tick_schema};
use evdb_cq::aggregate::{AggFunc, AggMode, AggSpec, WindowAggregateOp};
use evdb_cq::op::{FilterOp, Operator};
use evdb_cq::window::WindowSpec;
use evdb_types::{Event, EventId};

fn events(n: usize) -> Vec<Event> {
    let schema = tick_schema();
    market_ticks(n, 16, 1, 51)
        .iter()
        .enumerate()
        .map(|(i, t)| Event::new(EventId(i as u64), "ticks", t.ts, t.record(), Arc::clone(&schema)))
        .collect()
}

fn bench_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_window_aggregate");
    let evs = events(4_096);
    let aggs = || {
        vec![
            AggSpec { func: AggFunc::Count, field: None, expr: None, out_name: "n".into() },
            AggSpec { func: AggFunc::Avg, field: Some("px".into()), expr: None, out_name: "a".into() },
        ]
    };
    for (label, mode) in [("incremental", AggMode::Incremental), ("recompute", AggMode::Recompute)] {
        g.bench_with_input(
            BenchmarkId::new("sliding_10s_slide_1s", label),
            &mode,
            |b, mode| {
                let mut op = WindowAggregateOp::new(
                    &tick_schema(),
                    WindowSpec::Sliding { width_ms: 10_000, slide_ms: 1_000 },
                    &["sym"],
                    aggs(),
                    *mode,
                )
                .unwrap();
                let mut out = Vec::new();
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % evs.len();
                    op.on_event(&evs[i], &mut out).unwrap();
                    if i.is_multiple_of(512) {
                        op.on_watermark(evs[i].timestamp, &mut out).unwrap();
                        out.clear();
                    }
                });
            },
        );
    }
    g.finish();
}

fn bench_stateless(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_stateless_ops");
    let evs = events(4_096);
    let schema = tick_schema();
    g.bench_function("filter/selective", |b| {
        let mut f = FilterOp::new(
            evdb_expr::parse("px > 100 AND sym = 'S3'")
                .unwrap()
                .bind_predicate(&schema)
                .unwrap(),
            Arc::clone(&schema),
        );
        let mut out = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % evs.len();
            out.clear();
            f.on_event(&evs[i], &mut out).unwrap();
            out.len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_aggregate, bench_stateless);
criterion_main!(benches);
