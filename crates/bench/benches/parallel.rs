//! Criterion bench for E11: end-to-end pump throughput, sequential vs
//! sharded, on the staged multi-stream and keyed hot-stream workloads.
//! Each iteration builds a staged server and drains it completely, so
//! the measured unit is "process N staged events through the chosen
//! pump mode" (routing + evaluation + merge included).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evdb_bench::experiments::e11_parallel::{drive, keyed_stream_server, multi_stream_server};
use evdb_core::PumpMode;

const N: usize = 2_000;

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_pump");
    g.sample_size(10);

    for (name, mode) in [
        ("seq", PumpMode::Sequential),
        ("shard-2", PumpMode::Sharded { workers: 2 }),
        ("shard-4", PumpMode::Sharded { workers: 4 }),
    ] {
        g.bench_function(BenchmarkId::new("multi_stream", name), |b| {
            b.iter(|| {
                let server = multi_stream_server(N, 7);
                drive(&server, N, mode)
            });
        });
        g.bench_function(BenchmarkId::new("keyed_hot_stream", name), |b| {
            b.iter(|| {
                let server = keyed_stream_server(N, 7);
                drive(&server, N, mode)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
