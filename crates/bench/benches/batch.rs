//! Criterion microbench for E19/D15: batched vs per-event dispatch on
//! the hot path — the bare batch VM (`matches_batch`) over the E15
//! predicate families, and the indexed matcher's rule-major
//! `match_batch` over its candidate-verification workload.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evdb_bench::experiments::e15_compiled::{order_events, order_rules, order_schema};
use evdb_expr::{parse, BatchScratch, CompiledExpr};
use evdb_rules::{IndexedMatcher, MatchScratch, Matcher, Rule, VerifyMode};
use evdb_types::Record;

/// Rows per batch call — the pipeline's working unit (as in E19).
const BATCH: usize = 256;

const FAMILIES: &[(&str, &str)] = &[
    (
        "numeric",
        "px BETWEEN 80 AND 220 AND qty > 150 AND qty <= 900",
    ),
    (
        "string_like",
        "venue LIKE '%limit%' OR venue LIKE '%iceberg%'",
    ),
    (
        "mixed",
        "qty BETWEEN 100 AND 900 AND px * 1.5 + 10 > 60 AND venue LIKE '%sweep%'",
    ),
];

fn bench_eval_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("e19_eval_batch");
    let s = order_schema();
    let evs = order_events(4_096, 8, 83);
    for (family, predicate) in FAMILIES {
        let compiled = CompiledExpr::compile(&parse(predicate).unwrap().bind_predicate(&s).unwrap());
        g.bench_with_input(
            BenchmarkId::new("per_event", family),
            &compiled,
            |b, compiled| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % evs.len();
                    compiled.matches(&evs[i]).unwrap()
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("batched", family),
            &compiled,
            |b, compiled| {
                let mut scratch = BatchScratch::default();
                let mut out = Vec::new();
                let mut i = 0usize;
                // One BATCH-row chunk per iteration; per-event cost is
                // the reported time divided by BATCH.
                b.iter(|| {
                    let chunk = &evs[(i * BATCH) % (evs.len() - BATCH)..][..BATCH];
                    i += 1;
                    compiled.matches_batch(chunk, |r| r, &mut scratch, &mut out);
                    out.iter().filter(|r| matches!(r, Ok(true))).count()
                });
            },
        );
    }
    g.finish();
}

fn bench_match_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("e19_match_batch");
    let s = order_schema();
    let evs = order_events(4_096, 8, 83);
    let refs: Vec<&Record> = evs.iter().collect();
    let mut matcher = IndexedMatcher::new(Arc::clone(&s));
    for (i, r) in order_rules(1_000, 8, 29).into_iter().enumerate() {
        matcher.add_rule(Rule::new(i as u64, "", r)).unwrap();
    }
    matcher.set_verify_mode(VerifyMode::Compiled);
    g.bench_function("per_record", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % evs.len();
            matcher.match_record(&evs[i]).unwrap().len()
        });
    });
    g.bench_function("batched", |b| {
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            let chunk = &refs[(i * BATCH) % (refs.len() - BATCH)..][..BATCH];
            i += 1;
            matcher.match_batch(chunk, &mut scratch, &mut out);
            out.iter().map(|r| r.as_ref().unwrap().len()).sum::<usize>()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_eval_batch, bench_match_batch);
criterion_main!(benches);
