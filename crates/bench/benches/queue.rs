//! Criterion microbench for E2: enqueue/dequeue cost, client vs
//! internal path, and fan-out cost per extra consumer group.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use evdb_queue::{QueueConfig, QueueManager};
use evdb_storage::{Database, DbOptions};
use evdb_types::{DataType, Record, Schema, Value};

fn setup(groups: usize) -> (Arc<Database>, QueueManager) {
    let db = Database::in_memory(DbOptions::default()).unwrap();
    let q = QueueManager::attach(Arc::clone(&db)).unwrap();
    q.create_queue(
        "q",
        Schema::of(&[("x", DataType::Int)]),
        QueueConfig::default(),
    )
    .unwrap();
    for g in 0..groups {
        q.subscribe("q", &format!("g{g}")).unwrap();
    }
    (db, q)
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_queue");

    for groups in [1usize, 4] {
        g.bench_function(format!("enqueue/groups_{groups}"), |b| {
            let (_db, q) = setup(groups);
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                q.enqueue("q", Record::from_iter([Value::Int(i)]), "bench")
                    .unwrap()
            });
        });
    }

    g.bench_function("enqueue_internal/batch_64", |b| {
        let (db, q) = setup(1);
        let mut i = 0i64;
        b.iter(|| {
            let mut tx = db.begin();
            let mut hs = Vec::with_capacity(64);
            for _ in 0..64 {
                i += 1;
                hs.push(
                    q.enqueue_internal(&mut tx, "q", Record::from_iter([Value::Int(i)]), "eng")
                        .unwrap(),
                );
            }
            tx.commit().unwrap();
            for h in hs {
                q.complete_internal(h);
            }
        });
    });

    g.bench_function("dequeue_ack/batch_16", |b| {
        let (_db, q) = setup(1);
        // Keep a standing backlog so dequeue always finds work.
        for i in 0..50_000i64 {
            q.enqueue("q", Record::from_iter([Value::Int(i)]), "bench")
                .unwrap();
        }
        b.iter(|| {
            let ds = q.dequeue("q", "g0", 16).unwrap();
            for d in &ds {
                q.ack(d).unwrap();
            }
            ds.len()
        });
    });

    g.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
