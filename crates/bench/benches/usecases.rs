//! Criterion microbench for E9: per-event cost of the full EventServer
//! ingest path under the finance and utilities pipelines.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use evdb_analytics::detector::UpdatePolicy;
use evdb_analytics::SeasonalNaiveModel;
use evdb_bench::workloads::{market_ticks, tick_schema};
use evdb_core::server::ServerConfig;
use evdb_core::EventServer;
use evdb_types::{DataType, Record, Schema, Value};

fn bench_usecases(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_ingest");

    g.bench_function("finance/cql+rules", |b| {
        let server = EventServer::in_memory(ServerConfig::default()).unwrap();
        server.create_stream("ticks", tick_schema()).unwrap();
        server
            .register_cql(
                "vwap",
                "SELECT sym, avg(px) AS apx FROM ticks [RANGE 1 s] GROUP BY sym",
            )
            .unwrap();
        server
            .add_alert_rule("spike", "ticks", "px > 10000", 1.0, Some("sym"))
            .unwrap();
        let ticks = market_ticks(4_096, 16, 1, 91);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ticks.len();
            let t = &ticks[i];
            server.ingest("ticks", t.ts, t.record()).unwrap()
        });
    });

    g.bench_function("utilities/per_meter_detector", |b| {
        let server = EventServer::in_memory(ServerConfig::default()).unwrap();
        server
            .create_stream(
                "meters",
                Schema::of(&[("meter", DataType::Str), ("kw", DataType::Float)]),
            )
            .unwrap();
        server
            .add_detector(
                "load",
                "meters",
                "kw",
                Some("meter"),
                UpdatePolicy::Always,
                || Box::new(SeasonalNaiveModel::new(96, 3.0, 4.0)),
            )
            .unwrap();
        let meters: Vec<Arc<str>> = (0..8).map(|m| Arc::from(format!("m{m}"))).collect();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let payload = Record::from_iter([
                Value::Str(Arc::clone(&meters[(i % 8) as usize])),
                Value::Float(50.0 + (i % 96) as f64),
            ]);
            server
                .ingest("meters", evdb_types::TimestampMs(i as i64 * 1000), payload)
                .unwrap()
        });
    });

    g.finish();
}

criterion_group!(benches, bench_usecases);
criterion_main!(benches);
