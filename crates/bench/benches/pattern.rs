//! Criterion microbench for E6: NFA vs naive pattern matching per event,
//! across skip strategies.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evdb_bench::workloads::{kind_events, kind_schema};
use evdb_cq::pattern::{NaiveMatcher, Pattern, PatternMatcher, SkipStrategy, Step};
use evdb_expr::parse;
use evdb_types::{Event, EventId};

fn pattern(within_ms: i64) -> Pattern {
    Pattern::new(
        vec![
            Step::new("a", parse("kind = 'A' AND v > 90").unwrap()),
            Step::new("b", parse("kind = 'B' AND v > 90").unwrap()),
            Step::new("c", parse("kind = 'C' AND v > 90").unwrap()),
        ],
        within_ms,
    )
    .unwrap()
}

fn events(n: usize) -> Vec<Event> {
    let schema = kind_schema();
    kind_events(n, 10, 61)
        .into_iter()
        .enumerate()
        .map(|(i, (ts, rec))| Event::new(EventId(i as u64), "s", ts, rec, Arc::clone(&schema)))
        .collect()
}

fn bench_pattern(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_pattern");
    let evs = events(8_192);

    for within in [500i64, 5_000] {
        for strategy in [SkipStrategy::SkipTillNext, SkipStrategy::SkipTillAny] {
            g.bench_with_input(
                BenchmarkId::new(format!("nfa_{strategy:?}"), within),
                &within,
                |b, &w| {
                    let mut m =
                        PatternMatcher::new(pattern(w), &kind_schema(), strategy).unwrap();
                    let mut i = 0usize;
                    b.iter(|| {
                        i = (i + 1) % evs.len();
                        m.push(&evs[i]).unwrap().len()
                    });
                },
            );
        }
        g.bench_with_input(BenchmarkId::new("naive", within), &within, |b, &w| {
            let mut m = NaiveMatcher::new(&pattern(w), &kind_schema()).unwrap();
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % evs.len();
                m.push(&evs[i]).unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pattern);
criterion_main!(benches);
