//! Criterion microbench for E7: the internal-vs-client fast-path claims,
//! at per-operation granularity.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use evdb_bench::workloads::{market_ticks, tick_rules, tick_schema};
use evdb_queue::{QueueConfig, QueueManager};
use evdb_rules::{Broker, IndexedMatcher, Matcher, Rule};
use evdb_storage::{Database, DbOptions};
use evdb_types::{DataType, Record, Schema, Value};

fn bench_internal(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_internal_paths");

    // Client vs internal enqueue (single message granularity).
    let mk = || {
        let db = Database::in_memory(DbOptions::default()).unwrap();
        let q = QueueManager::attach(Arc::clone(&db)).unwrap();
        q.create_queue(
            "q",
            Schema::of(&[("x", DataType::Int)]),
            QueueConfig::default(),
        )
        .unwrap();
        q.subscribe("q", "g").unwrap();
        (db, q)
    };
    g.bench_function("enqueue/client_path", |b| {
        let (_db, q) = mk();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            q.enqueue("q", Record::from_iter([Value::Int(i)]), "cli").unwrap()
        });
    });
    g.bench_function("enqueue/internal_path_txn_of_1", |b| {
        let (db, q) = mk();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            let mut tx = db.begin();
            let h = q
                .enqueue_internal(&mut tx, "q", Record::from_iter([Value::Int(i)]), "eng")
                .unwrap();
            tx.commit().unwrap();
            q.complete_internal(h);
        });
    });

    // External (broker publish) vs internal (direct matcher) evaluation.
    let rules = tick_rules(5_000, 64, 0.05, 72);
    let events: Vec<Record> = market_ticks(256, 64, 1, 71)
        .iter()
        .map(|t| t.record())
        .collect();
    let broker = Broker::new();
    broker.create_topic("ticks", tick_schema()).unwrap();
    let mut matcher = IndexedMatcher::new(tick_schema());
    for (i, r) in rules.into_iter().enumerate() {
        broker.subscribe("ticks", &format!("s{i}"), r.clone()).unwrap();
        matcher.add_rule(Rule::new(i as u64, "", r)).unwrap();
    }
    let mut i = 0usize;
    g.bench_function("evaluate/external_broker", |b| {
        b.iter(|| {
            i = (i + 1) % events.len();
            broker.publish("ticks", &events[i]).unwrap().matched_subscriptions.len()
        });
    });
    g.bench_function("evaluate/internal_matcher", |b| {
        b.iter(|| {
            i = (i + 1) % events.len();
            matcher.match_record(&events[i]).unwrap().len()
        });
    });

    g.finish();
}

criterion_group!(benches, bench_internal);
criterion_main!(benches);
