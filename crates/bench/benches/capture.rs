//! Criterion microbench for E1: per-row write cost under each capture
//! mechanism, and per-event capture cost for the asynchronous ones.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use evdb_storage::{Database, DbOptions, JournalMiner, QuerySnapshot, TriggerOps, TriggerTiming};
use evdb_types::{DataType, Record, Schema, Value};

fn db() -> Arc<Database> {
    let db = Database::in_memory(DbOptions::default()).unwrap();
    db.create_table(
        "t",
        Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
        "id",
    )
    .unwrap();
    db
}

fn bench_capture(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_capture");

    g.bench_function("insert/no_capture", |b| {
        let db = db();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            db.insert("t", Record::from_iter([Value::Int(i), Value::Float(1.0)]))
                .unwrap()
        });
    });

    g.bench_function("insert/with_trigger", |b| {
        let db = db();
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        db.create_trigger(
            "cap",
            "t",
            TriggerTiming::After,
            TriggerOps::ALL,
            None,
            Arc::new(move |_| {
                n2.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }),
        )
        .unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            db.insert("t", Record::from_iter([Value::Int(i), Value::Float(1.0)]))
                .unwrap()
        });
    });

    g.bench_function("journal_mine/1000_rows", |b| {
        b.iter_batched(
            || {
                let db = db();
                let miner = JournalMiner::from_now(&db);
                for i in 0..1_000i64 {
                    db.insert("t", Record::from_iter([Value::Int(i), Value::Float(1.0)]))
                        .unwrap();
                }
                (db, miner)
            },
            |(db, mut miner)| miner.poll(&db).unwrap().len(),
            BatchSize::SmallInput,
        );
    });

    g.bench_function("query_poll/1000_row_table", |b| {
        let db = db();
        for i in 0..1_000i64 {
            db.insert("t", Record::from_iter([Value::Int(i), Value::Float(1.0)]))
                .unwrap();
        }
        let mut snap = QuerySnapshot::new("t", evdb_expr::Expr::lit(true));
        snap.poll(&db).unwrap(); // initial fill
        let mut next = 1_000i64;
        b.iter(|| {
            // One change per poll: cost is dominated by the re-scan.
            db.insert("t", Record::from_iter([Value::Int(next), Value::Float(1.0)]))
                .unwrap();
            next += 1;
            snap.poll(&db).unwrap().len()
        });
    });

    g.finish();
}

criterion_group!(benches, bench_capture);
criterion_main!(benches);
