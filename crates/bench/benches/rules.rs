//! Criterion microbenches for E3/E4: match cost vs rule count for both
//! matchers, and incremental update cost for the indexed matcher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evdb_bench::workloads::{market_ticks, tick_rules, tick_schema};
use evdb_rules::{IndexedMatcher, Matcher, Rule, ScanMatcher};

fn bench_match(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_match");
    let events: Vec<evdb_types::Record> = market_ticks(256, 64, 1, 11)
        .iter()
        .map(|t| t.record())
        .collect();

    for nrules in [100usize, 1_000, 10_000] {
        let rules = tick_rules(nrules, 64, 0.05, 21);
        let mut scan = ScanMatcher::new(tick_schema());
        let mut idx = IndexedMatcher::new(tick_schema());
        for (i, r) in rules.into_iter().enumerate() {
            scan.add_rule(Rule::new(i as u64, "", r.clone())).unwrap();
            idx.add_rule(Rule::new(i as u64, "", r)).unwrap();
        }
        let mut cursor = 0usize;
        g.bench_with_input(BenchmarkId::new("scan", nrules), &nrules, |b, _| {
            b.iter(|| {
                cursor = (cursor + 1) % events.len();
                scan.match_record(&events[cursor]).unwrap().len()
            })
        });
        g.bench_with_input(BenchmarkId::new("indexed", nrules), &nrules, |b, _| {
            b.iter(|| {
                cursor = (cursor + 1) % events.len();
                idx.match_record(&events[cursor]).unwrap().len()
            })
        });
    }
    g.finish();
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_churn");
    let base = 10_000usize;
    let rules = tick_rules(base, 64, 0.05, 31);
    let fresh = tick_rules(4_096, 64, 0.05, 32);

    g.bench_function("indexed_add_remove/10k_resident", |b| {
        let mut m = IndexedMatcher::new(tick_schema());
        for (i, r) in rules.iter().enumerate() {
            m.add_rule(Rule::new(i as u64, "", r.clone())).unwrap();
        }
        let mut next = base as u64;
        let mut oldest = 0u64;
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % fresh.len();
            m.add_rule(Rule::new(next, "", fresh[k].clone())).unwrap();
            m.remove_rule(oldest).unwrap();
            next += 1;
            oldest += 1;
        });
    });

    g.bench_function("broker_subscribe_unsubscribe/1k_topic", |b| {
        let broker = evdb_rules::Broker::new();
        broker.create_topic("t", tick_schema()).unwrap();
        let mut ids = std::collections::VecDeque::new();
        for r in tick_rules(1_000, 64, 0.05, 33) {
            ids.push_back(broker.subscribe("t", "s", r).unwrap());
        }
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % fresh.len();
            let id = broker.subscribe("t", "s", fresh[k].clone()).unwrap();
            ids.push_back(id);
            let old = ids.pop_front().unwrap();
            broker.unsubscribe("t", old).unwrap();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_match, bench_churn);
criterion_main!(benches);
