//! Criterion microbench for E15/D11: per-event predicate evaluation
//! cost, tree-walking interpreter vs compiled bytecode, on the three
//! predicate families candidate verification actually sees — pure
//! numeric, string/LIKE-heavy, and mixed arithmetic+LIKE.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evdb_expr::{parse, BoundExpr, CompiledExpr};
use evdb_types::{DataType, Record, Schema, Value};

fn schema() -> Arc<Schema> {
    Schema::of(&[
        ("sym", DataType::Str),
        ("px", DataType::Float),
        ("qty", DataType::Int),
        ("venue", DataType::Str),
    ])
}

fn events(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::from_iter([
                Value::from(format!("S{}", i % 16).as_str()),
                Value::Float(10.0 + (i % 490) as f64),
                Value::Int((i % 999) as i64 + 1),
                Value::from(
                    format!(
                        "route{:04}-ecn-{}-crossnet-depth{:03}-venue",
                        i % 7919,
                        if i % 4 == 0 { "limit" } else { "market" },
                        i % 997,
                    )
                    .as_str(),
                ),
            ])
        })
        .collect()
}

const FAMILIES: &[(&str, &str)] = &[
    (
        "numeric",
        "px BETWEEN 80 AND 220 AND qty > 150 AND qty <= 900",
    ),
    (
        "string_like",
        "venue LIKE '%limit%' OR venue LIKE '%iceberg%'",
    ),
    (
        "mixed",
        "qty BETWEEN 100 AND 900 AND px * 1.5 + 10 > 60 AND venue LIKE '%sweep%'",
    ),
];

fn bench_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_expr_eval");
    let s = schema();
    let evs = events(4_096);
    for (family, predicate) in FAMILIES {
        let bound: BoundExpr = parse(predicate).unwrap().bind_predicate(&s).unwrap();
        let compiled = CompiledExpr::compile(&bound);
        g.bench_with_input(
            BenchmarkId::new("interpreted", family),
            &bound,
            |b, bound| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % evs.len();
                    bound.matches(&evs[i]).unwrap()
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("compiled", family),
            &compiled,
            |b, compiled| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % evs.len();
                    compiled.matches(&evs[i]).unwrap()
                });
            },
        );
    }
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_expr_compile");
    let s = schema();
    for (family, predicate) in FAMILIES {
        let bound: BoundExpr = parse(predicate).unwrap().bind_predicate(&s).unwrap();
        g.bench_with_input(BenchmarkId::new("compile", family), &bound, |b, bound| {
            b.iter(|| CompiledExpr::compile(bound).inst_count());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eval, bench_compile);
criterion_main!(benches);
