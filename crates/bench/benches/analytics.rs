//! Criterion microbench for E8: per-observation cost of the online
//! statistics and expectation models.

use criterion::{criterion_group, criterion_main, Criterion};
use evdb_analytics::{
    ControlChartModel, DeviationDetector, Ewma, EwmaForecastModel, ExpectationModel, Histogram,
    HoltTrendModel, P2Quantile, SeasonalNaiveModel, ThresholdModel, Welford,
};
use evdb_types::TimestampMs;

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_online_stats");
    g.bench_function("welford/observe", |b| {
        let mut w = Welford::new();
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.0;
            w.observe(x % 100.0);
            w.mean()
        });
    });
    g.bench_function("ewma/observe", |b| {
        let mut e = Ewma::new(0.3);
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.0;
            e.observe(x % 100.0);
            e.value()
        });
    });
    g.bench_function("p2_quantile/observe", |b| {
        let mut p = P2Quantile::new(0.99);
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x * 1.3 + 7.7) % 1000.0;
            p.observe(x);
            p.value()
        });
    });
    g.bench_function("histogram/observe", |b| {
        let mut h = Histogram::new(0.0, 1000.0, 100);
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x * 1.3 + 7.7) % 1200.0;
            h.observe(x);
        });
    });
    g.finish();
}

type ModelFactory = Box<dyn Fn() -> Box<dyn ExpectationModel>>;

fn bench_detectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_detectors");
    let models: Vec<(&str, ModelFactory)> = vec![
        ("threshold", Box::new(|| Box::new(ThresholdModel::new(0.0, 100.0)))),
        ("control_chart", Box::new(|| Box::new(ControlChartModel::new(3.0, 30)))),
        ("ewma", Box::new(|| Box::new(EwmaForecastModel::new(0.3, 3.0, 1.0, 10)))),
        ("holt", Box::new(|| Box::new(HoltTrendModel::new(0.4, 0.1, 3.0, 1.0, 10)))),
        ("seasonal", Box::new(|| Box::new(SeasonalNaiveModel::new(96, 3.0, 1.0)))),
    ];
    for (name, factory) in models {
        g.bench_function(format!("observe/{name}"), |b| {
            let mut det = DeviationDetector::new(factory());
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                det.observe(TimestampMs(i), 50.0 + (i % 7) as f64)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stats, bench_detectors);
criterion_main!(benches);
