//! Criterion microbench for E10: WAL replay cost per row and the
//! propagation round trip on a clean simulated link.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use evdb_dist::{LinkConfig, Node, QueueForwarder, SimNetwork};
use evdb_queue::QueueConfig;
use evdb_storage::{Database, DbOptions, SyncPolicy};
use evdb_types::{Clock, DataType, Record, Schema, SimClock, TimestampMs, Value};

fn seeded_dir(nrows: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "evdb-bench-recovery-{nrows}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let db = Database::open(
        &dir,
        DbOptions {
            sync: SyncPolicy::Never,
            ..Default::default()
        },
    )
    .unwrap();
    db.create_table(
        "t",
        Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
        "id",
    )
    .unwrap();
    for i in 0..nrows {
        db.insert(
            "t",
            Record::from_iter([Value::Int(i as i64), Value::Float(i as f64)]),
        )
        .unwrap();
    }
    dir
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_recovery");
    g.sample_size(10);
    for nrows in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("wal_replay", nrows), &nrows, |b, &n| {
            b.iter_batched(
                || seeded_dir(n),
                |dir| {
                    let db = Database::open(
                        &dir,
                        DbOptions {
                            sync: SyncPolicy::Never,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    let rows = db.table("t").unwrap().len();
                    drop(db);
                    let _ = std::fs::remove_dir_all(&dir);
                    rows
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_propagation");
    g.bench_function("round_trip/clean_link", |b| {
        let clock = SimClock::new(TimestampMs(0));
        let a = Node::new("a", clock.clone()).unwrap();
        let bn = Node::new("b", clock.clone()).unwrap();
        let schema = Schema::of(&[("x", DataType::Int)]);
        for node in [&a, &bn] {
            node.queues()
                .create_queue("q", Arc::clone(&schema), QueueConfig::default())
                .unwrap();
        }
        bn.queues().subscribe("q", "g").unwrap();
        let mut net = SimNetwork::new(LinkConfig::default(), 1);
        let mut fwd = QueueForwarder::new(&a, "q", "b", "q").unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            a.queues()
                .enqueue("q", Record::from_iter([Value::Int(i)]), "t")
                .unwrap();
            // One full round trip: pump, deliver, ack, consume.
            for _ in 0..3 {
                let now = clock.now();
                fwd.pump(&a, &mut net, now).unwrap();
                for pkt in net.poll(now) {
                    if QueueForwarder::is_data(&pkt) {
                        let ack = QueueForwarder::receive(&bn, &pkt).unwrap();
                        net.send(ack, now);
                    } else if fwd.owns_ack(&pkt) {
                        fwd.on_ack(&a, &pkt).unwrap();
                    }
                }
                clock.advance(10);
            }
            for d in bn.queues().dequeue("q", "g", 4).unwrap() {
                bn.queues().ack(&d).unwrap();
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_recovery, bench_propagation);
criterion_main!(benches);
