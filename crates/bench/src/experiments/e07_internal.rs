//! E7 — "Storing internally created messages; there are significant
//! opportunities for optimization" (§2.2.b.i.3) and "the evaluation of
//! internal data can significantly be optimized" (§2.2.c.iii).
//!
//! Two comparisons:
//!
//! 1. **Enqueue path**: client `enqueue` (validate + own transaction per
//!    message) vs engine `enqueue_internal` (trusted payload, batched
//!    into one transaction) — DESIGN.md D2.
//! 2. **Rule evaluation locus**: evaluating rules against *external*
//!    records presented one-by-one through the broker (schema validation
//!    per publish) vs *internal* evaluation directly on the indexed
//!    matcher inside the engine.

use std::sync::Arc;
use std::time::Instant;

use evdb_queue::{QueueConfig, QueueManager};
use evdb_rules::{Broker, Matcher};
use evdb_storage::{Database, DbOptions};
use evdb_types::{DataType, Schema, Value};

use super::{tmpdir, Scale, Table};
use crate::fmt_rate;
use crate::workloads::{market_ticks, tick_rules, tick_schema};

/// Durable queue database: the staging area the paper talks about is a
/// database table, so both paths pay for durability — per message on the
/// client path, per batch on the internal path.
fn fresh_queue() -> (std::path::PathBuf, Arc<Database>, QueueManager) {
    let dir = tmpdir("e07");
    let db = Database::open(&dir, DbOptions::default()).unwrap();
    let q = QueueManager::attach(Arc::clone(&db)).unwrap();
    q.create_queue(
        "q",
        Schema::of(&[("x", DataType::Int), ("y", DataType::Float)]),
        QueueConfig::default(),
    )
    .unwrap();
    q.subscribe("q", "g").unwrap();
    (dir, db, q)
}

/// Run E7.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(1_000, 20_000);
    let mut table = Table::new(
        "E7: internal fast paths — client vs engine message creation & evaluation",
        &["path", "ops/s", "speedup"],
    );

    // 1a. Client enqueue path.
    let (dir_a, _db, q) = fresh_queue();
    let payloads: Vec<evdb_types::Record> = (0..n)
        .map(|i| {
            evdb_types::Record::from_iter([Value::Int(i as i64), Value::Float(i as f64)])
        })
        .collect();
    let t0 = Instant::now();
    for p in &payloads {
        q.enqueue("q", p.clone(), "client").unwrap();
    }
    let client_rate = n as f64 / t0.elapsed().as_secs_f64();
    table.row(vec![
        "enqueue: client (validate + durable txn each)".into(),
        fmt_rate(client_rate),
        "1.0x".into(),
    ]);
    let _ = std::fs::remove_dir_all(&dir_a);

    // 1b. Internal enqueue path, batches of 128 in one transaction.
    let (dir_b, db, q) = fresh_queue();
    let t0 = Instant::now();
    for chunk in payloads.chunks(128) {
        let mut tx = db.begin();
        let mut pendings = Vec::with_capacity(chunk.len());
        for p in chunk {
            pendings.push(q.enqueue_internal(&mut tx, "q", p.clone(), "engine").unwrap());
        }
        tx.commit().unwrap();
        for pe in pendings {
            q.complete_internal(pe);
        }
    }
    let internal_rate = n as f64 / t0.elapsed().as_secs_f64();
    table.row(vec![
        "enqueue: internal (trusted, batched durable txn)".into(),
        fmt_rate(internal_rate),
        format!("{:.1}x", internal_rate / client_rate),
    ]);
    let _ = std::fs::remove_dir_all(&dir_b);

    // 2a. External evaluation: publish through the broker (validation +
    // topic indirection per record).
    let nrules = scale.pick(1_000, 10_000);
    let events: Vec<evdb_types::Record> = market_ticks(scale.pick(2_000, 20_000), 64, 1, 71)
        .iter()
        .map(|t| t.record())
        .collect();
    let broker = Broker::new();
    broker.create_topic("ticks", tick_schema()).unwrap();
    for (i, r) in tick_rules(nrules, 64, 0.05, 72).into_iter().enumerate() {
        broker
            .subscribe("ticks", &format!("sub{i}"), r)
            .unwrap();
    }
    let t0 = Instant::now();
    let mut hits = 0u64;
    for e in &events {
        hits += broker.publish("ticks", e).unwrap().matched_subscriptions.len() as u64;
    }
    let external_rate = events.len() as f64 / t0.elapsed().as_secs_f64();
    table.row(vec![
        "evaluate: external (broker publish)".into(),
        fmt_rate(external_rate),
        "1.0x".into(),
    ]);

    // 2b. Internal evaluation: straight to the matcher.
    let mut matcher = evdb_rules::IndexedMatcher::new(tick_schema());
    for (i, r) in tick_rules(nrules, 64, 0.05, 72).into_iter().enumerate() {
        matcher
            .add_rule(evdb_rules::Rule::new(i as u64, "", r))
            .unwrap();
    }
    let t0 = Instant::now();
    let mut hits2 = 0u64;
    for e in &events {
        hits2 += matcher.match_record(e).unwrap().len() as u64;
    }
    let internal_eval_rate = events.len() as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(hits, hits2, "same rules, same events, same matches");
    table.row(vec![
        "evaluate: internal (direct matcher)".into(),
        fmt_rate(internal_eval_rate),
        format!("{:.1}x", internal_eval_rate / external_rate),
    ]);

    table.note(format!("{n} durable messages (fsync-per-commit); {nrules} rules over {} events", events.len()));
    table.note("internal paths skip validation/marshalling and amortize transactions (D2)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_paths_win() {
        let t = run(Scale::Quick);
        let enq_speedup: f64 = t.rows[1][2].trim_end_matches('x').parse().unwrap();
        assert!(enq_speedup > 1.2, "enqueue speedup {enq_speedup}");
    }
}
