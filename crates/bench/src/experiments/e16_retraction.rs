//! E16 — speculation vs finality on out-of-order streams (DESIGN.md D12).
//!
//! Workload: a fixed tick stream (3 symbols, one event per 10 ms of
//! event time) pushed through the same tumbling-window aggregate at both
//! consistency levels, under three arrival-disorder distributions:
//!
//! * **none** — in-order arrival;
//! * **mild** — 10% of events delayed up to 1/4 of the allowed lateness;
//! * **heavy** — 50% of events delayed up to the full allowed lateness.
//!
//! Per arm we record the delta traffic (inserts, retractions, pane
//! reopens, late admissions/drops) and the **emission lag**: how far
//! stream time had advanced past a window's end when its result (or a
//! correction) was emitted. `EMIT SPECULATIVE` answers as soon as event
//! time passes the window end — at the cost of retractions under
//! disorder; `EMIT WATERMARK` always waits out the full lateness bound
//! but never retracts.
//!
//! Asserted at quick scale (CI): all six arms converge to the identical
//! compacted answer; watermark arms emit exactly zero retractions;
//! speculative arms balance exactly (`emitted == final + retracted`);
//! the heavy arm actually exercises revision (retractions > 0); and
//! speculative lag stays below watermark lag whenever lateness > 0.

use evdb_cq::aggregate::AggMode;
use evdb_cq::delta::{ConsistencyLevel, DeltaLog};
use evdb_cq::{compile_query, StreamRuntime};
use evdb_types::{DataType, Record, Schema, TimestampMs, Value};

use super::{Scale, Table};

const LATENESS_MS: i64 = 2_000;
const PERIOD_MS: i64 = 10;
const WIDTH_MS: i64 = 1_000;

/// Arrival-disorder distribution: (fraction delayed ‰, max delay ms).
#[derive(Clone, Copy)]
struct Disorder {
    name: &'static str,
    per_mille: u64,
    max_delay_ms: i64,
}

const DISTRIBUTIONS: [Disorder; 3] = [
    Disorder { name: "none", per_mille: 0, max_delay_ms: 0 },
    Disorder { name: "mild", per_mille: 100, max_delay_ms: LATENESS_MS / 4 },
    Disorder { name: "heavy", per_mille: 500, max_delay_ms: LATENESS_MS },
];

/// Deterministic xorshift so Quick/Full runs are reproducible.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The tick stream in arrival order: (event time, symbol, measure).
fn workload(n: usize, d: Disorder) -> Vec<(i64, u8, i64)> {
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut ticks: Vec<(i64, i64, u8, i64)> = (0..n)
        .map(|i| {
            let ts = i as i64 * PERIOD_MS;
            let delay = if d.per_mille > 0 && xorshift(&mut rng) % 1_000 < d.per_mille {
                (xorshift(&mut rng) % d.max_delay_ms.max(1) as u64) as i64
            } else {
                0
            };
            (ts + delay, ts, (i % 3) as u8, (i % 100) as i64)
        })
        .collect();
    ticks.sort_by_key(|(arrival, ts, _, _)| (*arrival, *ts));
    ticks.into_iter().map(|(_, ts, sym, x)| (ts, sym, x)).collect()
}

struct ArmResult {
    emitted: u64,
    retracted: u64,
    final_rows: usize,
    reopens: u64,
    late_admitted: u64,
    late_dropped: u64,
    /// Mean event-time ms between a window's end and the stream position
    /// at which its (insert) result was emitted.
    mean_lag_ms: f64,
    compacted: Vec<String>,
}

fn run_arm(feed: &[(i64, u8, i64)], level: ConsistencyLevel) -> ArmResult {
    let schema = Schema::of(&[("sym", DataType::Str), ("x", DataType::Float)]);
    let rt = StreamRuntime::new(LATENESS_MS);
    rt.create_stream("ticks", schema.clone()).unwrap();
    let emit = match level {
        ConsistencyLevel::Speculative => "SPECULATIVE",
        ConsistencyLevel::Watermark => "WATERMARK",
    };
    let cql = format!(
        "SELECT sym, window_end, count() AS n, sum(x) AS s \
         FROM ticks [RANGE {WIDTH_MS} ms] GROUP BY sym EMIT {emit}"
    );
    let pipeline = compile_query(&cql, &schema, AggMode::Incremental).unwrap();
    rt.register_query_with("q", "ticks", pipeline, level).unwrap();

    let mut log = DeltaLog::default();
    let mut lag_sum = 0i64;
    let mut lag_n = 0u64;
    let mut max_ts = i64::MIN;
    let mut observe = |outs: Vec<evdb_types::Event>, max_ts: i64, log: &mut DeltaLog| {
        for out in outs {
            if !out.is_retraction() {
                if let Some(Value::Timestamp(end)) = out.payload.get(1) {
                    lag_sum += (max_ts - end.0).max(0);
                    lag_n += 1;
                }
            }
            log.observe(&out);
        }
    };
    for (ts, sym, x) in feed {
        max_ts = max_ts.max(*ts);
        let payload = Record::from_iter([
            Value::from(format!("s{sym}").as_str()),
            Value::Float(*x as f64),
        ]);
        let outs = rt.push("ticks", TimestampMs(*ts), payload).unwrap();
        observe(outs, max_ts, &mut log);
    }
    let outs = rt.flush("ticks", TimestampMs(i64::MAX / 8)).unwrap();
    // Trailing flush is end-of-stream bookkeeping, not lag signal.
    for out in outs {
        log.observe(&out);
    }
    let stats = rt.cq_delta_stats();
    ArmResult {
        emitted: log.inserted(),
        retracted: log.retracted(),
        final_rows: log.len(),
        reopens: stats.pane_reopens,
        late_admitted: stats.late_admitted,
        late_dropped: stats.late_events,
        mean_lag_ms: if lag_n == 0 { 0.0 } else { lag_sum as f64 / lag_n as f64 },
        compacted: log.rows(),
    }
}

/// Run E16.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(4_000, 200_000);
    let mut table = Table::new(
        "E16: out-of-order — retraction rate and latency vs finality",
        &[
            "disorder",
            "level",
            "emitted",
            "retracted",
            "final",
            "retr_rate",
            "reopens",
            "late_adm",
            "late_drop",
            "lag_ms",
        ],
    );

    for d in DISTRIBUTIONS {
        let feed = workload(n, d);
        let mut reference: Option<Vec<String>> = None;
        for (label, level) in [
            ("watermark", ConsistencyLevel::Watermark),
            ("speculative", ConsistencyLevel::Speculative),
        ] {
            let r = run_arm(&feed, level);
            // Both levels converge to the same compacted answer — the
            // experiment's core claim, asserted on every run.
            match &reference {
                None => reference = Some(r.compacted.clone()),
                Some(want) => assert_eq!(
                    &r.compacted, want,
                    "levels diverged on the '{}' distribution",
                    d.name
                ),
            }
            assert_eq!(
                r.emitted,
                r.final_rows as u64 + r.retracted,
                "delta accounting must balance on {}/{label}",
                d.name
            );
            if level == ConsistencyLevel::Watermark {
                assert_eq!(r.retracted, 0, "watermark arm {} retracted", d.name);
            }
            table.row(vec![
                d.name.into(),
                label.into(),
                r.emitted.to_string(),
                r.retracted.to_string(),
                r.final_rows.to_string(),
                format!("{:.4}", r.retracted as f64 / r.emitted.max(1) as f64),
                r.reopens.to_string(),
                r.late_admitted.to_string(),
                r.late_dropped.to_string(),
                format!("{:.1}", r.mean_lag_ms),
            ]);
        }
    }
    table.note(format!(
        "{n} events, period {PERIOD_MS} ms, window {WIDTH_MS} ms, allowed lateness \
         {LATENESS_MS} ms; delays bounded by the lateness so nothing is dropped"
    ));
    table.note(
        "invariants (asserted): both levels converge to the identical compacted answer \
         per distribution; watermark arms emit zero retractions; emitted == final + retracted",
    );
    table.note(
        "lag_ms = mean event-time distance between a window's end and the stream position \
         at emission: speculation answers ~lateness earlier, paying in retractions",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_and_accounts_at_quick_scale() {
        let t = run(Scale::Quick); // run() itself asserts convergence/accounting
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let (disorder, level) = (row[0].as_str(), row[1].as_str());
            let retracted: u64 = row[3].parse().unwrap();
            let lag: f64 = row[9].parse().unwrap();
            if level == "watermark" {
                assert_eq!(retracted, 0, "{disorder}/watermark retracted");
                // Watermark output waits out the full lateness bound.
                assert!(lag >= LATENESS_MS as f64 * 0.9, "{disorder} lag {lag}");
            } else {
                // Speculation answers well before the lateness bound.
                assert!(lag < LATENESS_MS as f64 * 0.5, "{disorder} lag {lag}");
            }
            if disorder == "heavy" && level == "speculative" {
                assert!(retracted > 0, "heavy disorder must exercise revision");
            }
            if disorder == "none" {
                assert_eq!(retracted, 0, "in-order arrival never retracts");
            }
        }
    }

    #[test]
    fn disorder_distributions_are_bounded_by_lateness() {
        for d in DISTRIBUTIONS {
            let feed = workload(500, d);
            let mut sorted = feed.clone();
            sorted.sort_by_key(|(ts, _, _)| *ts);
            // Arrival displacement never exceeds the allowed lateness:
            // at any point the high-water mark minus the current event
            // time is at most max_delay.
            let mut max_ts = i64::MIN;
            for (ts, _, _) in &feed {
                max_ts = max_ts.max(*ts);
                assert!(max_ts - ts <= d.max_delay_ms.max(0));
            }
            if d.per_mille == 0 {
                assert_eq!(feed, sorted);
            }
        }
    }
}
