//! E6 — Pattern-occurrence events (§2.2.a.iii.2): the cost structure of
//! SEQ matching across WITHIN windows and selection strategies
//! (DESIGN.md D4).
//!
//! Two comparisons, same pattern `SEQ(A, B, C) WITHIN w` with
//! 10%-selective steps:
//!
//! * **all-matches semantics** — the NFA with `SkipTillAny` (which
//!   materializes every match) vs. the counting baseline (dynamic
//!   program that only *counts* subsequences). Both find identical
//!   counts. At small windows the NFA wins; at large windows **both**
//!   are dominated by match multiplicity (the `matches` column grows
//!   super-linearly), and the NFA additionally pays to materialize each
//!   match — enumeration is output-bound, no algorithm escapes that.
//! * **first-match semantics** — the NFA with `SkipTillNext`, the
//!   production CEP default. Its live-run count is bounded by pattern
//!   starts, so throughput stays flat as WITHIN grows: the *selection
//!   strategy*, not the window, is the scalability lever.

use std::time::Instant;

use evdb_cq::pattern::{NaiveMatcher, Pattern, PatternMatcher, SkipStrategy, Step};
use evdb_expr::parse;
use evdb_types::{Event, EventId};

use super::{Scale, Table};
use crate::fmt_rate;
use crate::workloads::{kind_events, kind_schema};

fn seq_abc(within_ms: i64) -> Pattern {
    Pattern::new(
        vec![
            Step::new("a", parse("kind = 'A' AND v > 90").unwrap()),
            Step::new("b", parse("kind = 'B' AND v > 90").unwrap()),
            Step::new("c", parse("kind = 'C' AND v > 90").unwrap()),
        ],
        within_ms,
    )
    .unwrap()
}

/// Run E6.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(5_000, 50_000);
    let schema = kind_schema();
    let events: Vec<Event> = kind_events(n, 10, 61)
        .into_iter()
        .enumerate()
        .map(|(i, (ts, rec))| {
            Event::new(EventId(i as u64), "s", ts, rec, std::sync::Arc::clone(&schema))
        })
        .collect();

    let mut table = Table::new(
        "E6: SEQ(A,B,C) WITHIN w — NFA strategies vs counting baseline",
        &[
            "within_ms",
            "nfa_any_evt/s",
            "count_base_evt/s",
            "nfa_next_evt/s",
            "all_matches",
            "next_matches",
        ],
    );
    let withins: Vec<i64> = match scale {
        Scale::Quick => vec![200, 1_000],
        Scale::Full => vec![200, 1_000, 5_000, 10_000],
    };
    for within in withins {
        let pattern = seq_abc(within);

        // All-matches NFA (materializes every match).
        let mut nfa_any =
            PatternMatcher::new(pattern.clone(), &schema, SkipStrategy::SkipTillAny).unwrap();
        nfa_any.max_runs = usize::MAX; // exact enumeration for the comparison
        let t0 = Instant::now();
        let mut any_matches = 0u64;
        for e in &events {
            any_matches += nfa_any.push(e).unwrap().len() as u64;
        }
        let any_rate = events.len() as f64 / t0.elapsed().as_secs_f64();

        // Counting baseline (same count, no materialization).
        let mut naive = NaiveMatcher::new(&pattern, &schema).unwrap();
        let t0 = Instant::now();
        let mut count_matches = 0u64;
        for e in &events {
            count_matches += naive.push(e).unwrap();
        }
        let count_rate = events.len() as f64 / t0.elapsed().as_secs_f64();
        assert_eq!(any_matches, count_matches, "matchers must agree");

        // First-match NFA (production CEP semantics): runs bounded by
        // pattern starts.
        let mut nfa_next =
            PatternMatcher::new(pattern.clone(), &schema, SkipStrategy::SkipTillNext).unwrap();
        let t0 = Instant::now();
        let mut next_matches = 0u64;
        for e in &events {
            next_matches += nfa_next.push(e).unwrap().len() as u64;
        }
        let next_rate = events.len() as f64 / t0.elapsed().as_secs_f64();

        table.row(vec![
            within.to_string(),
            fmt_rate(any_rate),
            fmt_rate(count_rate),
            fmt_rate(next_rate),
            any_matches.to_string(),
            next_matches.to_string(),
        ]);
    }
    table.note(format!(
        "{n} events, 4 kinds, 10ms spacing, 10%-selective steps"
    ));
    table.note("all-match enumeration is output-bound: the matches column explains both columns' decay");
    table.note("skip-till-next keeps runs ∝ starts — flat throughput as WITHIN grows (the D4 lever)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_baseline_agrees_and_next_stays_fast() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let matches: u64 = row[4].parse().unwrap();
            assert!(matches > 0, "workload should produce matches");
        }
        // First-match throughput must not collapse with the window the
        // way all-match enumeration does: compare decay factors.
        let rate = |s: &str| -> f64 { s.replace(',', "").parse().unwrap() };
        let any_decay = rate(&t.rows[0][1]) / rate(&t.rows[1][1]).max(1.0);
        let next_decay = rate(&t.rows[0][3]) / rate(&t.rows[1][3]).max(1.0);
        assert!(
            next_decay < any_decay * 1.5,
            "skip-till-next should degrade less: any {any_decay:.1} vs next {next_decay:.1}"
        );
    }
}
