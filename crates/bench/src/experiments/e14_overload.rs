//! E14 — overload behavior under admission control (DESIGN.md §D10).
//!
//! Workload: the E1 trigger-capture pipeline (single-row transactions
//! into a captured table, one alert rule) driven at ~2× the drain rate:
//! each round offers `2 × capacity` writes, then the pump drains at most
//! `capacity`. Arms:
//!
//! * **unloaded** — the reference rate: offers never exceed capacity, so
//!   no policy ever engages.
//! * **unbounded** — the pre-admission-control baseline (an effectively
//!   infinite buffer, no pump while producing): staged depth — memory —
//!   grows linearly with offered load.
//! * **block** — a real producer thread backpressured by the gate while
//!   the main thread pumps; everything is eventually evaluated.
//! * **reject** — overflow writes abort with `Error::Overloaded` and
//!   roll back; the survivors' goodput stays near the unloaded rate.
//! * **shed** — overflow writes succeed but their staged events are
//!   shed (equal priority ⇒ the newcomer), counted, never silent.
//!
//! Asserted at quick scale (CI): peak staged depth ≤ capacity under all
//! three policies, exact `offered == evaluated + shed + rejected`
//! accounting on every arm, and Shed/Reject goodput within a bounded
//! factor of the unloaded rate while the unbounded baseline's depth
//! grows linearly to `offered`.

use std::sync::Arc;
use std::time::Instant;

use evdb_core::server::ServerConfig;
use evdb_core::{CaptureMechanism, EventServer, OverloadPolicy};
use evdb_types::{DataType, Record, Schema, Value};

use super::{Scale, Table};
use crate::fmt_rate;

fn build_server(capacity: usize, overload: OverloadPolicy) -> EventServer {
    let server = EventServer::in_memory(ServerConfig {
        ingest_capacity: capacity,
        overload,
        ..Default::default()
    })
    .unwrap();
    server
        .db()
        .create_table(
            "t",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
            "id",
        )
        .unwrap();
    let stream = server.capture_table("t", CaptureMechanism::Trigger).unwrap();
    server
        .add_alert_rule("hot", &stream, "v > 0.9", 2.0, None)
        .unwrap();
    server
}

fn insert(server: &EventServer, id: i64) -> evdb_types::Result<()> {
    server
        .db()
        .insert(
            "t",
            Record::from_iter([Value::Int(id), Value::Float((id % 100) as f64 / 100.0)]),
        )
        .map(|_| ())
}

struct ArmResult {
    offered: u64,
    evaluated: u64,
    shed: u64,
    rejected: u64,
    peak: u64,
    secs: f64,
    /// Staged-depth samples at 1/4, 2/4, 3/4, 4/4 of the produce phase
    /// (unbounded arm only — the memory-growth curve).
    depth_samples: Vec<usize>,
    exposition: String,
}

fn finish(server: &EventServer, offered: u64, evaluated: u64, secs: f64) -> ArmResult {
    let ac = server.admission();
    ArmResult {
        offered,
        evaluated,
        shed: ac.shed_total(),
        rejected: ac.rejected_total(),
        peak: ac.peak_depth(),
        secs,
        depth_samples: Vec::new(),
        exposition: server.registry().render(),
    }
}

/// Reference: offers arrive in capacity-sized bursts the pump keeps up
/// with, so admission control never engages.
fn run_unloaded(capacity: usize, offered: u64) -> ArmResult {
    let server = build_server(capacity, OverloadPolicy::Block);
    let t0 = Instant::now();
    let mut evaluated = 0u64;
    let mut id = 0i64;
    while (id as u64) < offered {
        for _ in 0..capacity.min((offered - id as u64) as usize) {
            insert(&server, id).unwrap();
            id += 1;
        }
        evaluated += server.pump().unwrap().captured;
    }
    finish(&server, offered, evaluated, t0.elapsed().as_secs_f64())
}

/// The pre-D10 baseline: nothing drains while producers run, and the
/// staged buffer — memory — grows linearly with the offered load.
fn run_unbounded(offered: u64) -> ArmResult {
    let server = build_server(usize::MAX, OverloadPolicy::Block);
    let t0 = Instant::now();
    let mut depth_samples = Vec::new();
    for id in 0..offered as i64 {
        insert(&server, id).unwrap();
        if (id as u64 + 1).is_multiple_of((offered / 4).max(1)) {
            depth_samples.push(server.admission().depth());
        }
    }
    let evaluated = server.pump().unwrap().captured;
    let mut r = finish(&server, offered, evaluated, t0.elapsed().as_secs_f64());
    r.depth_samples = depth_samples;
    r
}

/// A real producer thread against the blocking gate; the main thread
/// pumps until everything offered has been evaluated.
fn run_block(capacity: usize, offered: u64) -> ArmResult {
    let server = Arc::new(build_server(capacity, OverloadPolicy::Block));
    let t0 = Instant::now();
    let producer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for id in 0..offered as i64 {
                insert(&server, id).unwrap();
            }
        })
    };
    let mut evaluated = 0u64;
    while evaluated < offered {
        evaluated += server.pump().unwrap().captured;
    }
    producer.join().unwrap();
    finish(&server, offered, evaluated, t0.elapsed().as_secs_f64())
}

/// Deterministic 2× overload rounds for `Reject` and `ShedLowest`:
/// each round offers `2 × capacity` writes, then pumps once.
fn run_overdriven(capacity: usize, offered: u64, policy: OverloadPolicy) -> ArmResult {
    let server = build_server(capacity, policy);
    let t0 = Instant::now();
    let mut evaluated = 0u64;
    let mut id = 0i64;
    while (id as u64) < offered {
        for _ in 0..(2 * capacity).min((offered - id as u64) as usize) {
            match insert(&server, id) {
                Ok(()) => {}
                // Overloaded rolls the producer's write back.
                Err(e) => assert_eq!(e.kind(), "overloaded"),
            }
            id += 1;
        }
        evaluated += server.pump().unwrap().captured;
    }
    finish(&server, offered, evaluated, t0.elapsed().as_secs_f64())
}

/// Run E14.
pub fn run(scale: Scale) -> Table {
    let capacity = scale.pick(256, 2_048);
    let offered = scale.pick(4_096, 65_536) as u64;
    let mut table = Table::new(
        "E14: overload — admission policies at 2x the sustainable rate",
        &[
            "arm",
            "offered",
            "evaluated",
            "shed",
            "rejected",
            "peak_depth",
            "events/s",
            "vs_unloaded",
        ],
    );

    let unloaded = run_unloaded(capacity, offered);
    let base_rate = unloaded.offered as f64 / unloaded.secs;
    let arms: Vec<(&str, ArmResult)> = vec![
        ("unloaded", unloaded),
        ("unbounded", run_unbounded(offered)),
        ("block", run_block(capacity, offered)),
        (
            "reject",
            run_overdriven(capacity, offered, OverloadPolicy::Reject),
        ),
        (
            "shed",
            run_overdriven(capacity, offered, OverloadPolicy::ShedLowest),
        ),
    ];

    let mut ingest_lines: Vec<String> = Vec::new();
    for (name, r) in &arms {
        let goodput = r.evaluated as f64 / r.secs;
        table.row(vec![
            (*name).into(),
            r.offered.to_string(),
            r.evaluated.to_string(),
            r.shed.to_string(),
            r.rejected.to_string(),
            r.peak.to_string(),
            fmt_rate(goodput),
            format!("{:.3}", goodput / base_rate),
        ]);
        if !r.depth_samples.is_empty() {
            table.note(format!(
                "unbounded staged depth at produce-phase quarters: {:?} (linear growth to offered)",
                r.depth_samples
            ));
        }
        if *name == "shed" {
            ingest_lines.extend(
                r.exposition
                    .lines()
                    .filter(|l| l.starts_with("evdb_ingest_") && !l.starts_with("# "))
                    .map(String::from),
            );
        }
    }
    for line in ingest_lines {
        table.note(format!("shed-arm exposition: {line}"));
    }
    table.note(format!(
        "capacity {capacity}, offered {offered} per arm; overdriven arms offer 2x capacity \
         per pump; goodput = evaluated/elapsed (rejected arms pay for rolled-back writes)"
    ));
    table.note(
        "invariant (asserted): offered == evaluated + shed + rejected on every arm; \
         peak_depth <= capacity under block/reject/shed",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(row: &[String]) -> (u64, u64, u64, u64, u64) {
        (
            row[1].parse().unwrap(),
            row[2].parse().unwrap(),
            row[3].parse().unwrap(),
            row[4].parse().unwrap(),
            row[5].parse().unwrap(),
        )
    }

    #[test]
    fn accounting_balances_and_depth_is_bounded() {
        let capacity = Scale::Quick.pick(256, 2_048) as u64;
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 5);
        let mut base_rate_factor_ok = true;
        for row in &t.rows {
            let (offered, evaluated, shed, rejected, peak) = ints(row);
            // The invariant: every offered event is accounted for.
            assert_eq!(
                offered,
                evaluated + shed + rejected,
                "accounting must balance exactly on arm {}",
                row[0]
            );
            match row[0].as_str() {
                "unbounded" => {
                    // The baseline really is unbounded: its peak staged
                    // depth is the whole offered load.
                    assert_eq!(peak, offered);
                    assert!(peak >= 4 * capacity);
                }
                "block" => {
                    assert!(peak <= capacity, "block peak {peak} > capacity {capacity}");
                    assert_eq!(shed + rejected, 0, "Block must never drop");
                    assert_eq!(evaluated, offered);
                }
                "reject" => {
                    assert!(peak <= capacity);
                    assert_eq!(shed, 0);
                    assert!(rejected > 0, "2x overdrive must reject something");
                }
                "shed" => {
                    assert!(peak <= capacity);
                    assert_eq!(rejected, 0);
                    assert!(shed > 0, "2x overdrive must shed something");
                }
                _ => assert!(peak <= capacity),
            }
            if matches!(row[0].as_str(), "reject" | "shed") {
                let factor: f64 = row[7].parse().unwrap();
                base_rate_factor_ok &= factor >= 0.1;
            }
        }
        assert!(
            base_rate_factor_ok,
            "Shed/Reject goodput fell below 1/10 of the unloaded rate:\n{}",
            t.render()
        );
    }

    #[test]
    fn shed_and_reject_counters_visible_in_exposition() {
        let capacity = 16;
        let shed_arm = run_overdriven(capacity, 64, OverloadPolicy::ShedLowest);
        assert!(shed_arm.shed > 0);
        assert!(
            shed_arm
                .exposition
                .contains(&format!("evdb_ingest_shed_total {}", shed_arm.shed)),
            "shed counter missing from exposition:\n{}",
            shed_arm.exposition
        );
        let reject_arm = run_overdriven(capacity, 64, OverloadPolicy::Reject);
        assert!(reject_arm.rejected > 0);
        assert!(
            reject_arm
                .exposition
                .contains(&format!("evdb_ingest_rejected_total {}", reject_arm.rejected)),
            "rejected counter missing from exposition:\n{}",
            reject_arm.exposition
        );
        assert!(reject_arm.exposition.contains("evdb_ingest_depth"));
    }
}
