//! E11 — sharded parallel pump (DESIGN.md §D7): throughput of the
//! router/worker/merge pipeline vs the sequential pump as the worker
//! count grows, on the two workload shapes the partitioner supports.
//!
//! * **multi-stream** — 8 independent streams, each with a keyed alert
//!   rule, a windowed CQL query and a keyed detector; default
//!   by-stream routing spreads the streams over the shards.
//! * **keyed-hot-stream** — one stream partitioned by its `sym` field
//!   (16 symbols), keyed rule + keyed detector, no CQ — the
//!   configuration where keyed routing is semantics-preserving.
//!
//! Events are staged with `ingest_async` before the pump starts, so
//! the measurement covers routing + evaluation + merge, not producer
//! cost. Correctness of the parallel modes (identical notification
//! multiset and per-key order vs sequential) is enforced separately by
//! `tests/parallel_pump.rs`; this experiment only measures.
//!
//! Wall-clock speedup is bounded by the host's core count: on a
//! single-core box every mode time-slices one CPU and the sharded
//! pipeline can only show its coordination overhead, not scaling. Every
//! row therefore records the detected core count, and scaling arms
//! whose worker count exceeds it are **skipped** outright — printing an
//! overhead ratio as if it were a speedup misleads readers comparing
//! hosts.

use std::sync::Arc;
use std::time::{Duration, Instant};

use evdb_analytics::detector::UpdatePolicy;
use evdb_analytics::ThresholdModel;
use evdb_core::server::ServerConfig;
use evdb_core::{spawn_pump_with, EventServer, PumpMode};
use evdb_types::{DataType, Record, Schema, SimClock, TimestampMs, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{Scale, Table};
use crate::fmt_rate;

fn sym(i: usize) -> String {
    format!("S{:02}", i % 16)
}

fn tick_schema() -> Arc<Schema> {
    Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)])
}

/// Build the 8-stream workload server and stage `n` events.
pub fn multi_stream_server(n: usize, seed: u64) -> Arc<EventServer> {
    let server = Arc::new(
        EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            ..Default::default()
        })
        .unwrap(),
    );
    for s in 0..8 {
        let stream = format!("s{s}");
        server.create_stream(&stream, tick_schema()).unwrap();
        server
            .add_alert_rule(&format!("hot{s}"), &stream, "px > 95", 1.0, Some("sym"))
            .unwrap();
        server
            .register_cql(
                &format!("avg{s}"),
                &format!("SELECT sym, avg(px) AS apx FROM {stream} [RANGE 1 s] GROUP BY sym"),
            )
            .unwrap();
        server
            .add_detector(
                &format!("band{s}"),
                &stream,
                "px",
                Some("sym"),
                UpdatePolicy::Always,
                || Box::new(ThresholdModel::new(1.0, 98.0)),
            )
            .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let stream = format!("s{}", rng.gen_range(0..8));
        server
            .ingest_async(
                &stream,
                TimestampMs(i as i64),
                Record::from_iter([
                    Value::from(sym(rng.gen_range(0..16))),
                    Value::Float(rng.gen_range(0.0..100.0)),
                ]),
            )
            .unwrap();
    }
    server
}

/// Build the keyed hot-stream workload server and stage `n` events.
pub fn keyed_stream_server(n: usize, seed: u64) -> Arc<EventServer> {
    let server = Arc::new(
        EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            ..Default::default()
        })
        .unwrap(),
    );
    server.create_stream("ticks", tick_schema()).unwrap();
    server
        .add_alert_rule("hot", "ticks", "px > 95", 1.0, Some("sym"))
        .unwrap();
    server
        .add_detector(
            "band",
            "ticks",
            "px",
            Some("sym"),
            UpdatePolicy::Always,
            || Box::new(ThresholdModel::new(1.0, 98.0)),
        )
        .unwrap();
    server.set_partition_field("ticks", "sym").unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        server
            .ingest_async(
                "ticks",
                TimestampMs(i as i64),
                Record::from_iter([
                    Value::from(sym(rng.gen_range(0..16))),
                    Value::Float(rng.gen_range(0.0..100.0)),
                ]),
            )
            .unwrap();
    }
    server
}

/// Run a pump mode over a staged server until all `n` events are
/// processed; returns (events/s, busy shard count).
pub fn drive(server: &Arc<EventServer>, n: usize, mode: PumpMode) -> (f64, usize) {
    let t0 = Instant::now();
    let handle = spawn_pump_with(server, Duration::from_millis(1), mode);
    while (server.metrics().snapshot().events_processed as usize) < n {
        assert!(
            t0.elapsed() < Duration::from_secs(300),
            "pump stalled at {} of {n}",
            server.metrics().snapshot().events_processed
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    let secs = t0.elapsed().as_secs_f64();
    handle.stop();
    let busy = server
        .metrics()
        .shard_snapshots()
        .iter()
        .filter(|s| s.events_routed > 0)
        .count();
    (n as f64 / secs, busy)
}

const MODES: [(&str, PumpMode); 5] = [
    ("seq", PumpMode::Sequential),
    ("shard-1", PumpMode::Sharded { workers: 1 }),
    ("shard-2", PumpMode::Sharded { workers: 2 }),
    ("shard-4", PumpMode::Sharded { workers: 4 }),
    ("shard-8", PumpMode::Sharded { workers: 8 }),
];

fn workload(
    table: &mut Table,
    label: &str,
    n: usize,
    cores: usize,
    build: impl Fn() -> Arc<EventServer>,
) {
    let mut seq_rate = None;
    for (name, mode) in MODES {
        // A scaling arm with more workers than cores can only measure
        // time-slicing overhead; reporting that ratio as a "speedup"
        // misleads. Skip the arm and say why.
        if let PumpMode::Sharded { workers } = mode {
            if workers > cores {
                table.row(vec![
                    label.into(),
                    name.into(),
                    "-".into(),
                    format!("skipped ({cores} cores < {workers} workers)"),
                    "-".into(),
                    cores.to_string(),
                ]);
                continue;
            }
        }
        let server = build();
        let (rate, busy) = drive(&server, n, mode);
        let base = *seq_rate.get_or_insert(rate);
        table.row(vec![
            label.into(),
            name.into(),
            fmt_rate(rate),
            format!("{:.2}x", rate / base),
            if matches!(mode, PumpMode::Sequential) {
                "-".into()
            } else {
                busy.to_string()
            },
            cores.to_string(),
        ]);
    }
}

/// Run E11.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(4_000, 60_000);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut table = Table::new(
        "E11: sharded parallel pump (multi-stream / keyed hot stream)",
        &["workload", "mode", "events/s", "speedup", "busy_shards", "cores"],
    );
    workload(&mut table, "multi-stream", n, cores, || {
        multi_stream_server(n, 111)
    });
    workload(&mut table, "keyed-hot-stream", n, cores, || {
        keyed_stream_server(n, 222)
    });
    table.note(format!(
        "host has {cores} core(s); arms with workers > cores are skipped, not reported as speedups"
    ));
    table
        .note("sequential equivalence of every sharded mode is asserted in tests/parallel_pump.rs");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_completes_and_shards_engage() {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let t = run(Scale::Quick);
        // Every arm gets a row whether it ran or was skipped, and every
        // row self-describes the host's core count.
        assert_eq!(t.rows.len(), 10);
        for row in &t.rows {
            assert_eq!(row[5].parse::<usize>().unwrap(), cores);
        }
        // Arms with workers > cores must be marked skipped, not report
        // a time-slicing overhead ratio as a speedup.
        for (label, workers) in [("shard-1", 1), ("shard-2", 2), ("shard-4", 4), ("shard-8", 8)] {
            let row = t
                .rows
                .iter()
                .find(|r| r[0] == "multi-stream" && r[1] == label)
                .unwrap();
            if workers > cores {
                assert!(
                    row[3].starts_with("skipped ("),
                    "workers={workers} cores={cores}: {row:?}"
                );
                assert_eq!(row[2], "-");
            } else {
                assert!(row[3].ends_with('x'), "{row:?}");
                assert!(row[4].parse::<usize>().unwrap() >= 1);
            }
        }
        // When the host can actually scale, spread arms engage >1 shard.
        if cores >= 4 {
            let row = t
                .rows
                .iter()
                .find(|r| r[0] == "multi-stream" && r[1] == "shard-4")
                .unwrap();
            assert!(row[4].parse::<usize>().unwrap() > 1);
        }
        if cores >= 8 {
            let row = t
                .rows
                .iter()
                .find(|r| r[0] == "keyed-hot-stream" && r[1] == "shard-8")
                .unwrap();
            assert!(row[4].parse::<usize>().unwrap() > 1);
        }
    }
}
