//! E13 — observability overhead (DESIGN.md §D9).
//!
//! Workload: the E1 trigger-capture pipeline end to end — single-row
//! transactions into a captured table, an alert rule over the change
//! stream, one pump per round — under two configurations: the unified
//! metrics registry *enabled* (stage counters, latency histograms,
//! WAL/queue/rules instrumentation all live) and *disabled* (every
//! handle compiled down to a branch-predicted no-op).
//!
//! Arms are interleaved in alternating order and the reported overhead
//! is the median of per-round enabled/disabled time ratios, so
//! scheduler noise and machine drift cancel instead of accumulating
//! into one arm. Expected shape: the observability tax stays within a
//! few percent (target ≤5%, asserted at quick scale).

use std::sync::Arc;
use std::time::Instant;

use evdb_core::metrics::Registry;
use evdb_core::server::ServerConfig;
use evdb_core::{CaptureMechanism, EventServer};
use evdb_types::{DataType, Record, Schema, Value};

use super::{Scale, Table};
use crate::{fmt_ms, fmt_rate};

fn build_server(enabled: bool) -> EventServer {
    let registry = if enabled {
        Arc::new(Registry::new())
    } else {
        Arc::new(Registry::disabled())
    };
    let server = EventServer::in_memory(ServerConfig {
        registry,
        ..Default::default()
    })
    .unwrap();
    server
        .db()
        .create_table(
            "t",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
            "id",
        )
        .unwrap();
    let stream = server.capture_table("t", CaptureMechanism::Trigger).unwrap();
    server
        .add_alert_rule("hot", &stream, "v > 0.9", 2.0, None)
        .unwrap();
    server
}

/// One round: `n` writes then a pump that routes, evaluates and
/// delivers. `next_id` keeps primary keys unique across rounds.
fn run_round(server: &EventServer, n: usize, next_id: &mut i64) -> f64 {
    let t0 = Instant::now();
    for _ in 0..n {
        let id = *next_id;
        *next_id += 1;
        server
            .db()
            .insert(
                "t",
                Record::from_iter([Value::Int(id), Value::Float((id % 100) as f64 / 100.0)]),
            )
            .unwrap();
    }
    server.pump().unwrap();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Run E13.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(4_000, 50_000);
    let rounds = scale.pick(9, 7);
    let mut table = Table::new(
        "E13: observability overhead — registry enabled vs disabled",
        &["registry", "events/round", "best_ms", "events/s", "overhead_%"],
    );

    let on = build_server(true);
    let off = build_server(false);
    let (mut best_on, mut best_off) = (f64::INFINITY, f64::INFINITY);
    let (mut id_on, mut id_off) = (0i64, 0i64);
    // Warm-up round per arm (table/index growth, allocator warm paths).
    run_round(&off, n, &mut id_off);
    run_round(&on, n, &mut id_on);
    let before = on.registry().snapshot();
    let t_rates = Instant::now();
    // Arms alternate order round to round (so drift penalizes neither
    // side) and the overhead is the median of per-round enabled/disabled
    // ratios — one noisy round shifts the median a slot instead of
    // poisoning a mean or a min.
    let mut ratios = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let (t_off, t_on) = if r % 2 == 0 {
            let a = run_round(&off, n, &mut id_off);
            let b = run_round(&on, n, &mut id_on);
            (a, b)
        } else {
            let b = run_round(&on, n, &mut id_on);
            let a = run_round(&off, n, &mut id_off);
            (a, b)
        };
        best_off = best_off.min(t_off);
        best_on = best_on.min(t_on);
        ratios.push(t_on / t_off);
    }
    let elapsed_ms = t_rates.elapsed().as_millis() as i64;
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite round times"));
    let overhead = (ratios[ratios.len() / 2] - 1.0) * 100.0;

    table.row(vec![
        "disabled".into(),
        n.to_string(),
        fmt_ms(best_off),
        fmt_rate(n as f64 / best_off * 1e3),
        "0.0".into(),
    ]);
    table.row(vec![
        "enabled".into(),
        n.to_string(),
        fmt_ms(best_on),
        fmt_rate(n as f64 / best_on * 1e3),
        format!("{overhead:.1}"),
    ]);

    // The snapshot-diff "rates" view over the measured rounds, trimmed
    // to the stage counters (full exposition via `Registry::render`).
    let rates = on.registry().snapshot().rates_since(&before, elapsed_ms);
    for line in rates.lines().filter(|l| l.starts_with("evdb_stage_")) {
        table.note(line.to_string());
    }
    table.note(format!(
        "{n} writes/round, {rounds} alternating-order rounds per arm; best_ms is the per-arm \
         minimum, overhead_% the median of per-round ratios; trigger capture + 1 alert rule"
    ));
    table.note("enabled = stage tracing + WAL/queue/rules/CQ metrics; disabled = no-op handles");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observability_overhead_bounded() {
        // The intrinsic tax is what the budget bounds; each attempt's
        // median-of-ratios can still be inflated by CI neighbors, so
        // take the best of up to three independent attempts (each
        // attempt is itself a 9-round median).
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = run(Scale::Quick);
            assert_eq!(t.rows.len(), 2);
            let overhead: f64 = t.rows[1][4].parse().unwrap();
            best = best.min(overhead);
            if best <= 5.0 {
                break;
            }
        }
        assert!(
            best <= 5.0,
            "observability tax {best:.1}% exceeds the 5% budget"
        );
    }

    #[test]
    fn every_stage_exports_counter_and_histogram() {
        let server = build_server(true);
        let mut id = 0;
        run_round(&server, 50, &mut id);
        let text = server.registry().render();
        for stage in ["capture", "route", "evaluate", "deliver"] {
            let counter = format!("evdb_stage_{stage}_events_total");
            let hist = format!("evdb_stage_{stage}_latency_ms_count");
            assert!(text.contains(&counter), "missing {counter} in exposition");
            assert!(text.contains(&hist), "missing {hist} in exposition");
        }
        // The layer metrics registered by storage/queue/rules also show.
        assert!(text.contains("evdb_storage_wal_append_ms_count"));
        assert!(text.contains("evdb_rules_candidates_total"));
    }
}
