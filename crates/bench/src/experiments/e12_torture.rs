//! E12 — Fault-injection torture: recovery invariants under sampled
//! power cuts (DESIGN.md D8).
//!
//! Runs many seeded crash-recover cycles against the storage engine and
//! the queue subsystem. Each cycle arms a [`FaultInjector`] with a
//! sampled countdown and fault kind (torn write, short write, bit flip,
//! power cut, cut-after-write), drives a seeded workload until the
//! injected crash, reopens, and checks the D8 invariants:
//!
//! * I1 — no committed transaction is lost and none half-applies;
//! * I2 — a message acked with `Ok` is never redelivered;
//! * I3 — an enqueued-and-unacked message is never lost;
//! * I4 — corrupt frames are detected and discarded, never accepted.
//!
//! The table reports cycles, how many actually crashed (and at how many
//! distinct fault sites), invariant violations (must be zero) and mean
//! recovery time. `tests/torture_recovery.rs` is the assertion-heavy
//! twin of this experiment; this run records the numbers.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use evdb_faults::{FaultInjector, FaultRng};
use evdb_queue::{QueueConfig, QueueManager};
use evdb_storage::{Database, DbOptions, SyncPolicy};
use evdb_types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

use super::{tmpdir, Scale, Table};
use crate::fmt_ms;

/// Outcome counters for one layer's cycle batch.
struct Outcome {
    cycles: u64,
    crashed: u64,
    sites: BTreeSet<String>,
    violations: u64,
    recover_ms_total: f64,
}

impl Outcome {
    fn new() -> Outcome {
        Outcome {
            cycles: 0,
            crashed: 0,
            sites: BTreeSet::new(),
            violations: 0,
            recover_ms_total: 0.0,
        }
    }

    fn row(&self, layer: &str) -> Vec<String> {
        vec![
            layer.to_string(),
            self.cycles.to_string(),
            self.crashed.to_string(),
            self.sites.len().to_string(),
            self.violations.to_string(),
            fmt_ms(self.recover_ms_total / self.cycles.max(1) as f64),
        ]
    }
}

/// One storage cycle: seeded put/delete/checkpoint workload, injected
/// crash, recovery, model comparison (invariants I1 + I4).
fn storage_cycle(seed: u64, out: &mut Outcome) {
    let dir = tmpdir("e12s");
    let mut rng = FaultRng::new(seed);
    let injector = FaultInjector::new(seed ^ 0xE12);
    let mut model: BTreeMap<i64, i64> = BTreeMap::new();
    // The op in flight at the crash: Some((k, Some(v))) = put, Some((k,
    // None)) = delete. It may legitimately persist (cut-after-write).
    let mut pending: Option<(i64, Option<i64>)> = None;
    {
        let db = Database::open(
            &dir,
            DbOptions {
                sync: SyncPolicy::Never,
                faults: Some(Arc::clone(&injector)),
                ..Default::default()
            },
        )
        .unwrap();
        db.create_table(
            "t",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
            "k",
        )
        .unwrap();
        injector.arm_sampled(48);
        for _ in 0..40 {
            let r = match rng.below(10) {
                0..=5 => {
                    let (k, v) = (rng.range(0, 32) as i64, rng.range(0, 1_000) as i64);
                    let rec = Record::from_iter([Value::Int(k), Value::Int(v)]);
                    let r = if model.contains_key(&k) {
                        db.update("t", &Value::Int(k), rec).map(|_| ())
                    } else {
                        db.insert("t", rec).map(|_| ())
                    };
                    if r.is_ok() {
                        model.insert(k, v);
                    } else {
                        pending = Some((k, Some(v)));
                    }
                    r
                }
                6..=7 => {
                    let k = rng.range(0, 32) as i64;
                    if !model.contains_key(&k) {
                        continue;
                    }
                    let r = db.delete("t", &Value::Int(k)).map(|_| ());
                    if r.is_ok() {
                        model.remove(&k);
                    } else {
                        pending = Some((k, None));
                    }
                    r
                }
                _ => db.checkpoint().map(|_| ()),
            };
            if r.is_err() {
                break;
            }
        }
    }
    out.cycles += 1;
    if let Some(site) = injector.crash_site() {
        out.crashed += 1;
        out.sites.insert(site);
    }

    let t0 = Instant::now();
    let db = Database::open(&dir, DbOptions::default()).unwrap();
    out.recover_ms_total += t0.elapsed().as_secs_f64() * 1e3;
    let t = db.table("t").unwrap();
    let mut got: BTreeMap<i64, i64> = BTreeMap::new();
    for k in 0..32 {
        if let Some(row) = t.get(&Value::Int(k)) {
            got.insert(k, row.get(1).and_then(Value::as_int).unwrap());
        }
    }
    let mut with_pending = model.clone();
    match pending {
        Some((k, Some(v))) => {
            with_pending.insert(k, v);
        }
        Some((k, None)) => {
            with_pending.remove(&k);
        }
        None => {}
    }
    if t.len() != got.len() || (got != model && got != with_pending) {
        out.violations += 1;
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One queue cycle: seeded enqueue/dequeue/ack/nack/reap workload with
/// an injected crash, then a drain checking invariants I2 + I3.
fn queue_cycle(seed: u64, out: &mut Outcome) {
    let dir = tmpdir("e12q");
    let mut rng = FaultRng::new(seed);
    let injector = FaultInjector::new(seed ^ 0xE12F);
    let clock = SimClock::new(TimestampMs(1_000));
    let mut enqueued_ok: BTreeSet<u64> = BTreeSet::new();
    let mut acked_ok: BTreeSet<u64> = BTreeSet::new();
    let mut ambiguous: BTreeSet<u64> = BTreeSet::new();
    {
        let db = Database::open(
            &dir,
            DbOptions {
                sync: SyncPolicy::Never,
                clock: clock.clone(),
                faults: Some(Arc::clone(&injector)),
                ..Default::default()
            },
        )
        .unwrap();
        let q = QueueManager::attach(Arc::clone(&db)).unwrap();
        q.create_queue(
            "work",
            Schema::of(&[("job", DataType::Int)]),
            QueueConfig::default()
                .visibility_timeout(2_000)
                .max_attempts(64),
        )
        .unwrap();
        q.subscribe("work", "g").unwrap();
        injector.arm_sampled(60);
        'workload: for op in 0..32i64 {
            match rng.below(10) {
                0..=4 => match q.enqueue("work", Record::from_iter([Value::Int(op)]), "e12") {
                    Ok(id) => {
                        enqueued_ok.insert(id);
                    }
                    Err(_) => break 'workload,
                },
                5..=7 => {
                    let batch = match q.dequeue("work", "g", 3) {
                        Ok(b) => b,
                        Err(_) => break 'workload,
                    };
                    for d in &batch {
                        match rng.below(3) {
                            0 => {} // leave in flight
                            1 => match q.ack(d) {
                                Ok(()) => {
                                    acked_ok.insert(d.message.id);
                                }
                                Err(_) => {
                                    ambiguous.insert(d.message.id);
                                    break 'workload;
                                }
                            },
                            _ => {
                                if q.nack(d, "e12").is_err() {
                                    break 'workload;
                                }
                            }
                        }
                    }
                }
                _ => {
                    clock.advance(1_000);
                    if q.reap_timeouts("work").is_err() {
                        break 'workload;
                    }
                }
            }
        }
    }
    out.cycles += 1;
    if let Some(site) = injector.crash_site() {
        out.crashed += 1;
        out.sites.insert(site);
    }

    let t0 = Instant::now();
    let db = Database::open(
        &dir,
        DbOptions {
            sync: SyncPolicy::Never,
            clock: clock.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let q = QueueManager::attach(Arc::clone(&db)).unwrap();
    out.recover_ms_total += t0.elapsed().as_secs_f64() * 1e3;
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    for _ in 0..40 {
        clock.advance(3_000);
        q.reap_timeouts("work").unwrap();
        let batch = q.dequeue("work", "g", 100).unwrap();
        if batch.is_empty() && q.depth("work").unwrap() == 0 {
            break;
        }
        for d in batch {
            if acked_ok.contains(&d.message.id) {
                out.violations += 1; // I2: acked-Ok redelivered
            }
            seen.insert(d.message.id);
            q.ack(&d).unwrap();
        }
    }
    for id in enqueued_ok.difference(&acked_ok) {
        if !ambiguous.contains(id) && !seen.contains(id) {
            out.violations += 1; // I3: unacked message lost
        }
    }
    drop(q);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Run E12.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E12: fault-injection torture (crash-recover cycles)",
        &["layer", "cycles", "crashed", "sites", "violations", "mean_recover_ms"],
    );
    let storage_cycles = scale.pick(120, 600) as u64;
    let queue_cycles = scale.pick(80, 400) as u64;

    let mut st = Outcome::new();
    for c in 0..storage_cycles {
        storage_cycle(0xE12_0000 + c * 0x9E37, &mut st);
    }
    let mut qu = Outcome::new();
    for c in 0..queue_cycles {
        queue_cycle(0xE12_8000 + c * 0x79B9, &mut qu);
    }

    let crashes = st.crashed + qu.crashed;
    let violations = st.violations + qu.violations;
    table.row(st.row("storage"));
    table.row(qu.row("queue"));
    table.note(format!(
        "{violations} invariant violations across {crashes} seeded crash points \
         ({} cycles total)",
        st.cycles + qu.cycles
    ));
    table.note(
        "invariants: committed-survives, acked-never-redelivered, \
         unacked-never-lost, corruption-never-accepted",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torture_runs_clean_at_quick_scale() {
        let t = run(Scale::Quick);
        for row in &t.rows {
            assert_eq!(row[4], "0", "violations in layer {}", row[0]);
            let cycles: u64 = row[1].parse().unwrap();
            let crashed: u64 = row[2].parse().unwrap();
            assert!(crashed >= cycles / 8, "sampler too tame: {row:?}");
        }
        assert!(t.notes[0].starts_with("0 invariant violations"), "{}", t.notes[0]);
    }
}
