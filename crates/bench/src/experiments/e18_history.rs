//! E18 — the historical event store: zone pruning, compaction, REPLAY
//! (DESIGN.md D14).
//!
//! Three claims, each asserted inline on every run:
//!
//! * **Pruning wins.** A selective point query over a frozen history
//!   must skip ≥90% of segments via manifest-level stats (and most
//!   zones inside the survivors), and run ≥5× faster than the
//!   row-scan baseline (`scan_all` + predicate over every decoded
//!   row) on the same store.
//! * **Compaction converges without losing anything.** Driving the
//!   merge policy to a handful of segments leaves every event intact,
//!   in arrival order.
//! * **REPLAY is equivalence-grade.** A CQ registered *after* the
//!   events were ingested, fed purely by replaying the store through
//!   the runtime, compacts to byte-identical `DeltaLog` rows as a
//!   subscriber that watched the stream live.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use evdb_core::history::HistoryConfig;
use evdb_core::server::ServerConfig;
use evdb_core::EventServer;
use evdb_cq::delta::DeltaLog;
use evdb_storage::{CompactionPolicy, SegmentStore, SegmentStoreOptions};
use evdb_types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

use super::{tmpdir, Scale, Table};

/// Best-of-k wall time for `f`, in microseconds (k small; the point is
/// to shave scheduler noise off a CI-scale measurement, not to be a
/// statistics suite).
fn best_of_us<T>(k: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::MAX;
    let mut last = None;
    for _ in 0..k {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        last = Some(out);
    }
    (best, last.unwrap())
}

/// Run E18.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(64_000, 1_000_000);
    let mut table = Table::new(
        "E18: historical store — zone pruning, compaction, REPLAY",
        &["arm", "events", "segments", "pruned", "zones_pruned", "query_us", "scan_us", "speedup"],
    );

    // ---- arm 1: selective point query vs row scan -------------------
    let dir = tmpdir("e18-prune");
    let schema = Schema::of(&[("meter", DataType::Int), ("kwh", DataType::Float)]);
    let store = SegmentStore::open(
        &dir,
        Arc::clone(&schema),
        SegmentStoreOptions {
            freeze_rows: n / 64, // ~64 segments
            zone_rows: (n / 64 / 16).max(1),
            ..Default::default()
        },
    )
    .unwrap();
    for i in 0..n as i64 {
        // Ascending ids: zone min/max bounds are tight, point queries
        // can prove almost every segment irrelevant from the manifest.
        store
            .append(
                i as u64,
                TimestampMs(i),
                false,
                Record::from_iter([Value::Int(i), Value::Float(i as f64 / 10.0)]),
            )
            .unwrap();
    }
    store.freeze().unwrap();
    let segments = store.segment_count();

    let needle = n as i64 / 2 + 7;
    let predicate = evdb_expr::parse(&format!("meter = {needle}")).unwrap();
    let before = store.stats_snapshot();
    let (query_us, hits) = best_of_us(5, || store.query(&predicate).unwrap());
    let after = store.stats_snapshot();
    assert_eq!(hits.len(), 1, "point query must find exactly its row");
    assert_eq!(hits[0].payload.get(0), Some(&Value::Int(needle)));

    let considered = after.segments_considered - before.segments_considered;
    let pruned = after.segments_pruned - before.segments_pruned;
    let zones_pruned = after.zones_pruned - before.zones_pruned;
    assert!(
        pruned * 10 >= considered * 9,
        "expected >=90% of segments pruned, got {pruned}/{considered}"
    );

    let (scan_us, scanned) = best_of_us(3, || {
        store
            .scan_all()
            .unwrap()
            .into_iter()
            .filter(|e| e.payload.get(0) == Some(&Value::Int(needle)))
            .collect::<Vec<_>>()
    });
    assert_eq!(scanned.len(), 1);
    let speedup = scan_us / query_us.max(1e-9);
    assert!(
        speedup >= 5.0,
        "pruned query must beat the row scan >=5x, got {speedup:.1}x ({query_us:.0}us vs {scan_us:.0}us)"
    );
    table.row(vec![
        "point-query".into(),
        n.to_string(),
        segments.to_string(),
        format!("{pruned}/{considered}"),
        zones_pruned.to_string(),
        format!("{query_us:.0}"),
        format!("{scan_us:.0}"),
        format!("{speedup:.1}x"),
    ]);
    let _ = std::fs::remove_dir_all(&dir);

    // ---- arm 2: compaction + replay equivalence through the server --
    let m = scale.pick(4_000, 60_000);
    let dir = tmpdir("e18-replay");
    let server = EventServer::in_memory(ServerConfig {
        clock: SimClock::new(TimestampMs(0)),
        ..Default::default()
    })
    .unwrap();
    let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
    server.create_stream("ticks", Arc::clone(&schema)).unwrap();
    server
        .enable_history(
            &dir,
            HistoryConfig {
                store: SegmentStoreOptions {
                    freeze_rows: (m / 48).max(8),
                    zone_rows: (m / 48 / 8).max(4),
                    ..Default::default()
                },
                compaction: Some(CompactionPolicy {
                    max_segments: 6,
                    small_rows: m as u64 * 2,
                    max_merge: 8,
                }),
            },
        )
        .unwrap();

    const CQL: &str = "SELECT sym, avg(px) AS apx FROM ticks [RANGE 1 s] GROUP BY sym";
    server.register_cql("live", CQL).unwrap();
    let live = Arc::new(Mutex::new(DeltaLog::new()));
    {
        let sink = Arc::clone(&live);
        server
            .on_query("live", Arc::new(move |e| sink.lock().unwrap().observe(e)))
            .unwrap();
    }
    let syms = ["IBM", "MSFT", "AAPL", "ORCL"];
    for i in 0..m as i64 {
        server
            .ingest(
                "ticks",
                TimestampMs(i * 25),
                Record::from_iter([
                    Value::from(syms[(i % 4) as usize]),
                    Value::Float(100.0 + (i % 997) as f64),
                ]),
            )
            .unwrap();
    }
    server.flush_stream("ticks", TimestampMs(i64::MAX)).unwrap();
    let live_rows = live.lock().unwrap().rows();

    // Pump ticks drive freezing + one merge per pump until convergence.
    let history = server.history().unwrap();
    for _ in 0..128 {
        server.pump().unwrap();
    }
    let store = history.store("ticks").unwrap();
    store.freeze().unwrap();
    for _ in 0..128 {
        server.pump().unwrap();
        if store.segment_count() <= 6 {
            break;
        }
    }
    let snap = store.stats_snapshot();
    assert!(
        store.segment_count() <= 6,
        "compaction did not converge: {} segments",
        store.segment_count()
    );
    assert!(snap.compactions > 0, "merge policy never fired");
    assert_eq!(store.total_rows(), m as u64, "compaction lost or duplicated events");

    // A query registered only now, fed purely by REPLAY.
    server.register_cql("aftermath", CQL).unwrap();
    let after_log = Arc::new(Mutex::new(DeltaLog::new()));
    {
        let sink = Arc::clone(&after_log);
        server
            .on_query("aftermath", Arc::new(move |e| sink.lock().unwrap().observe(e)))
            .unwrap();
    }
    let (replay_us, fed) =
        best_of_us(1, || server.replay_into_runtime("ticks", 0, u64::MAX).unwrap().0);
    server.flush_stream("ticks", TimestampMs(i64::MAX)).unwrap();
    assert_eq!(fed, m as u64, "replay fed a different event count than ingested");
    assert_eq!(
        after_log.lock().unwrap().rows(),
        live_rows,
        "replayed query diverged from the live subscriber"
    );
    table.row(vec![
        "compact+replay".into(),
        m.to_string(),
        store.segment_count().to_string(),
        format!("merges={}", snap.compactions),
        snap.zones_pruned.to_string(),
        format!("{replay_us:.0}"),
        "-".into(),
        "identical".into(),
    ]);
    let _ = std::fs::remove_dir_all(&dir);

    table.note(format!(
        "{n} events across {segments} segments; point query prunes {pruned}/{considered} \
         segments from manifest stats alone (asserted >=90%) and beats the row scan \
         {speedup:.1}x (asserted >=5x)"
    ));
    table.note(
        "replay arm (asserted): compaction converges with zero loss; a query registered \
         after ingest, fed by REPLAY through the runtime, compacts to byte-identical \
         DeltaLog rows as the live subscriber",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prunes_and_replays_at_quick_scale() {
        let t = run(Scale::Quick); // run() itself asserts the claims
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1][7], "identical");
    }
}
