//! E4 — "Frequently changing rules sets" (§2.2.c.iv.2.b): sustain rule
//! add/remove churn interleaved with event matching.
//!
//! Expected shape: the indexed matcher's add/remove cost is O(rule's own
//! constraints) — independent of the total rule count — so matching
//! throughput holds as churn rises; an engine that rebuilt its index per
//! change would collapse.

use std::sync::Arc;
use std::time::Instant;

use evdb_rules::{IndexedMatcher, Matcher, Rule};

use super::{Scale, Table};
use crate::workloads::{market_ticks, tick_rules, tick_schema};

/// Run E4.
pub fn run(scale: Scale) -> Table {
    let base_rules = scale.pick(2_000, 20_000);
    let iterations = scale.pick(2_000, 20_000);
    let mut table = Table::new(
        "E4: rule churn — interleaved add/remove/match on the indexed matcher",
        &["churn/match", "add_us", "remove_us", "match_us", "ops/s"],
    );

    let schema = tick_schema();
    let events: Vec<evdb_types::Record> = market_ticks(512, 64, 1, 31)
        .iter()
        .map(|t| t.record())
        .collect();

    for churn_per_match in [0usize, 1, 4, 16] {
        let mut m = IndexedMatcher::new(Arc::clone(&schema));
        let rules = tick_rules(base_rules, 64, 0.05, 41);
        for (i, r) in rules.iter().enumerate() {
            m.add_rule(Rule::new(i as u64, "", r.clone())).unwrap();
        }
        let fresh = tick_rules(iterations * churn_per_match.max(1), 64, 0.05, 42);

        let mut next_id = base_rules as u64;
        let mut oldest = 0u64;
        let (mut add_us, mut rem_us, mut match_us) = (0.0f64, 0.0f64, 0.0f64);
        let (mut adds, mut rems, mut matches) = (0u64, 0u64, 0u64);
        let wall = Instant::now();
        for i in 0..iterations {
            for c in 0..churn_per_match {
                let rule = fresh[(i * churn_per_match + c) % fresh.len()].clone();
                let t0 = Instant::now();
                m.add_rule(Rule::new(next_id, "", rule)).unwrap();
                add_us += t0.elapsed().as_secs_f64() * 1e6;
                adds += 1;
                next_id += 1;
                let t0 = Instant::now();
                m.remove_rule(oldest).unwrap();
                rem_us += t0.elapsed().as_secs_f64() * 1e6;
                rems += 1;
                oldest += 1;
            }
            let ev = &events[i % events.len()];
            let t0 = Instant::now();
            matches += m.match_record(ev).unwrap().len() as u64;
            match_us += t0.elapsed().as_secs_f64() * 1e6;
        }
        let total_ops = iterations + adds as usize + rems as usize;
        table.row(vec![
            churn_per_match.to_string(),
            if adds > 0 {
                format!("{:.1}", add_us / adds as f64)
            } else {
                "-".into()
            },
            if rems > 0 {
                format!("{:.1}", rem_us / rems as f64)
            } else {
                "-".into()
            },
            format!("{:.1}", match_us / iterations as f64),
            crate::fmt_rate(total_ops as f64 / wall.elapsed().as_secs_f64()),
        ]);
        let _ = matches;
    }
    table.note(format!(
        "{base_rules} resident rules, {iterations} match iterations; churn = rules replaced per match"
    ));
    table.note("per-op cost stays flat as churn rises: updates touch only the changed rule's postings");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_experiment_runs() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        // Match cost with churn 16 should stay within ~5x of churn 0
        // (flat in rule count; allow generous noise).
        let m0: f64 = t.rows[0][3].parse().unwrap();
        let m16: f64 = t.rows[3][3].parse().unwrap();
        assert!(m16 < m0 * 5.0 + 50.0, "match degraded: {m0} -> {m16}");
    }
}
