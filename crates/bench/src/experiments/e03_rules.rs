//! E3 — "Large rule sets and Continuous Queries" (§2.2.c.iv.2.a):
//! matching one event against 10²…10⁵⁺ rules, indexed vs scan.
//!
//! Expected shape: scan cost grows linearly with the rule count; indexed
//! cost grows with *matching* constraints only, so the gap widens to
//! orders of magnitude at large rule counts.

use std::sync::Arc;
use std::time::Instant;

use evdb_rules::{IndexedMatcher, Matcher, Rule, ScanMatcher};

use super::{Scale, Table};
use crate::workloads::{market_ticks, tick_rules, tick_schema};

/// Build both matchers over the same generated rule set.
pub fn build_matchers(nrules: usize, seed: u64) -> (ScanMatcher, IndexedMatcher) {
    let schema = tick_schema();
    let rules = tick_rules(nrules, 64, 0.05, seed);
    let mut scan = ScanMatcher::new(Arc::clone(&schema));
    let mut idx = IndexedMatcher::new(schema);
    for (i, r) in rules.into_iter().enumerate() {
        scan.add_rule(Rule::new(i as u64, "", r.clone())).unwrap();
        idx.add_rule(Rule::new(i as u64, "", r)).unwrap();
    }
    (scan, idx)
}

fn us_per_event(m: &dyn Matcher, events: &[evdb_types::Record]) -> (f64, u64) {
    let t0 = Instant::now();
    let mut matches = 0u64;
    for e in events {
        matches += m.match_record(e).unwrap().len() as u64;
    }
    (
        t0.elapsed().as_secs_f64() * 1e6 / events.len() as f64,
        matches,
    )
}

/// Run E3.
pub fn run(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![100, 1_000, 5_000],
        Scale::Full => vec![100, 1_000, 10_000, 100_000],
    };
    let nevents = scale.pick(200, 2_000);
    let events: Vec<evdb_types::Record> = market_ticks(nevents, 64, 1, 11)
        .iter()
        .map(|t| t.record())
        .collect();

    let mut table = Table::new(
        "E3: rule-set scalability — scan vs predicate-indexed matching",
        &["rules", "scan_us/evt", "indexed_us/evt", "speedup", "matches"],
    );
    for n in sizes {
        let (scan, idx) = build_matchers(n, 21);
        let (scan_us, m1) = us_per_event(&scan, &events);
        let (idx_us, m2) = us_per_event(&idx, &events);
        assert_eq!(m1, m2, "matchers must agree");
        table.row(vec![
            n.to_string(),
            format!("{scan_us:.1}"),
            format!("{idx_us:.1}"),
            format!("{:.1}x", scan_us / idx_us),
            m1.to_string(),
        ]);
    }
    table.note(format!("{nevents} events, 64 symbols, 5% residual-only rules"));
    table.note("scan grows ~linearly with rules; indexed with matching constraints (D1)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_beats_scan_at_size() {
        let t = run(Scale::Quick);
        // At the largest size the speedup should exceed 2x.
        let last = t.rows.last().unwrap();
        let speedup: f64 = last[3].trim_end_matches('x').parse().unwrap();
        assert!(speedup > 2.0, "speedup {speedup}");
    }
}
