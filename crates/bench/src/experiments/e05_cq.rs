//! E5 — Continuous-query throughput: windowed aggregation, incremental
//! (pane-based) vs recompute (DESIGN.md D5), across window/slide shapes.
//!
//! Expected shape: for tumbling windows the two modes are close (each
//! event is touched once either way); for sliding windows with many
//! overlaps the recompute mode rescans every event `width/slide` times
//! and falls behind.

use std::time::Instant;

use evdb_cq::aggregate::{AggFunc, AggMode, AggSpec, WindowAggregateOp};
use evdb_cq::op::Operator;
use evdb_cq::window::WindowSpec;
use evdb_types::{Event, EventId, TimestampMs};

use super::{Scale, Table};
use crate::fmt_rate;
use crate::workloads::{market_ticks, tick_schema};

fn aggs() -> Vec<AggSpec> {
    vec![
        AggSpec {
            func: AggFunc::Count,
            field: None,
            expr: None,
            out_name: "n".into(),
        },
        AggSpec {
            func: AggFunc::Avg,
            field: Some("px".into()),
            expr: None,
            out_name: "apx".into(),
        },
        AggSpec {
            func: AggFunc::Max,
            field: Some("px".into()),
            expr: None,
            out_name: "hi".into(),
        },
    ]
}

fn run_mode(mode: AggMode, window: WindowSpec, events: &[Event]) -> (f64, usize) {
    let schema = tick_schema();
    let mut op = WindowAggregateOp::new(&schema, window, &["sym"], aggs(), mode).unwrap();
    let mut out = Vec::new();
    let t0 = Instant::now();
    let mut produced = 0usize;
    for (i, e) in events.iter().enumerate() {
        op.on_event(e, &mut out).unwrap();
        // Watermark every 256 events (runtime cadence).
        if i % 256 == 0 {
            op.on_watermark(e.timestamp, &mut out).unwrap();
            produced += out.len();
            out.clear();
        }
    }
    op.on_watermark(TimestampMs(i64::MAX / 2), &mut out).unwrap();
    produced += out.len();
    (
        events.len() as f64 / t0.elapsed().as_secs_f64(),
        produced,
    )
}

/// Run E5.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(20_000, 500_000);
    let schema = tick_schema();
    let events: Vec<Event> = market_ticks(n, 16, 1, 51)
        .iter()
        .enumerate()
        .map(|(i, t)| {
            Event::new(
                EventId(i as u64),
                "ticks",
                t.ts,
                t.record(),
                std::sync::Arc::clone(&schema),
            )
        })
        .collect();

    let mut table = Table::new(
        "E5: windowed aggregation — incremental (panes) vs recompute",
        &["window", "slide", "overlap", "incr_evt/s", "recomp_evt/s", "ratio", "windows"],
    );
    let shapes = [
        (1_000i64, 1_000i64),
        (10_000, 10_000),
        (10_000, 1_000),
        (60_000, 2_000),
    ];
    for (width, slide) in shapes {
        let w = if width == slide {
            WindowSpec::Tumbling { width_ms: width }
        } else {
            WindowSpec::Sliding {
                width_ms: width,
                slide_ms: slide,
            }
        };
        let (inc_rate, w1) = run_mode(AggMode::Incremental, w, &events);
        let (rec_rate, w2) = run_mode(AggMode::Recompute, w, &events);
        assert_eq!(w1, w2, "modes must emit the same windows");
        table.row(vec![
            format!("{}s", width / 1_000),
            format!("{}s", slide / 1_000),
            format!("{}x", width / slide),
            fmt_rate(inc_rate),
            fmt_rate(rec_rate),
            format!("{:.1}x", inc_rate / rec_rate),
            w1.to_string(),
        ]);
    }
    table.note(format!("{n} ticks, 16 symbols, group by sym, 3 aggregates"));
    table.note("recompute rescans each event width/slide times; panes touch it once (D5)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_and_incremental_wins_on_overlap() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        // The 30x-overlap row should favour incremental.
        let ratio: f64 = t.rows[3][5].trim_end_matches('x').parse().unwrap();
        assert!(ratio > 1.0, "ratio {ratio}");
    }
}
