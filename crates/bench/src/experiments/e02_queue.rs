//! E2 — Message storage operational characteristics (§2.2.b.ii):
//! enqueue/dequeue throughput vs. journal sync policy (group commit,
//! DESIGN.md D6), on a durable (file-backed) database.
//!
//! Expected shape: per-commit fsync is the durability ceiling and the
//! throughput floor; group commit (EveryN) recovers most of the gap;
//! Never is the OS-decides upper bound.

use std::sync::Arc;
use std::time::Instant;

use evdb_queue::{QueueConfig, QueueManager};
use evdb_storage::{Database, DbOptions, SyncPolicy};
use evdb_types::{DataType, Record, Schema, Value};

use super::{tmpdir, Scale, Table};
use crate::fmt_rate;

fn run_policy(policy: SyncPolicy, n: usize) -> (f64, f64, u64) {
    let dir = tmpdir("e02");
    let db = Database::open(
        &dir,
        DbOptions {
            sync: policy,
            ..Default::default()
        },
    )
    .unwrap();
    let q = QueueManager::attach(Arc::clone(&db)).unwrap();
    q.create_queue(
        "q",
        Schema::of(&[("x", DataType::Int)]),
        QueueConfig::default(),
    )
    .unwrap();
    q.subscribe("q", "g").unwrap();

    let t0 = Instant::now();
    for i in 0..n {
        q.enqueue("q", Record::from_iter([Value::Int(i as i64)]), "bench")
            .unwrap();
    }
    let enq_s = n as f64 / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut done = 0;
    while done < n {
        let ds = q.dequeue("q", "g", 256).unwrap();
        if ds.is_empty() {
            break;
        }
        for d in ds {
            q.ack(&d).unwrap();
            done += 1;
        }
    }
    let deq_s = done as f64 / t0.elapsed().as_secs_f64();
    let syncs = db.wal_sync_count();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    (enq_s, deq_s, syncs)
}

/// Run E2.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(500, 20_000);
    let mut table = Table::new(
        "E2: message store throughput vs sync policy (durable, file WAL)",
        &["sync_policy", "enqueue/s", "dequeue+ack/s", "fsyncs"],
    );
    for (name, policy) in [
        ("always", SyncPolicy::Always),
        ("group(64)", SyncPolicy::EveryN(64)),
        ("never", SyncPolicy::Never),
    ] {
        let (enq, deq, syncs) = run_policy(policy, n);
        table.row(vec![
            name.into(),
            fmt_rate(enq),
            fmt_rate(deq),
            syncs.to_string(),
        ]);
    }
    table.note(format!("{n} messages, 1 consumer group, batch dequeue 256"));
    table.note("group commit trades bounded loss window for throughput (D6)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_experiment_runs_and_group_commit_syncs_less() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        let syncs: Vec<u64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(syncs[0] > syncs[1], "always {} vs group {}", syncs[0], syncs[1]);
    }
}
