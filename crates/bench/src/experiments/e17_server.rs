//! E17 — sustained socket ingest with mass fan-out (DESIGN.md §D13).
//!
//! The server claims to be deployable: framed TCP ingest through
//! admission control, one engine-side subscription per query fanned out
//! to every connected session. This experiment holds it to that over
//! *real* sockets: N producer connections flood `INGEST` while ≥64
//! subscriber connections each expect the complete update stream.
//!
//! Arms (per overload policy):
//!
//! * **block** — background pump; producers are backpressured by their
//!   own sockets. Every offered event must be evaluated and every
//!   subscriber must receive every update. Fan-out latency (producer
//!   send → probe subscriber receipt) is measured per event.
//! * **reject** — tiny capacity, slow drain: overflow offers get the
//!   typed `ERR overloaded` reply. The number of errors the producers
//!   *observed* must equal the admission counter exactly.
//! * **shed** — same drive, `ShedLowest`: every offer is acked, the
//!   overflow is shed inside admission, counted, never silent.
//!
//! Asserted inline on every arm, at both scales: all subscribers
//! receive identical update counts; `offered == delivered + shed +
//! rejected` where *delivered* is what subscribers actually saw over
//! their sockets; client-observed rejections equal the admission
//! counter; and the hub's delivery counter equals `delivered × subs`
//! with zero fan-out drops (buffers are sized for the stream).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use evdb_core::server::ServerConfig;
use evdb_core::{EventServer, OverloadPolicy};
use evdb_server::frame::{encode_frame_vec, FrameDecoder};
use evdb_server::{NetConfig, NetServer};

use super::{Scale, Table};
use crate::fmt_rate;

/// A blocking framed-protocol client.
struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        Client {
            stream,
            decoder: FrameDecoder::new(),
        }
    }

    fn send(&mut self, cmd: &str) {
        self.stream
            .write_all(&encode_frame_vec(cmd.as_bytes()))
            .unwrap();
    }

    fn recv(&mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(frame) = self.decoder.next_frame() {
                return String::from_utf8(frame.unwrap()).unwrap();
            }
            assert!(Instant::now() < deadline, "protocol reply timed out");
            let mut buf = [0u8; 16 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => panic!("server closed connection"),
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(_) => {}
            }
        }
    }

    fn call(&mut self, cmd: &str) -> String {
        self.send(cmd);
        self.recv()
    }
}

struct ArmResult {
    offered: u64,
    /// Updates each subscriber received over its socket (identical
    /// across subscribers — asserted).
    delivered: u64,
    shed: u64,
    rejected: u64,
    peak_depth: u64,
    produce_secs: f64,
    /// Fan-out latency samples in ms (probe subscriber), empty when the
    /// arm overdrives (latency under rejection is not meaningful).
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

#[allow(clippy::too_many_lines)]
fn run_arm(
    policy: OverloadPolicy,
    subs_n: usize,
    producers_n: usize,
    offered: u64,
    capacity: usize,
) -> ArmResult {
    let overdriven = !matches!(policy, OverloadPolicy::Block);
    let engine = Arc::new(
        EventServer::in_memory(ServerConfig {
            ingest_capacity: capacity,
            overload: policy,
            ..Default::default()
        })
        .unwrap(),
    );
    let mut server = NetServer::start(
        Arc::clone(&engine),
        NetConfig {
            http_addr: None,
            // Block: realistic background pump. Overdriven arms: drain
            // deliberately slowly (protocol PUMP below) so the policy
            // actually engages at socket speed.
            pump_interval: (!overdriven).then(|| Duration::from_millis(1)),
            session_buffer: offered as usize + 64, // no fan-out drops
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.tcp_addr();

    let mut admin = Client::connect(addr);
    assert_eq!(admin.call("CREATE STREAM s v:INT"), "OK");
    // Stateless projection: exactly one UPDATE per evaluated event.
    assert_eq!(admin.call("REGISTER QUERY feed SELECT v FROM s"), "OK");

    // Slow drainer for the overdriven arms.
    let stop = Arc::new(AtomicBool::new(false));
    let drainer = overdriven.then(|| {
        let stop = Arc::clone(&stop);
        let mut c = Client::connect(addr);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let r = c.call("PUMP");
                assert!(r.starts_with("OK captured="), "{r}");
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    });

    // Subscribers: connect, SUBSCRIBE, then count updates on their own
    // reader threads. Subscriber 0 is the latency probe.
    let t0 = Instant::now();
    let send_stamp: Arc<Vec<AtomicU64>> =
        Arc::new((0..offered).map(|_| AtomicU64::new(0)).collect());
    let counts: Arc<Vec<AtomicU64>> =
        Arc::new((0..subs_n).map(|_| AtomicU64::new(0)).collect());
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let sub_threads: Vec<_> = (0..subs_n)
        .map(|i| {
            let mut c = Client::connect(addr);
            assert_eq!(c.call("SUBSCRIBE feed"), "OK subscribed feed");
            let counts = Arc::clone(&counts);
            let stop = Arc::clone(&stop);
            let stamps = Arc::clone(&send_stamp);
            let latencies = Arc::clone(&latencies);
            std::thread::spawn(move || {
                let mut buf = [0u8; 16 * 1024];
                while !stop.load(Ordering::SeqCst) {
                    match c.stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            c.decoder.push(&buf[..n]);
                            while let Some(frame) = c.decoder.next_frame() {
                                let text = String::from_utf8(frame.unwrap()).unwrap();
                                let v = text
                                    .strip_prefix("UPDATE feed + ")
                                    .unwrap_or_else(|| panic!("unexpected push: {text}"))
                                    .parse::<u64>()
                                    .unwrap();
                                counts[i].fetch_add(1, Ordering::Relaxed);
                                if i == 0 {
                                    let sent = stamps[v as usize].load(Ordering::Relaxed);
                                    let now = t0.elapsed().as_nanos() as u64;
                                    latencies
                                        .lock()
                                        .unwrap()
                                        .push((now.saturating_sub(sent)) as f64 / 1e6);
                                }
                            }
                        }
                        Err(_) => {} // timeout tick: re-check stop
                    }
                }
            })
        })
        .collect();

    // Producers: each floods its value range over its own connection.
    let per = offered / producers_n as u64;
    let produce_start = Instant::now();
    let client_rejected = Arc::new(AtomicU64::new(0));
    let producer_threads: Vec<_> = (0..producers_n as u64)
        .map(|p| {
            let stamps = Arc::clone(&send_stamp);
            let rejected = Arc::clone(&client_rejected);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let end = if p == producers_n as u64 - 1 {
                    offered
                } else {
                    (p + 1) * per
                };
                for v in (p * per)..end {
                    stamps[v as usize].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let reply = c.call(&format!("INGEST s {v} {v}"));
                    if reply != "OK staged" {
                        assert!(reply.starts_with("ERR overloaded "), "{reply}");
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for t in producer_threads {
        t.join().unwrap();
    }
    let produce_secs = produce_start.elapsed().as_secs_f64();

    // Quiescence: staged buffer empty and the probe's count stable.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut last = (u64::MAX, Instant::now());
    loop {
        assert!(Instant::now() < deadline, "delivery never quiesced");
        let now = counts[0].load(Ordering::Relaxed);
        if now != last.0 {
            last = (now, Instant::now());
        } else if engine.admission().depth() == 0 && last.1.elapsed() > Duration::from_millis(300)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::SeqCst);
    for t in sub_threads {
        t.join().unwrap();
    }
    if let Some(d) = drainer {
        d.join().unwrap();
    }

    // Every subscriber saw the identical stream.
    let delivered = counts[0].load(Ordering::Relaxed);
    for (i, c) in counts.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            delivered,
            "subscriber {i} diverged from the probe"
        );
    }

    let ac = engine.admission();
    let (shed, rejected) = (ac.shed_total(), ac.rejected_total());
    // The network-level accounting, exact: what producers offered is
    // what subscribers saw plus what admission shed or rejected.
    assert_eq!(
        offered,
        delivered + shed + rejected,
        "socket-level accounting must balance"
    );
    // Rejections the clients counted are the rejections that happened.
    assert_eq!(client_rejected.load(Ordering::Relaxed), rejected);
    // Fan-out delivered every update to every subscriber, shed none.
    assert_eq!(server.metrics().updates_delivered.get(), delivered * subs_n as u64);
    assert_eq!(server.metrics().updates_dropped.get(), 0);
    match policy {
        OverloadPolicy::Block => {
            assert_eq!(shed + rejected, 0, "Block must deliver everything");
        }
        OverloadPolicy::Reject => assert_eq!(shed, 0),
        OverloadPolicy::ShedLowest => assert_eq!(rejected, 0),
    }

    let (p50, p99) = {
        let mut lat = latencies.lock().unwrap();
        if overdriven || lat.is_empty() {
            (None, None)
        } else {
            lat.sort_by(f64::total_cmp);
            (Some(percentile(&lat, 0.50)), Some(percentile(&lat, 0.99)))
        }
    };
    let peak_depth = ac.peak_depth();
    server.shutdown();
    ArmResult {
        offered,
        delivered,
        shed,
        rejected,
        peak_depth,
        produce_secs,
        p50_ms: p50,
        p99_ms: p99,
    }
}

/// Connection-churn smoke: open and close connections against both
/// frontends and require the shared `active_connections` gauge to
/// return to zero — the regression guard for the accept-loop slot leak
/// (a slot claimed at accept must be released on every exit path).
/// Returns the number of connections churned.
fn churn_smoke(rounds: usize) -> u64 {
    let engine = Arc::new(EventServer::in_memory(ServerConfig::default()).unwrap());
    let mut server = NetServer::start(
        Arc::clone(&engine),
        NetConfig {
            pump_interval: None,
            ..Default::default()
        },
    )
    .unwrap();
    let tcp = server.tcp_addr();
    let http = server.http_addr().expect("churn smoke needs the HTTP frontend");
    for _ in 0..rounds {
        let mut c = Client::connect(tcp);
        assert_eq!(c.call("PING"), "PONG");
        drop(c);
        let mut s = TcpStream::connect(http).unwrap();
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: e17\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).unwrap();
        assert!(resp.starts_with(b"HTTP/1.1 200"), "metrics scrape failed");
    }
    // Teardown is asynchronous: poll the gauge back to zero.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let active = server.hub().active_connections.load(Ordering::Relaxed);
        if active == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gauge leak: {active} connection slots never released"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.metrics().conns_rejected.get(), 0);
    server.shutdown();
    rounds as u64 * 2
}

/// Run E17.
pub fn run(scale: Scale) -> Table {
    let subs = scale.pick(64, 96);
    let producers = scale.pick(4, 8);
    let offered = scale.pick(2_000, 12_000) as u64;
    let block_capacity = 1_024;
    let tiny_capacity = 8;

    let mut table = Table::new(
        "E17: server — socket ingest with mass fan-out (64+ subscribers)",
        &[
            "arm",
            "subs",
            "offered",
            "delivered",
            "shed",
            "rejected",
            "peak_depth",
            "ingest_evs",
            "fanout_p50_ms",
            "fanout_p99_ms",
        ],
    );

    let arms = [
        ("block", OverloadPolicy::Block, block_capacity),
        ("reject", OverloadPolicy::Reject, tiny_capacity),
        ("shed", OverloadPolicy::ShedLowest, tiny_capacity),
    ];
    for (name, policy, capacity) in arms {
        let r = run_arm(policy, subs, producers, offered, capacity);
        let fmt_ms = |v: Option<f64>| v.map_or("-".into(), |v| format!("{v:.2}"));
        table.row(vec![
            name.into(),
            subs.to_string(),
            r.offered.to_string(),
            r.delivered.to_string(),
            r.shed.to_string(),
            r.rejected.to_string(),
            r.peak_depth.to_string(),
            fmt_rate(r.offered as f64 / r.produce_secs),
            fmt_ms(r.p50_ms),
            fmt_ms(r.p99_ms),
        ]);
    }
    table.note(format!(
        "{producers} producer + {subs} subscriber TCP connections per arm; \
         stateless projection query = one pushed UPDATE per evaluated event"
    ));
    table.note(format!(
        "block: capacity {block_capacity}, 1 ms background pump; reject/shed: capacity \
         {tiny_capacity} drained every 2 ms over a PUMP connection to force engagement"
    ));
    table.note(
        "asserted inline on every arm: all subscribers identical; offered == delivered + \
         shed + rejected; client-observed rejections == admission counter; hub delivered \
         == delivered x subs with zero fan-out drops",
    );
    table.note(
        "fanout latency = producer send -> probe subscriber receipt, same host; '-' on \
         overdriven arms (latency under rejection is not meaningful)",
    );
    let churned = churn_smoke(scale.pick(20, 50));
    table.note(format!(
        "connection-churn smoke: {churned} TCP+HTTP connects opened and closed, \
         active_connections back to 0, 0 rejected"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI smoke: every inline assertion in `run_arm` holds at quick
    /// scale with the full 64-subscriber fan-in, and the overdriven
    /// arms really engage their policies.
    #[test]
    fn socket_accounting_balances_at_quick_scale() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let (delivered, shed, rejected): (u64, u64, u64) = (
                row[3].parse().unwrap(),
                row[4].parse().unwrap(),
                row[5].parse().unwrap(),
            );
            match row[0].as_str() {
                "block" => {
                    assert_eq!(delivered, 2_000, "block must deliver the full stream");
                    assert_eq!(shed + rejected, 0);
                }
                "reject" => assert!(rejected > 0, "overdrive must reject:\n{}", t.render()),
                "shed" => assert!(shed > 0, "overdrive must shed:\n{}", t.render()),
                other => panic!("unexpected arm {other}"),
            }
        }
    }
}
