//! E10 — Recoverability, availability, transactional support
//! (§2.2.b.ii.3 and §2.2.d.iii.3).
//!
//! Part 1: crash-recovery replay time vs journal size, with and without
//! a checkpoint (expected: replay linear in the journal; checkpoint
//! collapses it).
//!
//! Part 2: delivery guarantees under failure — a lossy, partitioning
//! link between two nodes: expected zero lost messages, duplicates
//! bounded and absorbed by receiver-side dedup.

use std::sync::Arc;
use std::time::Instant;

use evdb_dist::{LinkConfig, Node, QueueForwarder, SimNetwork};
use evdb_queue::QueueConfig;
use evdb_storage::{Database, DbOptions, SyncPolicy};
use evdb_types::{Clock, DataType, Record, Schema, SimClock, TimestampMs, Value};

use super::{tmpdir, Scale, Table};
use crate::fmt_ms;

fn recovery_row(nrows: usize, checkpoint: bool) -> Vec<String> {
    let dir = tmpdir("e10");
    let opts = || DbOptions {
        sync: SyncPolicy::Never, // isolate replay cost from fsync cost
        ..Default::default()
    };
    {
        let db = Database::open(&dir, opts()).unwrap();
        db.create_table(
            "t",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
            "id",
        )
        .unwrap();
        for i in 0..nrows {
            db.insert(
                "t",
                Record::from_iter([Value::Int(i as i64), Value::Float(i as f64)]),
            )
            .unwrap();
        }
        if checkpoint {
            db.checkpoint().unwrap();
        }
        // Drop without checkpoint = crash (WAL holds everything).
    }
    let wal_bytes = std::fs::metadata(dir.join("evdb.wal"))
        .map(|m| m.len())
        .unwrap_or(0);
    let t0 = Instant::now();
    let db = Database::open(&dir, opts()).unwrap();
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let rows = db.table("t").unwrap().len();
    assert_eq!(rows, nrows, "recovery must restore every committed row");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    vec![
        nrows.to_string(),
        if checkpoint { "yes" } else { "no" }.into(),
        (wal_bytes / 1024).to_string(),
        fmt_ms(recover_ms),
        rows.to_string(),
    ]
}

fn delivery_under_failures(scale: Scale) -> (usize, u64, u64, u64) {
    let n = scale.pick(200, 2_000);
    let clock = SimClock::new(TimestampMs(0));
    let a = Node::new("a", clock.clone()).unwrap();
    let b = Node::new("b", clock.clone()).unwrap();
    let schema = Schema::of(&[("x", DataType::Int)]);
    for node in [&a, &b] {
        node.queues()
            .create_queue(
                "q",
                Arc::clone(&schema),
                QueueConfig::default().visibility_timeout(300).max_attempts(100),
            )
            .unwrap();
    }
    b.queues().subscribe("q", "sink").unwrap();
    let mut net = SimNetwork::new(
        LinkConfig {
            latency_ms: 10,
            loss: 0.3,
            ..Default::default()
        },
        101,
    );
    let mut fwd = QueueForwarder::new(&a, "q", "b", "q").unwrap();
    for i in 0..n {
        a.queues()
            .enqueue("q", Record::from_iter([Value::Int(i as i64)]), "t")
            .unwrap();
    }
    let mut received: Vec<i64> = Vec::new();
    let partition_window = (40usize, 80usize); // steps the link is down
    for step in 0..30_000 {
        if step == partition_window.0 {
            net.set_partition("a", "b", true);
        }
        if step == partition_window.1 {
            net.set_partition("a", "b", false);
        }
        let now = clock.now();
        fwd.pump(&a, &mut net, now).unwrap();
        for pkt in net.poll(now) {
            if QueueForwarder::is_data(&pkt) {
                let ack = QueueForwarder::receive(&b, &pkt).unwrap();
                net.send(ack, now);
            } else if fwd.owns_ack(&pkt) {
                fwd.on_ack(&a, &pkt).unwrap();
            }
        }
        for d in b.queues().dequeue("q", "sink", 64).unwrap() {
            received.push(d.message.payload.get(0).unwrap().as_int().unwrap());
            b.queues().ack(&d).unwrap();
        }
        if received.len() >= n && a.queues().depth("q").unwrap() == 0 {
            break;
        }
        clock.advance(50);
    }
    received.sort_unstable();
    received.dedup();
    let delivered = received.len();
    let resends = fwd.sends.saturating_sub(n as u64);
    let dup_accepts = evdb_dist::forwarder::audit_count(&b) as u64 - delivered as u64;
    (n - delivered, fwd.sends, resends, dup_accepts)
}

/// Run E10.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E10: recovery & delivery guarantees",
        &["rows", "checkpoint", "wal_KiB", "recover_ms", "recovered"],
    );
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 5_000],
        Scale::Full => vec![1_000, 10_000, 50_000],
    };
    for n in sizes {
        table.row(recovery_row(n, false));
    }
    let n_ck = scale.pick(5_000, 50_000);
    table.row(recovery_row(n_ck, true));
    table.note("replay is linear in journal size; checkpoint collapses it to table load");

    let (lost, sent, resends, dups) = delivery_under_failures(scale);
    table.note(format!(
        "delivery under 30% loss + partition: lost={lost} sent={sent} resends={resends} duplicate_accepts={dups}"
    ));
    table.note("at-least-once + receiver dedup ⇒ zero lost, duplicates absorbed");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_restores_and_nothing_is_lost() {
        let t = run(Scale::Quick);
        for row in &t.rows {
            assert_eq!(row[0], row[4], "rows must equal recovered");
        }
        let delivery_note = t
            .notes
            .iter()
            .find(|n| n.starts_with("delivery"))
            .unwrap();
        assert!(delivery_note.contains("lost=0"), "{delivery_note}");
    }
}
