//! E1 — Event capture mechanisms head-to-head (§2.2.a.i–iii).
//!
//! Workload: `n` single-row transactions against one table, under four
//! configurations: no capture (baseline), AFTER trigger, journal mining,
//! and query-snapshot polling. Measures write-path time (commit
//! overhead), capture-side time, and events captured.
//!
//! Expected shape: triggers tax the write path but capture everything
//! with zero extra work; journal mining leaves the write path untouched
//! and pays a small batched mining cost; query polling leaves the write
//! path untouched but pays a cost proportional to the *result set* per
//! poll and collapses intermediate states.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use evdb_storage::{Database, DbOptions, JournalMiner, QuerySnapshot, TriggerOps, TriggerTiming};
use evdb_types::{DataType, Record, Schema, Value};

use super::{Scale, Table};
use crate::{fmt_ms, fmt_rate};

fn fresh_db() -> Arc<Database> {
    let db = Database::in_memory(DbOptions::default()).unwrap();
    db.create_table(
        "t",
        Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
        "id",
    )
    .unwrap();
    db
}

fn write_rows(db: &Database, n: usize) {
    for i in 0..n {
        db.insert(
            "t",
            Record::from_iter([Value::Int(i as i64), Value::Float(i as f64)]),
        )
        .unwrap();
    }
}

/// Run E1.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(5_000, 100_000);
    let mut table = Table::new(
        "E1: capture mechanisms — trigger vs journal vs query poll",
        &["mechanism", "write_ms", "capture_ms", "events", "writes/s", "overhead_%"],
    );

    // Baseline: no capture.
    let db = fresh_db();
    let t0 = Instant::now();
    write_rows(&db, n);
    let base_write = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "none".into(),
        fmt_ms(base_write),
        "-".into(),
        "0".into(),
        fmt_rate(n as f64 / base_write * 1e3),
        "0.0".into(),
    ]);

    // Trigger capture (synchronous, on the write path).
    let db = fresh_db();
    let captured = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&captured);
    db.create_trigger(
        "cap",
        "t",
        TriggerTiming::After,
        TriggerOps::ALL,
        None,
        Arc::new(move |_| {
            c2.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }),
    )
    .unwrap();
    let t0 = Instant::now();
    write_rows(&db, n);
    let trig_write = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "trigger".into(),
        fmt_ms(trig_write),
        "0 (inline)".into(),
        captured.load(Ordering::Relaxed).to_string(),
        fmt_rate(n as f64 / trig_write * 1e3),
        format!("{:.1}", (trig_write / base_write - 1.0) * 100.0),
    ]);

    // Journal mining (asynchronous).
    let db = fresh_db();
    let mut miner = JournalMiner::from_now(&db);
    let t0 = Instant::now();
    write_rows(&db, n);
    let j_write = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let events = miner.poll(&db).unwrap().len();
    let j_capture = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "journal".into(),
        fmt_ms(j_write),
        fmt_ms(j_capture),
        events.to_string(),
        fmt_rate(n as f64 / j_write * 1e3),
        format!("{:.1}", (j_write / base_write - 1.0) * 100.0),
    ]);

    // Query polling (one poll at the end; sees only net state).
    let db = fresh_db();
    let mut snap = QuerySnapshot::new("t", evdb_expr::Expr::lit(true));
    snap.poll(&db).unwrap(); // initial empty fill
    let t0 = Instant::now();
    write_rows(&db, n);
    let q_write = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let events = snap.poll(&db).unwrap().len();
    let q_capture = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "query_poll".into(),
        fmt_ms(q_write),
        fmt_ms(q_capture),
        events.to_string(),
        fmt_rate(n as f64 / q_write * 1e3),
        format!("{:.1}", (q_write / base_write - 1.0) * 100.0),
    ]);

    table.note(format!("{n} single-row transactions, in-memory journal"));
    table.note("triggers pay on the write path; journal mining is off it; polling cost ∝ result set");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_mechanisms_capture_everything() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        // trigger and journal capture n events; query poll sees n inserts.
        assert_eq!(t.rows[1][3], t.rows[2][3]);
        assert_eq!(t.rows[2][3], t.rows[3][3]);
    }
}
