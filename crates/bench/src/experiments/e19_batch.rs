//! E19 — the batched hot path end to end (DESIGN.md D15): does
//! vectorized dispatch actually buy throughput where evaluation
//! dominates, and does the sharded pipeline built on it scale?
//!
//! Two claims, two sections:
//!
//! * **eval duel** — E15's candidate-verification workload, timed
//!   per-event (`matches`/`match_record`, the dispatch the pipeline
//!   used before D15) vs batched (`matches_batch`/`match_batch` over
//!   [`BATCH`]-row chunks with reused scratch). Four bare-VM arms
//!   isolate single-predicate dispatch (`eval_wide` stresses the fused
//!   field-vs-constant fast paths); the `rules_verify` arm runs the
//!   full indexed matcher, where rule-major grouping amortizes the
//!   entire verify stage. Same alternating-order/median method as
//!   E13/E15. In optimized builds the best arm must clear **≥1.5×** —
//!   that floor is asserted in-run, not just eyeballed, because it is
//!   the premise the batched pipeline rests on.
//! * **pipeline scaling** — E11's multi-stream workload through the
//!   sharded pump (whose workers now evaluate via the batch path and
//!   merge through per-shard staging). Reported as speedup over the
//!   one-worker batched baseline. Following E11's convention, arms with
//!   more workers than detected cores are **skipped** with an
//!   explanatory cell, never reported as if overhead ratios were
//!   speedups; every row records the core count. On hosts that can
//!   scale, each ran arm must reach **≥0.7× linear** up to
//!   min(workers, cores) (asserted in-run in optimized builds).
//!
//! Per-event/batch equivalence is not this experiment's job: it is
//! enforced differentially by `tests/prop_batch_eval.rs` (expressions),
//! `tests/prop_order_equivalence.rs` and `tests/parallel_pump.rs`
//! (pipeline). E19 only measures — but it measures with the agreement
//! checks left on.

use std::sync::Arc;
use std::time::Instant;

use evdb_core::PumpMode;
use evdb_expr::{parse, BatchScratch, CompiledExpr};
use evdb_rules::{IndexedMatcher, MatchScratch, Matcher, Rule, VerifyMode};
use evdb_types::{Record, Result};

use super::e11_parallel::{drive, multi_stream_server};
use super::e15_compiled::{order_events, order_rules, order_schema};
use super::{Scale, Table};
use crate::fmt_rate;

/// Rows per `matches_batch` call — the pipeline's working unit.
const BATCH: usize = 256;

/// The eval-bound arms: E15's verification residuals (no leading
/// equality to short-circuit on), which is where dispatch cost shows.
const ARMS: &[(&str, &str)] = &[
    (
        "eval_numeric",
        "px BETWEEN 80 AND 220 AND qty > 150 AND qty <= 900",
    ),
    (
        "eval_like",
        "venue LIKE '%limit%' OR venue LIKE '%iceberg%'",
    ),
    (
        "eval_mixed",
        "qty BETWEEN 100 AND 900 AND px * 1.5 + 10 > 60 AND venue LIKE '%sweep%'",
    ),
    (
        "eval_wide",
        "px > 10 AND px < 490 AND qty > 5 AND qty < 995 AND px BETWEEN 20 AND 480 AND qty BETWEEN 10 AND 990 AND px + qty > 30 AND px * 2.0 < 1000",
    ),
];

/// ns/event and match count for the per-event dispatch loop.
fn per_event_ns(compiled: &CompiledExpr, events: &[Record]) -> (f64, u64) {
    let t0 = Instant::now();
    let mut matches = 0u64;
    for e in events {
        matches += compiled.matches(e).unwrap() as u64;
    }
    (
        t0.elapsed().as_secs_f64() * 1e9 / events.len() as f64,
        matches,
    )
}

/// ns/event and match count for the batched dispatch loop.
fn batched_ns(
    compiled: &CompiledExpr,
    events: &[Record],
    scratch: &mut BatchScratch,
    out: &mut Vec<Result<bool>>,
) -> (f64, u64) {
    let t0 = Instant::now();
    let mut matches = 0u64;
    for chunk in events.chunks(BATCH) {
        compiled.matches_batch(chunk, |r| r, scratch, out);
        matches += out.iter().filter(|r| matches!(r, Ok(true))).count() as u64;
    }
    (
        t0.elapsed().as_secs_f64() * 1e9 / events.len() as f64,
        matches,
    )
}

/// Alternating-order rounds of per-event vs batched dispatch of one
/// predicate; returns (best per-event ns, best batched ns, median ratio).
fn duel(predicate: &str, events: &[Record], rounds: usize) -> (f64, f64, f64) {
    let schema = order_schema();
    let bound = parse(predicate).unwrap().bind_predicate(&schema).unwrap();
    let compiled = CompiledExpr::compile(&bound);
    let mut scratch = BatchScratch::default();
    let mut out = Vec::new();
    // Warm-up + agreement check (the equivalence tests own the full
    // contract; this guards the measurement itself).
    let (_, m1) = per_event_ns(&compiled, events);
    let (_, m2) = batched_ns(&compiled, events, &mut scratch, &mut out);
    assert_eq!(m1, m2, "dispatch paths disagree on `{predicate}`");

    let (mut best_p, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let (tp, tb) = if r % 2 == 0 {
            let a = per_event_ns(&compiled, events).0;
            let b = batched_ns(&compiled, events, &mut scratch, &mut out).0;
            (a, b)
        } else {
            let b = batched_ns(&compiled, events, &mut scratch, &mut out).0;
            let a = per_event_ns(&compiled, events).0;
            (a, b)
        };
        best_p = best_p.min(tp);
        best_b = best_b.min(tb);
        ratios.push(tp / tb);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (best_p, best_b, ratios[ratios.len() / 2])
}

/// Alternating-order rounds of per-record vs batched rule matching over
/// E15's indexed workload — the arm where batching pays most: rule-major
/// grouping runs each rule's predicate once over all its candidate
/// records instead of re-dispatching per (record, rule) pair. Returns
/// (best per-record ns, best batched ns, median ratio).
fn rules_duel(events: &[Record], nrules: usize, rounds: usize) -> (f64, f64, f64) {
    let schema = order_schema();
    let mut matcher = IndexedMatcher::new(Arc::clone(&schema));
    for (i, r) in order_rules(nrules, 8, 29).into_iter().enumerate() {
        matcher.add_rule(Rule::new(i as u64, "", r)).unwrap();
    }
    matcher.set_verify_mode(VerifyMode::Compiled);
    let refs: Vec<&Record> = events.iter().collect();
    let mut scratch = MatchScratch::new();
    let mut out = Vec::new();

    let per_record = |m: &IndexedMatcher| -> (f64, u64) {
        let t0 = Instant::now();
        let mut hits = 0u64;
        for e in events {
            hits += m.match_record(e).unwrap().len() as u64;
        }
        (
            t0.elapsed().as_secs_f64() * 1e9 / events.len() as f64,
            hits,
        )
    };
    let mut batched = |m: &IndexedMatcher| -> (f64, u64) {
        let t0 = Instant::now();
        let mut hits = 0u64;
        for chunk in refs.chunks(BATCH) {
            m.match_batch(chunk, &mut scratch, &mut out);
            hits += out
                .iter()
                .map(|r| r.as_ref().unwrap().len() as u64)
                .sum::<u64>();
        }
        (
            t0.elapsed().as_secs_f64() * 1e9 / events.len() as f64,
            hits,
        )
    };
    // Warm-up + agreement check.
    let (_, h1) = per_record(&matcher);
    let (_, h2) = batched(&matcher);
    assert_eq!(h1, h2, "dispatch paths disagree on rule matches");

    let (mut best_p, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let (tp, tb) = if r % 2 == 0 {
            let a = per_record(&matcher).0;
            let b = batched(&matcher).0;
            (a, b)
        } else {
            let b = batched(&matcher).0;
            let a = per_record(&matcher).0;
            (a, b)
        };
        best_p = best_p.min(tp);
        best_b = best_b.min(tb);
        ratios.push(tp / tb);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (best_p, best_b, ratios[ratios.len() / 2])
}

/// Run E19.
pub fn run(scale: Scale) -> Table {
    let nevents = scale.pick(4_000, 40_000);
    let rounds = scale.pick(5, 7);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let events = order_events(nevents, 8, 83);

    let mut table = Table::new(
        "E19: batched hot path — vectorized dispatch and pipeline scaling (D15)",
        &["arm", "per_event", "batched", "speedup", "unit", "cores"],
    );

    let mut best_eval = 0f64;
    for (name, predicate) in ARMS {
        let (np, nb, speedup) = duel(predicate, &events, rounds);
        best_eval = best_eval.max(speedup);
        table.row(vec![
            name.to_string(),
            format!("{np:.0}"),
            format!("{nb:.0}"),
            format!("{speedup:.1}x"),
            "ns/event".into(),
            cores.to_string(),
        ]);
    }
    // Rule matching, the pipeline's dominant eval stage: rule-major
    // batching amortizes the whole verify step, not just one VM call.
    let nrules = scale.pick(1_000, 10_000);
    let (np, nb, rules_speedup) = rules_duel(&events, nrules, rounds);
    best_eval = best_eval.max(rules_speedup);
    table.row(vec![
        "rules_verify".into(),
        format!("{np:.0}"),
        format!("{nb:.0}"),
        format!("{rules_speedup:.1}x"),
        "ns/event".into(),
        cores.to_string(),
    ]);
    // The floor the batched pipeline is premised on. Unoptimized builds
    // lose the tight-loop advantage to un-inlined helpers, so the hard
    // assert is release-only (the harness and CI smoke run --release).
    if !cfg!(debug_assertions) {
        assert!(
            best_eval >= 1.5,
            "batched dispatch only {best_eval:.2}x over per-event on the best eval-bound arm \
             (floor 1.5x)"
        );
    }

    // Pipeline scaling: the E11 multi-stream workload through the
    // sharded pump, whose workers evaluate in batches and merge through
    // per-shard staging. Baseline is the one-worker batched pipeline.
    let pn = scale.pick(4_000, 60_000);
    let mut base_rate = None;
    for workers in [1usize, 2, 4, 8] {
        let name = format!("pipeline-shard-{workers}");
        if workers > cores {
            table.row(vec![
                name,
                "-".into(),
                "-".into(),
                format!("skipped ({cores} cores < {workers} workers)"),
                "-".into(),
                cores.to_string(),
            ]);
            continue;
        }
        let server = multi_stream_server(pn, 311);
        let (rate, _busy) = drive(&server, pn, PumpMode::Sharded { workers });
        let base = *base_rate.get_or_insert(rate);
        let speedup = rate / base;
        table.row(vec![
            name,
            "-".into(),
            fmt_rate(rate),
            format!("{speedup:.2}x"),
            "events/s".into(),
            cores.to_string(),
        ]);
        // Scaling floor, only meaningful where the host can actually
        // run the workers in parallel (skip logic guarantees
        // workers <= cores here).
        if !cfg!(debug_assertions) && workers > 1 {
            assert!(
                speedup >= 0.7 * workers as f64,
                "pipeline at {workers} workers reached only {speedup:.2}x \
                 (floor {:.2}x = 0.7x linear)",
                0.7 * workers as f64
            );
        }
    }

    table.note(format!(
        "{nevents} events/arm, batch size {BATCH}, {rounds} alternating-order rounds; \
         eval speedup is the median per-round ratio (E13 method), ns/event the per-arm best"
    ));
    table.note(format!(
        "host has {cores} core(s); pipeline arms with workers > cores are skipped, not \
         reported as speedups (E11 convention)"
    ));
    table.note(
        "per-event/batched equivalence is enforced by tests/prop_batch_eval.rs, \
         tests/parallel_pump.rs and tests/prop_order_equivalence.rs",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_reports_all_arms_and_agrees() {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let t = run(Scale::Quick);
        // 5 eval arms (4 bare VM + rules_verify) + 4 pipeline arms,
        // ran or skipped.
        assert_eq!(t.rows.len(), 9);
        for row in &t.rows {
            assert_eq!(row[5].parse::<usize>().unwrap(), cores);
        }
        for row in t.rows.iter().take(5) {
            assert!(row[3].ends_with('x'), "{row:?}");
        }
        for row in t.rows.iter().skip(5) {
            let workers: usize = row[0].trim_start_matches("pipeline-shard-").parse().unwrap();
            if workers > cores {
                assert!(row[3].starts_with("skipped ("), "{row:?}");
            } else {
                assert!(row[3].ends_with('x'), "{row:?}");
            }
        }
    }

    #[test]
    fn batched_dispatch_beats_per_event_in_release() {
        // The in-run 1.5x floor only arms in optimized builds; in debug
        // builds still require the batch path to not be pathologically
        // slower (agreement is checked inside `duel` either way).
        let t = run(Scale::Quick);
        let best = t
            .rows
            .iter()
            .take(5)
            .map(|r| r[3].trim_end_matches('x').parse::<f64>().unwrap())
            .fold(0f64, f64::max);
        let floor = if cfg!(debug_assertions) { 0.5 } else { 1.5 };
        assert!(best >= floor, "best eval speedup {best:.2}x < {floor}x");
    }
}
