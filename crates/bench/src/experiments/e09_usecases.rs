//! E9 — End-to-end use cases (§2.2.e): the four application domains the
//! tutorial names, run through the full `EventServer` pipeline.
//!
//! * **finance** — tick capture → windowed VWAP CQL + price-spike alert
//!   rules; throughput and event→notification latency.
//! * **utilities** — meter readings → per-meter seasonal detectors.
//! * **chemsecure** — hazmat sensor events → broker routing to the
//!   authorized, available responder; routing correctness vs ground
//!   truth.
//! * **sensornet** — two-node fabric: detections captured on a field
//!   node, forwarded over a lossy link to the command node, delivered to
//!   a responder service; zero loss, bounded duplicates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use evdb_analytics::detector::UpdatePolicy;
use evdb_analytics::SeasonalNaiveModel;
use evdb_core::EventServer;
use evdb_core::server::ServerConfig;
use evdb_dist::{LinkConfig, Node, QueueForwarder, SimNetwork};
use evdb_expr::parse;
use evdb_queue::QueueConfig;
use evdb_types::{Clock, DataType, Record, Schema, SimClock, TimestampMs, Value};

use super::{Scale, Table};
use crate::fmt_rate;
use crate::workloads::{hazmat_events, market_ticks, meter_trace, tick_schema};

fn finance(scale: Scale) -> Vec<String> {
    let n = scale.pick(5_000, 100_000);
    let server = EventServer::in_memory(ServerConfig::default()).unwrap();
    server.create_stream("ticks", tick_schema()).unwrap();
    server
        .register_cql(
            "vwap",
            "SELECT sym, avg(px) AS apx, sum(qty) AS vol FROM ticks [RANGE 1 s] GROUP BY sym",
        )
        .unwrap();
    server
        .add_alert_rule("spike", "ticks", "px > 140", 2.0, Some("sym"))
        .unwrap();
    let ticks = market_ticks(n, 16, 1, 91);
    let t0 = Instant::now();
    let mut derived = 0u64;
    let mut notified = 0u64;
    for t in &ticks {
        let st = server.ingest("ticks", t.ts, t.record()).unwrap();
        derived += st.derived;
        notified += st.notified;
    }
    let rate = n as f64 / t0.elapsed().as_secs_f64();
    let snap = server.metrics().snapshot();
    vec![
        "finance".into(),
        fmt_rate(rate),
        derived.to_string(),
        notified.to_string(),
        format!("{} suppressed by VIRT", snap.suppressed),
    ]
}

fn utilities(scale: Scale) -> Vec<String> {
    let n = scale.pick(5_000, 50_000);
    let clock = SimClock::new(TimestampMs(0));
    let server = EventServer::in_memory(ServerConfig {
        clock: clock.clone(),
        ..Default::default()
    })
    .unwrap();
    server
        .create_stream(
            "meters",
            Schema::of(&[("meter", DataType::Str), ("kw", DataType::Float)]),
        )
        .unwrap();
    server
        .add_detector(
            "load",
            "meters",
            "kw",
            Some("meter"),
            UpdatePolicy::Always,
            || Box::new(SeasonalNaiveModel::new(96, 3.0, 4.0)),
        )
        .unwrap();
    let trace = meter_trace(n, 96, 0.01, 92);
    let t0 = Instant::now();
    let mut notified = 0u64;
    for (i, (ts, v, _)) in trace.iter().enumerate() {
        let meter = format!("m{}", i % 8);
        notified += server
            .ingest(
                "meters",
                *ts,
                Record::from_iter([Value::from(meter), Value::Float(*v)]),
            )
            .unwrap()
            .notified;
    }
    let rate = n as f64 / t0.elapsed().as_secs_f64();
    vec![
        "utilities".into(),
        fmt_rate(rate),
        "-".into(),
        notified.to_string(),
        format!("{} deviations", server.metrics().snapshot().deviations),
    ]
}

fn chemsecure(scale: Scale) -> Vec<String> {
    let n = scale.pick(2_000, 20_000);
    let server = EventServer::in_memory(ServerConfig::default()).unwrap();
    let broker = server.broker();
    broker
        .create_topic("hazmat", crate::workloads::hazmat_schema())
        .unwrap();
    // Responders subscribe with authorization predicates: each covers
    // one site and is qualified for one chemical.
    for site in 0..3 {
        for (c, chem) in ["CL2", "NH3", "H2S"].iter().enumerate() {
            broker
                .subscribe(
                    "hazmat",
                    &format!("responder_{site}_{c}"),
                    parse(&format!(
                        "site = 'site{site}' AND chem = '{chem}' AND level > 80"
                    ))
                    .unwrap(),
                )
                .unwrap();
        }
    }
    let events = hazmat_events(n, 0.03, 93);
    let t0 = Instant::now();
    let mut routed = 0u64;
    let mut misrouted = 0u64;
    for (rec, incident) in &events {
        let publication = broker.publish("hazmat", rec).unwrap();
        let hit = !publication.matched_subscribers.is_empty();
        if hit != *incident {
            misrouted += 1;
        }
        routed += publication.matched_subscribers.len() as u64;
    }
    let rate = n as f64 / t0.elapsed().as_secs_f64();
    vec![
        "chemsecure".into(),
        fmt_rate(rate),
        routed.to_string(),
        misrouted.to_string(),
        "routing matches ground truth when misrouted=0".into(),
    ]
}

fn sensornet(scale: Scale) -> Vec<String> {
    let n = scale.pick(500, 5_000);
    let clock = SimClock::new(TimestampMs(0));
    let field = Node::new("field", clock.clone()).unwrap();
    let command = Node::new("command", clock.clone()).unwrap();
    let schema = Schema::of(&[("sensor", DataType::Str), ("level", DataType::Float)]);
    for node in [&field, &command] {
        node.queues()
            .create_queue(
                "detections",
                Arc::clone(&schema),
                QueueConfig::default().visibility_timeout(500).max_attempts(100),
            )
            .unwrap();
    }
    command.queues().subscribe("detections", "responders").unwrap();
    let mut net = SimNetwork::new(
        LinkConfig {
            latency_ms: 20,
            jitter_ms: 10,
            loss: 0.2,
            ..Default::default()
        },
        94,
    );
    let mut fwd = QueueForwarder::new(&field, "detections", "command", "detections").unwrap();

    for i in 0..n {
        field
            .queues()
            .enqueue(
                "detections",
                Record::from_iter([
                    Value::from(format!("s{}", i % 32)),
                    Value::Float((i % 100) as f64),
                ]),
                "sensor",
            )
            .unwrap();
    }
    let received = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    // Drive the fabric until everything is through (or step budget).
    for _ in 0..20_000 {
        let now = clock.now();
        fwd.pump(&field, &mut net, now).unwrap();
        for pkt in net.poll(now) {
            if QueueForwarder::is_data(&pkt) {
                let ack = QueueForwarder::receive(&command, &pkt).unwrap();
                net.send(ack, now);
            } else if fwd.owns_ack(&pkt) {
                fwd.on_ack(&field, &pkt).unwrap();
            }
        }
        // Responders consume on the command node.
        for d in command.queues().dequeue("detections", "responders", 64).unwrap() {
            command.queues().ack(&d).unwrap();
            received.fetch_add(1, Ordering::Relaxed);
        }
        if received.load(Ordering::Relaxed) as usize >= n
            && field.queues().depth("detections").unwrap() == 0
        {
            break;
        }
        clock.advance(50);
    }
    let wall = t0.elapsed().as_secs_f64();
    let got = received.load(Ordering::Relaxed);
    vec![
        "sensornet".into(),
        fmt_rate(got as f64 / wall),
        got.to_string(),
        (fwd.sends - got).to_string(),
        format!(
            "{} of {n} delivered over 20% lossy link; resends={}",
            got,
            fwd.sends.saturating_sub(n as u64)
        ),
    ]
}

/// Run E9.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E9: use cases end-to-end (finance / utilities / ChemSecure / SensorNet)",
        &["use_case", "events/s", "derived|routed", "notified|extra", "detail"],
    );
    table.row(finance(scale));
    table.row(utilities(scale));
    table.row(chemsecure(scale));
    table.row(sensornet(scale));
    table.note("each row drives the full pipeline for one §2.2.e use case");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_use_cases_complete() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        // ChemSecure routing must match ground truth exactly.
        assert_eq!(t.rows[2][3], "0");
        // SensorNet must deliver all 500 quick-scale detections.
        assert_eq!(t.rows[3][2], "500");
    }

    #[test]
    fn forwarder_audit_present() {
        // Sanity: audit helper compiles/links from this crate too.
        let clock = SimClock::new(TimestampMs(0));
        let node = Node::new("n", clock).unwrap();
        assert_eq!(evdb_dist::forwarder::audit_count(&node), 0);
    }
}
