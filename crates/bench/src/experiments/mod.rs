//! Experiment implementations E1–E19 (see DESIGN.md §5 for the mapping
//! to paper claims, and EXPERIMENTS.md for recorded results).
//!
//! Each experiment exposes `run(scale) -> Table`: `Scale::Quick` for CI
//! and tests, `Scale::Full` for the numbers recorded in EXPERIMENTS.md.

pub mod e01_capture;
pub mod e02_queue;
pub mod e03_rules;
pub mod e04_churn;
pub mod e05_cq;
pub mod e06_pattern;
pub mod e07_internal;
pub mod e08_analytics;
pub mod e09_usecases;
pub mod e10_recovery;
pub mod e11_parallel;
pub mod e12_torture;
pub mod e13_observability;
pub mod e14_overload;
pub mod e15_compiled;
pub mod e16_retraction;
pub mod e17_server;
pub mod e18_history;
pub mod e19_batch;

/// Workload size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small: seconds per experiment; used by tests.
    Quick,
    /// Full: the EXPERIMENTS.md numbers.
    Full,
}

impl Scale {
    /// Pick a size by scale.
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id + title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (expected shape, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Run every experiment at the given scale and render all tables.
pub fn run_all(scale: Scale) -> String {
    let mut out = String::new();
    let tables = vec![
        e01_capture::run(scale),
        e02_queue::run(scale),
        e03_rules::run(scale),
        e04_churn::run(scale),
        e05_cq::run(scale),
        e06_pattern::run(scale),
        e07_internal::run(scale),
        e08_analytics::run(scale),
        e09_usecases::run(scale),
        e10_recovery::run(scale),
        e11_parallel::run(scale),
        e12_torture::run(scale),
        e13_observability::run(scale),
        e14_overload::run(scale),
        e15_compiled::run(scale),
        e16_retraction::run(scale),
        e17_server::run(scale),
        e18_history::run(scale),
        e19_batch::run(scale),
    ];
    for t in tables {
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fresh unique temp dir for durable-database experiments.
pub fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "evdb-bench-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).expect("create tmpdir");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("shape holds");
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("long_header"));
        assert!(s.contains("note: shape holds"));
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
