//! E15 — compiled predicate evaluation (DESIGN.md D11): the tutorial's
//! "the evaluation of internal data can significantly be optimized"
//! (§2.2.b.i.3), measured where evaluation actually dominates — the
//! candidate-verification step of E3's indexed-match workload.
//!
//! Two engines over the same bound predicates: the tree-walking
//! interpreter (the differential-testing oracle) and the bytecode VM
//! (`CompiledExpr`) with constant folding, conjunct reordering and
//! precompiled LIKE shapes. Three verification arms isolate the per-event
//! cost on the residual predicates candidates are checked against
//! (numeric comparisons; LIKE-heavy; mixed arithmetic+LIKE), then the
//! full indexed matcher runs end to end under both [`VerifyMode`]s.
//!
//! Measurement follows E13: arms alternate order round to round and the
//! reported speedup is the median of per-round interpreted/compiled
//! ratios, so scheduler drift cancels instead of accumulating into one
//! arm. Expected shape: compiled verification ≥2× on the string/LIKE
//! and mixed arms (shape-specialized matching beats generic backtracking
//! on every event), with a smaller but real win on pure numerics.

use std::sync::Arc;
use std::time::Instant;

use evdb_expr::{compiler_stats, parse, CompiledExpr};
use evdb_rules::{IndexedMatcher, Matcher, Rule, VerifyMode};
use evdb_types::{DataType, Record, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{Scale, Table};
use crate::fmt_rate;

/// Order events: `(sym STR, px FLOAT, qty INT, venue STR)`. The venue
/// string is long (~90 chars) and only sometimes contains the fragments
/// rules look for, so LIKE verification pays a real scan per event.
pub fn order_schema() -> Arc<Schema> {
    Schema::of(&[
        ("sym", DataType::Str),
        ("px", DataType::Float),
        ("qty", DataType::Int),
        ("venue", DataType::Str),
    ])
}

const FRAGS: &[&str] = &["limit", "dark", "sweep", "iceberg", "auction", "cross"];

/// Deterministic order-event payloads over the schema above (shared
/// with E19's dispatch duel).
pub fn order_events(n: usize, nsyms: usize, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut venue = String::with_capacity(96);
            for k in 0..8 {
                if k > 0 {
                    venue.push('-');
                }
                // ~1 in 4 segments is a fragment rules search for; the
                // rest is routing noise the scan must walk past.
                if rng.gen::<f64>() < 0.25 {
                    venue.push_str(FRAGS[rng.gen_range(0..FRAGS.len())]);
                } else {
                    venue.push_str("route");
                    venue.push_str(&format!("{:04}", rng.gen_range(0..10_000)));
                }
            }
            Record::from_iter([
                Value::from(format!("S{}", i % nsyms).as_str()),
                Value::Float((rng.gen_range(10.0f64..500.0) * 100.0).round() / 100.0),
                Value::Int(rng.gen_range(1..1_000)),
                Value::from(venue.as_str()),
            ])
        })
        .collect()
}

/// Rules for the end-to-end arm: every rule is indexed under a symbol
/// equality; the thirds differ in what candidate verification costs.
/// (Shared with E19's dispatch duel.)
pub fn order_rules(n: usize, nsyms: usize, seed: u64) -> Vec<evdb_expr::Expr> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let k = rng.gen_range(0..nsyms);
            let lo = rng.gen_range(10.0..400.0);
            let hi = lo + rng.gen_range(5.0..80.0);
            let f1 = FRAGS[rng.gen_range(0..FRAGS.len())];
            let f2 = FRAGS[rng.gen_range(0..FRAGS.len())];
            let text = match i % 3 {
                0 => format!("sym = 'S{k}' AND px BETWEEN {lo:.2} AND {hi:.2}"),
                1 => format!(
                    "sym = 'S{k}' AND (venue LIKE '%{f1}%' OR venue LIKE '%{f2}%')"
                ),
                _ => format!(
                    "sym = 'S{k}' AND qty > {} AND venue LIKE '%{f1}%'",
                    rng.gen_range(0..900)
                ),
            };
            parse(&text).expect("valid rule")
        })
        .collect()
}

/// Time `matches` over every event; returns (ns/event, match count).
fn verify_ns(run: &mut dyn FnMut(&Record) -> bool, events: &[Record]) -> (f64, u64) {
    let t0 = Instant::now();
    let mut matches = 0u64;
    for e in events {
        matches += run(e) as u64;
    }
    (
        t0.elapsed().as_secs_f64() * 1e9 / events.len() as f64,
        matches,
    )
}

/// Alternating-order rounds of interpreted vs compiled evaluation of one
/// predicate; returns (best interp ns, best compiled ns, median speedup).
fn duel(predicate: &str, events: &[Record], rounds: usize) -> (f64, f64, f64) {
    let schema = order_schema();
    let bound = parse(predicate).unwrap().bind_predicate(&schema).unwrap();
    let compiled = CompiledExpr::compile(&bound);
    let mut interp = |r: &Record| bound.matches(r).unwrap();
    let mut vm = |r: &Record| compiled.matches(r).unwrap();
    // Warm-up + agreement check.
    let (_, m1) = verify_ns(&mut interp, events);
    let (_, m2) = verify_ns(&mut vm, events);
    assert_eq!(m1, m2, "engines disagree on `{predicate}`");

    let (mut best_i, mut best_c) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let (ti, tc) = if r % 2 == 0 {
            let a = verify_ns(&mut interp, events).0;
            let b = verify_ns(&mut vm, events).0;
            (a, b)
        } else {
            let b = verify_ns(&mut vm, events).0;
            let a = verify_ns(&mut interp, events).0;
            (a, b)
        };
        best_i = best_i.min(ti);
        best_c = best_c.min(tc);
        ratios.push(ti / tc);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (best_i, best_c, ratios[ratios.len() / 2])
}

/// The three candidate-verification arms (the residuals an indexed
/// matcher actually re-checks once the symbol probe has selected
/// candidates — no leading equality to short-circuit on).
const ARMS: &[(&str, &str)] = &[
    (
        "verify_numeric",
        "px BETWEEN 80 AND 220 AND qty > 150 AND qty <= 900",
    ),
    (
        "verify_like",
        "venue LIKE '%limit%' OR venue LIKE '%iceberg%'",
    ),
    (
        "verify_mixed",
        "qty BETWEEN 100 AND 900 AND px * 1.5 + 10 > 60 AND venue LIKE '%sweep%'",
    ),
];

/// Run E15.
pub fn run(scale: Scale) -> Table {
    let nsyms = 8;
    let nevents = scale.pick(2_000, 20_000);
    let nrules = scale.pick(1_000, 10_000);
    let rounds = scale.pick(5, 7);
    let events = order_events(nevents, nsyms, 47);

    let mut table = Table::new(
        "E15: compiled predicate evaluation — interpreter vs bytecode (D11)",
        &["arm", "interpreted", "compiled", "speedup", "unit"],
    );

    for (name, predicate) in ARMS {
        let (ni, nc, speedup) = duel(predicate, &events, rounds);
        table.row(vec![
            name.to_string(),
            format!("{ni:.0}"),
            format!("{nc:.0}"),
            format!("{speedup:.1}x"),
            "ns/event".into(),
        ]);
    }

    // End to end: E3's indexed matcher, candidates verified by each
    // engine in turn. Rule registration compiles every predicate; the
    // stats delta makes the optimizer's work visible (D9).
    let before = compiler_stats();
    let schema = order_schema();
    let mut matcher = IndexedMatcher::new(Arc::clone(&schema));
    for (i, r) in order_rules(nrules, nsyms, 23).into_iter().enumerate() {
        matcher.add_rule(Rule::new(i as u64, "", r)).unwrap();
    }
    let stats = {
        let after = compiler_stats();
        (
            after.compiled_total - before.compiled_total,
            after.folded_subtrees - before.folded_subtrees,
            after.like_precompiled - before.like_precompiled,
        )
    };

    let mut run_arm = |mode: VerifyMode| {
        matcher.set_verify_mode(mode);
        let t0 = Instant::now();
        let mut matches = 0u64;
        for e in &events {
            matches += matcher.match_record(e).unwrap().len() as u64;
        }
        (events.len() as f64 / t0.elapsed().as_secs_f64(), matches)
    };
    // Warm-up + agreement.
    let (_, m1) = run_arm(VerifyMode::Interpreted);
    let (_, m2) = run_arm(VerifyMode::Compiled);
    assert_eq!(m1, m2, "verify modes must select the same rules");
    let (mut best_i, mut best_c) = (0f64, 0f64);
    let mut ratios = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let (ri, rc) = if r % 2 == 0 {
            let a = run_arm(VerifyMode::Interpreted).0;
            let b = run_arm(VerifyMode::Compiled).0;
            (a, b)
        } else {
            let b = run_arm(VerifyMode::Compiled).0;
            let a = run_arm(VerifyMode::Interpreted).0;
            (a, b)
        };
        best_i = best_i.max(ri);
        best_c = best_c.max(rc);
        ratios.push(rc / ri);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    table.row(vec![
        "indexed_match_e2e".into(),
        fmt_rate(best_i),
        fmt_rate(best_c),
        format!("{:.1}x", ratios[ratios.len() / 2]),
        "events/s".into(),
    ]);

    table.note(format!(
        "{nevents} events, {nrules} rules over {nsyms} symbols, {rounds} alternating-order \
         rounds; speedup is the median of per-round ratios (E13 method), ns/event the per-arm best"
    ));
    table.note(format!(
        "registration compiled {} predicates, folded {} constant subtrees, precompiled {} \
         LIKE patterns (D9: optimizer work is counted, not silent)",
        stats.0, stats.1, stats.2
    ));
    table.note("verify arms are the residuals candidates are checked against; e2e includes probe cost");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_verification_is_faster() {
        // The LIKE-heavy and mixed arms carry the ≥2× claim, which is
        // about optimized builds (EXPERIMENTS.md numbers); unoptimized
        // test builds inflate the VM's inlinable helpers, so they assert
        // a conservative floor instead. Each attempt is already a median
        // over alternating rounds; the best of up to three attempts
        // screens out CI neighbors.
        let (like_floor, mixed_floor) = if cfg!(debug_assertions) {
            (1.5, 1.2)
        } else {
            (2.0, 2.0)
        };
        let (mut best_like, mut best_mixed, mut best_e2e) = (0f64, 0f64, 0f64);
        for _ in 0..3 {
            let t = run(Scale::Quick);
            let speed = |row: usize| -> f64 {
                t.rows[row][3].trim_end_matches('x').parse().unwrap()
            };
            best_like = best_like.max(speed(1));
            best_mixed = best_mixed.max(speed(2));
            best_e2e = best_e2e.max(speed(3));
            if best_like >= like_floor && best_mixed >= mixed_floor && best_e2e >= 1.0 {
                break;
            }
        }
        assert!(
            best_like >= like_floor,
            "LIKE-arm speedup {best_like:.2}x < {like_floor}x"
        );
        assert!(
            best_mixed >= mixed_floor,
            "mixed-arm speedup {best_mixed:.2}x < {mixed_floor}x"
        );
        assert!(
            best_e2e >= 1.0,
            "end-to-end compiled verification slower than interpreted ({best_e2e:.2}x)"
        );
    }

    #[test]
    fn modes_agree_and_stats_are_counted() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        // The D9 note proves the compile/fold counters moved.
        assert!(t
            .notes
            .iter()
            .any(|n| n.contains("compiled 1000 predicates")));
    }
}
