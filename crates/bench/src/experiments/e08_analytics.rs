//! E8 — False positives / false negatives of expectation models
//! (§2.1.f + the paper's keywords "errors, false positives, false
//! negatives, statistics").
//!
//! Workload: a utility-meter load trace (daily cycle + noise) with
//! planted spike/dropout anomalies and ground truth. Every model scores
//! each point (band-violation score, 0 inside the band); we report the
//! confusion matrix at the natural operating point (score > 0) and the
//! ROC AUC over score thresholds.
//!
//! Expected shape: a static threshold band flags the cycle's peaks as
//! anomalies (poor precision) or misses dropouts (poor recall);
//! cycle-aware models (seasonal naive) dominate; control-chart and EWMA
//! sit in between.

use evdb_analytics::detector::UpdatePolicy;
use evdb_analytics::{
    auc, ConfusionMatrix, ControlChartModel, DeviationDetector, EwmaForecastModel,
    ExpectationModel, HoltTrendModel, RateOfChangeModel, SeasonalNaiveModel, ThresholdModel,
};

use super::{Scale, Table};
use crate::workloads::meter_trace;

/// A named model constructor.
type ModelFactory = Box<dyn Fn() -> Box<dyn ExpectationModel>>;

fn models() -> Vec<(&'static str, ModelFactory)> {
    vec![
        (
            "threshold[20,80]",
            Box::new(|| Box::new(ThresholdModel::new(20.0, 80.0)) as Box<dyn ExpectationModel>),
        ),
        (
            "control_chart(3σ)",
            Box::new(|| Box::new(ControlChartModel::new(3.0, 50)) as Box<dyn ExpectationModel>),
        ),
        (
            "ewma(α=.3,3σ)",
            Box::new(|| {
                Box::new(EwmaForecastModel::new(0.3, 3.0, 4.0, 20)) as Box<dyn ExpectationModel>
            }),
        ),
        (
            "holt(.4,.1,3σ)",
            Box::new(|| {
                Box::new(HoltTrendModel::new(0.4, 0.1, 3.0, 4.0, 20)) as Box<dyn ExpectationModel>
            }),
        ),
        (
            "seasonal(period)",
            Box::new(|| Box::new(SeasonalNaiveModel::new(96, 3.0, 4.0)) as Box<dyn ExpectationModel>),
        ),
        (
            "rate_of_change(4σ)",
            Box::new(|| {
                Box::new(RateOfChangeModel::new(4.0, 4.0, 20)) as Box<dyn ExpectationModel>
            }),
        ),
    ]
}

/// Run one model over the trace; returns `(confusion, scored)` where
/// `scored` pairs each post-warmup point's deviation score with truth.
pub fn evaluate_model(
    factory: &dyn Fn() -> Box<dyn ExpectationModel>,
    trace: &[(evdb_types::TimestampMs, f64, bool)],
) -> (ConfusionMatrix, Vec<(f64, bool)>) {
    let mut det = DeviationDetector::with_policy(factory(), UpdatePolicy::Always);
    let mut cm = ConfusionMatrix::default();
    let mut scored = Vec::with_capacity(trace.len());
    for (ts, v, truth) in trace {
        let dev = det.observe(*ts, *v);
        let score = dev.as_ref().map(|d| d.score).unwrap_or(0.0);
        cm.record(dev.is_some(), *truth);
        scored.push((score, *truth));
    }
    (cm, scored)
}

/// Run E8.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(5_000, 50_000);
    let trace = meter_trace(n, 96, 0.01, 81);
    let mut table = Table::new(
        "E8: model quality on planted anomalies — FP/FN per expectation model",
        &["model", "precision", "recall", "f1", "fpr_%", "auc"],
    );
    for (name, factory) in models() {
        let (cm, scored) = evaluate_model(factory.as_ref(), &trace);
        table.row(vec![
            name.into(),
            format!("{:.3}", cm.precision().unwrap_or(0.0)),
            format!("{:.3}", cm.recall().unwrap_or(0.0)),
            format!("{:.3}", cm.f1().unwrap_or(0.0)),
            format!("{:.2}", cm.false_positive_rate().unwrap_or(0.0) * 100.0),
            format!("{:.3}", auc(&scored).unwrap_or(0.5)),
        ]);
    }
    table.note(format!(
        "{n} readings, 96-sample daily cycle, 1% planted spike/dropout anomalies"
    ));
    table.note("cycle-aware models dominate the static threshold on both error kinds");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seasonal_beats_threshold_on_f1() {
        let t = run(Scale::Quick);
        let f1_of = |row: usize| -> f64 { t.rows[row][3].parse().unwrap() };
        let threshold_f1 = f1_of(0);
        let seasonal_f1 = f1_of(4);
        assert!(
            seasonal_f1 > threshold_f1,
            "seasonal {seasonal_f1} vs threshold {threshold_f1}"
        );
        // AUCs are sane probabilities.
        for row in &t.rows {
            let auc: f64 = row[5].parse().unwrap();
            assert!((0.0..=1.0).contains(&auc));
        }
    }
}
