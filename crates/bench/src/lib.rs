//! # evdb-bench
//!
//! Workload generators and experiment implementations shared by the
//! Criterion microbenches (`benches/`) and the table-printing harness
//! (`src/bin/harness.rs`). Every experiment (E1–E10) maps to a claim of
//! the paper; the index lives in DESIGN.md §5 and results in
//! EXPERIMENTS.md.
//!
//! All generators are seeded and deterministic, and anomaly workloads
//! carry **ground truth** so E8 can compute exact confusion matrices.

pub mod experiments;
pub mod workloads;

/// Format a duration in ms with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms < 1.0 {
        format!("{:.3}", ms)
    } else if ms < 100.0 {
        format!("{:.1}", ms)
    } else {
        format!("{:.0}", ms)
    }
}

/// Format a rate (per second) with thousands separators.
pub fn fmt_rate(per_s: f64) -> String {
    let n = per_s.round() as u64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_rate(1234567.2), "1,234,567");
        assert_eq!(fmt_rate(999.0), "999");
        assert_eq!(fmt_ms(0.1234), "0.123");
        assert_eq!(fmt_ms(42.34), "42.3");
        assert_eq!(fmt_ms(420.0), "420");
    }
}
