//! The experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p evdb-bench --bin harness --release            # full scale
//! cargo run -p evdb-bench --bin harness --release -- quick   # CI scale
//! cargo run -p evdb-bench --bin harness --release -- e3 e6   # subset
//! ```

use evdb_bench::experiments::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let wanted: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| a.starts_with('e'))
        .collect();

    type Runner = fn(Scale) -> experiments::Table;
    let all: Vec<(&str, Runner)> = vec![
        ("e1", experiments::e01_capture::run as Runner),
        ("e2", experiments::e02_queue::run),
        ("e3", experiments::e03_rules::run),
        ("e4", experiments::e04_churn::run),
        ("e5", experiments::e05_cq::run),
        ("e6", experiments::e06_pattern::run),
        ("e7", experiments::e07_internal::run),
        ("e8", experiments::e08_analytics::run),
        ("e9", experiments::e09_usecases::run),
        ("e10", experiments::e10_recovery::run),
        ("e11", experiments::e11_parallel::run),
        ("e12", experiments::e12_torture::run),
        ("e13", experiments::e13_observability::run),
        ("e14", experiments::e14_overload::run),
        ("e15", experiments::e15_compiled::run),
        ("e16", experiments::e16_retraction::run),
        ("e17", experiments::e17_server::run),
        ("e18", experiments::e18_history::run),
        ("e19", experiments::e19_batch::run),
    ];

    println!(
        "EventDB experiment harness — scale: {:?}\n(paper claim mapping in DESIGN.md §5; recorded results in EXPERIMENTS.md)\n",
        scale
    );
    for (id, f) in all {
        if !wanted.is_empty() && !wanted.contains(&id) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let table = f(scale);
        println!("{}", table.render());
        println!("  [{id} completed in {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
