//! Deterministic workload generators.
//!
//! These stand in for the production feeds the paper's use cases assume
//! (market data, utility meters, hazmat sensors) — see the substitution
//! table in DESIGN.md. Anomaly generators return ground-truth labels.

use std::sync::Arc;

use evdb_expr::{parse, Expr};
use evdb_types::{DataType, Record, Schema, TimestampMs, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Schema of market tick events: `(sym STR, px FLOAT, qty INT)`.
pub fn tick_schema() -> Arc<Schema> {
    Schema::of(&[
        ("sym", DataType::Str),
        ("px", DataType::Float),
        ("qty", DataType::Int),
    ])
}

/// One generated tick.
#[derive(Debug, Clone)]
pub struct Tick {
    /// Event time.
    pub ts: TimestampMs,
    /// Symbol.
    pub sym: String,
    /// Price.
    pub px: f64,
    /// Quantity.
    pub qty: i64,
}

impl Tick {
    /// As a record of [`tick_schema`].
    pub fn record(&self) -> Record {
        Record::from_iter([
            Value::from(self.sym.as_str()),
            Value::Float(self.px),
            Value::Int(self.qty),
        ])
    }
}

/// Random-walk market ticks over `nsyms` symbols, one tick per
/// `interval_ms`, round-robin across symbols.
pub fn market_ticks(n: usize, nsyms: usize, interval_ms: i64, seed: u64) -> Vec<Tick> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prices: Vec<f64> = (0..nsyms).map(|i| 50.0 + 10.0 * i as f64).collect();
    (0..n)
        .map(|i| {
            let s = i % nsyms;
            prices[s] = (prices[s] + rng.gen_range(-0.5..0.5)).max(1.0);
            Tick {
                ts: TimestampMs(i as i64 * interval_ms),
                sym: format!("S{s}"),
                px: (prices[s] * 100.0).round() / 100.0,
                qty: rng.gen_range(1..1_000),
            }
        })
        .collect()
}

/// Schema of meter readings: `(meter STR, kw FLOAT)`.
pub fn meter_schema() -> Arc<Schema> {
    Schema::of(&[("meter", DataType::Str), ("kw", DataType::Float)])
}

/// A labelled observation: `(ts, value, is_anomaly)`.
pub type LabelledPoint = (TimestampMs, f64, bool);

/// Utility-meter load trace: daily sinusoidal cycle plus Gaussian-ish
/// noise, with `anomaly_rate` of points replaced by spikes/dropouts.
/// Returns points with ground-truth labels (E8's input).
pub fn meter_trace(
    n: usize,
    period: usize,
    anomaly_rate: f64,
    seed: u64,
) -> Vec<LabelledPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let phase = (i % period) as f64 / period as f64 * std::f64::consts::TAU;
            let base = 50.0 + 30.0 * phase.sin();
            let noise: f64 = rng.gen_range(-2.0..2.0);
            let anomalous = rng.gen::<f64>() < anomaly_rate;
            let v = if anomalous {
                if rng.gen::<bool>() {
                    base + rng.gen_range(25.0..60.0) // spike
                } else {
                    (base - rng.gen_range(25.0..50.0)).max(0.0) // dropout
                }
            } else {
                base + noise
            };
            (TimestampMs(i as i64 * 1_000), v, anomalous)
        })
        .collect()
}

/// Generate `n` rules over [`tick_schema`], a controlled mix:
/// equality-on-symbol + price range (indexable), a share of IN lists,
/// and `residual_share` of rules with non-indexable predicates.
/// `nsyms` controls selectivity (more symbols = fewer rules per event).
pub fn tick_rules(n: usize, nsyms: usize, residual_share: f64, seed: u64) -> Vec<Expr> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sym = rng.gen_range(0..nsyms);
            if rng.gen::<f64>() < residual_share {
                // Non-indexable: function call or cross-field arithmetic.
                let t = rng.gen_range(0..10_000) as f64 / 10.0;
                parse(&format!("px * 2 > qty + {t}")).expect("valid rule")
            } else {
                let lo = rng.gen_range(0.0..140.0);
                let hi = lo + rng.gen_range(0.5..20.0);
                match rng.gen_range(0..3) {
                    0 => parse(&format!("sym = 'S{sym}' AND px > {lo:.2}")).expect("valid"),
                    1 => parse(&format!(
                        "sym = 'S{sym}' AND px BETWEEN {lo:.2} AND {hi:.2}"
                    ))
                    .expect("valid"),
                    _ => {
                        let s2 = rng.gen_range(0..nsyms);
                        parse(&format!(
                            "sym IN ('S{sym}', 'S{s2}') AND qty >= {}",
                            rng.gen_range(0..900)
                        ))
                        .expect("valid")
                    }
                }
            }
        })
        .collect()
}

/// Schema of A/B/C kind events used by pattern benches:
/// `(kind STR, v FLOAT)`.
pub fn kind_schema() -> Arc<Schema> {
    Schema::of(&[("kind", DataType::Str), ("v", DataType::Float)])
}

/// Uniform random kind events (`A`..`D`), one per `interval_ms`.
pub fn kind_events(n: usize, interval_ms: i64, seed: u64) -> Vec<(TimestampMs, Record)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let kind = ["A", "B", "C", "D"][rng.gen_range(0..4)];
            (
                TimestampMs(i as i64 * interval_ms),
                Record::from_iter([Value::from(kind), Value::Float(rng.gen_range(0.0..100.0))]),
            )
        })
        .collect()
}

/// Schema for hazmat sensor events (ChemSecure):
/// `(site STR, zone STR, chem STR, level FLOAT)`.
pub fn hazmat_schema() -> Arc<Schema> {
    Schema::of(&[
        ("site", DataType::Str),
        ("zone", DataType::Str),
        ("chem", DataType::Str),
        ("level", DataType::Float),
    ])
}

/// Hazmat sensor readings; `incident_rate` of them exceed the danger
/// threshold (level > 80). Returns records + ground truth.
pub fn hazmat_events(n: usize, incident_rate: f64, seed: u64) -> Vec<(Record, bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let incident = rng.gen::<f64>() < incident_rate;
            let level = if incident {
                rng.gen_range(80.5..150.0)
            } else {
                rng.gen_range(0.0..70.0)
            };
            let rec = Record::from_iter([
                Value::from(format!("site{}", rng.gen_range(0..3))),
                Value::from(format!("zone{}", rng.gen_range(0..8))),
                Value::from(["CL2", "NH3", "H2S"][rng.gen_range(0..3)]),
                Value::Float((level * 10.0f64).round() / 10.0),
            ]);
            (rec, incident)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = market_ticks(100, 4, 10, 7);
        let b = market_ticks(100, 4, 10, 7);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.px == y.px && x.sym == y.sym));
        let c = market_ticks(100, 4, 10, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.px != y.px));
    }

    #[test]
    fn ticks_conform_to_schema() {
        let schema = tick_schema();
        for t in market_ticks(50, 3, 1, 1) {
            schema.validate(&t.record()).unwrap();
        }
    }

    #[test]
    fn meter_trace_has_both_classes() {
        let trace = meter_trace(2_000, 96, 0.02, 3);
        let anomalies = trace.iter().filter(|(_, _, a)| *a).count();
        assert!(anomalies > 10 && anomalies < 200, "{anomalies}");
    }

    #[test]
    fn rules_parse_and_mix() {
        let rules = tick_rules(200, 8, 0.2, 5);
        assert_eq!(rules.len(), 200);
        let residuals = rules
            .iter()
            .filter(|r| evdb_expr::analyze(r).constraints.is_empty())
            .count();
        assert!(residuals > 10 && residuals < 100, "{residuals}");
    }

    #[test]
    fn hazmat_ground_truth_matches_threshold() {
        for (rec, incident) in hazmat_events(500, 0.05, 9) {
            let level = rec.get(3).unwrap().as_f64().unwrap();
            assert_eq!(incident, level > 80.0, "level {level}");
        }
    }
}
