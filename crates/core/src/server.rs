//! The [`EventServer`] facade.
//!
//! Composition (the tutorial's architecture, one field per component):
//! a storage engine with journal and triggers, queue staging areas, a
//! pub/sub broker with predicate subscriptions, a continuous-query
//! runtime, per-stream alert rules (indexed matcher), grouped deviation
//! detectors, a VIRT-filtered notification center, access control with a
//! durable audit trail, and metrics.
//!
//! Dataflow per [`EventServer::pump`]:
//!
//! ```text
//! tables --(trigger|journal|query-poll)--> change events
//!    --> stream runtime --> continuous queries --> query subscribers
//!    --> alert rules    --> notifications (VIRT filter)
//!    --> detectors      --> deviations --> notifications
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use evdb_analytics::detector::UpdatePolicy;
use evdb_analytics::{DeviationDetector, ExpectationModel};
use evdb_cq::aggregate::AggMode;
use evdb_cq::delta::{change_schema, change_to_event};
use evdb_cq::runtime::Subscriber;
use evdb_cq::StreamRuntime;
use evdb_queue::{Delivery, QueueConfig, QueueManager};
use evdb_rules::{Broker, IndexedMatcher, MatchScratch, Matcher, Rule};
use evdb_storage::{
    ChangeEvent, Database, DbOptions, JournalMiner, QuerySnapshot, TriggerOps, TriggerTiming,
};
use evdb_expr::{CompiledExpr, Expr};
use evdb_obs::{Gauge, Registry};
use evdb_types::{
    Clock, Error, Event, EventId, IdGenerator, Record, Result, Schema, Stage, SystemClock,
    TimestampMs, Value,
};
use parking_lot::{Mutex, RwLock};

use crate::admission::{AdmissionControl, OverloadPolicy, Staged};
use crate::history::{History, HistoryConfig, HistorySlot};
use crate::metrics::{Metrics, StageBatch, StageObs};
use crate::notify::{Notification, NotificationCenter, NotificationHandler, VirtPolicy};
use crate::security::{AccessControl, Principal, Privilege};

/// How a table's changes are captured into a stream (§2.2.a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureMechanism {
    /// Synchronous row trigger: lowest latency, taxes the write path,
    /// and (like real AFTER triggers) observes pre-commit changes.
    Trigger,
    /// Asynchronous journal mining: off the commit path, sees only
    /// committed transactions, batched by pump cadence.
    Journal,
    /// Periodic query-snapshot diffing with the given poll interval:
    /// cheapest for slow-moving data, lossy between polls.
    QueryPoll {
        /// Poll interval in milliseconds.
        interval_ms: i64,
    },
}

enum CaptureKind {
    Trigger,
    Journal(JournalMiner),
    Snapshot {
        snapshot: QuerySnapshot,
        interval_ms: i64,
        last_poll: Option<TimestampMs>,
    },
}

struct CaptureTask {
    stream: String,
    table: String,
    schema: Arc<Schema>,
    kind: CaptureKind,
}

struct AlertRules {
    matcher: IndexedMatcher,
    meta: HashMap<u64, AlertMeta>,
    next_id: u64,
}

struct AlertMeta {
    name: String,
    severity: f64,
    key_field: Option<usize>,
}

struct DetectorGroup {
    name: String,
    field: usize,
    key_field: Option<usize>,
    /// Optional WHEN predicate gating which events the detector observes,
    /// compiled to bytecode at registration time (D11).
    condition: Option<CompiledExpr>,
    factory: Box<dyn Fn() -> DeviationDetector + Send>,
    instances: HashMap<String, DeviationDetector>,
}

/// Reusable buffers for [`EventServer::evaluate_events`]: the batch-VM
/// scratch plus the per-batch staging vectors. Hold one per evaluating
/// thread (each shard worker owns one); buffers size themselves to the
/// batch on first use and are reused afterwards (D15).
#[derive(Default)]
pub struct EvalScratch {
    /// Expression-VM batch scratch (continuous-query head filters).
    expr: evdb_expr::BatchScratch,
    /// Indexed-matcher batch scratch (alert-rule verification).
    rules: MatchScratch,
    /// Per-event continuous-query results.
    cq: Vec<Result<Vec<Event>>>,
    /// Events whose evaluation already errored (skipped downstream).
    failed: Vec<bool>,
    /// Per-event alert-rule hits, re-scattered from the per-stream runs.
    hits: Vec<Option<Result<Vec<u64>>>>,
    /// Distinct sources with registered rules, in first-seen order.
    sources: Vec<Arc<str>>,
    /// Event indices of the stream currently being matched.
    idxs: Vec<u32>,
    /// Per-record outputs of one `match_batch` run.
    rule_out: Vec<Result<Vec<u64>>>,
    /// One event's staged notifications (committed only on success).
    event_notes: Vec<Notification>,
}

/// Statistics returned by one [`EventServer::pump`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Change events captured this pump.
    pub captured: u64,
    /// Derived events produced by continuous queries.
    pub derived: u64,
    /// Notifications delivered (post-VIRT).
    pub notified: u64,
}

/// Configuration for an [`EventServer`].
pub struct ServerConfig {
    /// VIRT notification policy.
    pub virt: VirtPolicy,
    /// Aggregation execution mode for CQL queries.
    pub agg_mode: AggMode,
    /// Allowed event-time out-of-orderness for windows (ms).
    pub lateness_ms: i64,
    /// Engine clock.
    pub clock: Arc<dyn Clock>,
    /// Unified metrics registry shared by every layer (storage, queues,
    /// rules, CQ, stages). Enabled by default; swap in
    /// `Registry::disabled()` to compile the pipeline's instrumentation
    /// down to no-ops (experiment E13 bounds the difference).
    pub registry: Arc<Registry>,
    /// Capacity bound for the staged ingest buffer shared by trigger
    /// captures and [`EventServer::ingest_async`]. The default is large
    /// enough that well-provisioned workloads never notice it, but it is
    /// a real bound: memory stops growing here under overload.
    pub ingest_capacity: usize,
    /// What happens to producers when the staged buffer is full
    /// (DESIGN.md D10). Default: [`OverloadPolicy::Block`].
    pub overload: OverloadPolicy,
    /// Capacity of the replay-dedup window keyed by (stream, event id):
    /// duplicate deliveries — a re-mined WAL prefix after recovery, an
    /// at-least-once capture adapter retrying — are dropped and counted
    /// instead of double-counting in windows (DESIGN.md D12). `0`
    /// disables dedup.
    pub dedup_capacity: usize,
}

/// Default [`ServerConfig::ingest_capacity`]: 2^20 staged events.
pub const DEFAULT_INGEST_CAPACITY: usize = 1 << 20;

/// Default [`ServerConfig::dedup_capacity`]: 2^16 recently-seen ids.
pub const DEFAULT_DEDUP_CAPACITY: usize = 1 << 16;

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            virt: VirtPolicy::default(),
            agg_mode: AggMode::Incremental,
            lateness_ms: 0,
            clock: Arc::new(SystemClock),
            registry: Arc::new(Registry::new()),
            ingest_capacity: DEFAULT_INGEST_CAPACITY,
            overload: OverloadPolicy::default(),
            dedup_capacity: DEFAULT_DEDUP_CAPACITY,
        }
    }
}

/// The event-processing server.
///
/// # Example
///
/// ```
/// use evdb_core::server::ServerConfig;
/// use evdb_core::{CaptureMechanism, EventServer};
/// use evdb_types::{DataType, Record, Schema, Value};
///
/// let server = EventServer::in_memory(ServerConfig::default()).unwrap();
/// server.db().create_table(
///     "orders",
///     Schema::of(&[("oid", DataType::Int), ("amount", DataType::Float)]),
///     "oid",
/// ).unwrap();
///
/// let stream = server.capture_table("orders", CaptureMechanism::Trigger).unwrap();
/// server.add_alert_rule("large", &stream, "amount > 1000", 2.0, None).unwrap();
///
/// server.db().insert("orders",
///     Record::from_iter([Value::Int(1), Value::Float(5_000.0)])).unwrap();
/// let stats = server.pump().unwrap();
/// assert_eq!((stats.captured, stats.notified), (1, 1));
/// ```
pub struct EventServer {
    db: Arc<Database>,
    queues: Arc<QueueManager>,
    broker: Broker,
    runtime: Arc<StreamRuntime>,
    notifications: Arc<NotificationCenter>,
    access: AccessControl,
    metrics: Arc<Metrics>,
    registry: Arc<Registry>,
    stage_obs: StageObs,
    /// Committed LSNs not yet mined by journal capture (refreshed each
    /// pump while a journal capture is registered).
    journal_lag: Arc<Gauge>,
    agg_mode: AggMode,
    captures: Mutex<Vec<CaptureTask>>,
    /// The bounded staging buffer shared by trigger captures and
    /// [`EventServer::ingest_async`]; drained by the pump in arrival
    /// order (DESIGN.md D10).
    admission: Arc<AdmissionControl>,
    /// Per-stream shed priority for [`OverloadPolicy::ShedLowest`]
    /// (default 0). Shared with trigger closures, hence the `Arc`.
    ingest_priorities: Arc<RwLock<HashMap<String, i64>>>,
    /// Read-mostly: rule registration is rare, matching is per-event and
    /// concurrent under the sharded pump ([`IndexedMatcher::match_record`]
    /// takes `&self`).
    alert_rules: RwLock<HashMap<String, AlertRules>>,
    /// Each detector group has its own lock so sharded workers touching
    /// different groups (or different streams) never contend; the outer
    /// map is read-mostly like `alert_rules`.
    detectors: RwLock<HashMap<String, Vec<Mutex<DetectorGroup>>>>,
    /// Per-stream partition field for sharded routing (see `shard.rs`).
    partition_fields: RwLock<HashMap<String, usize>>,
    /// Historical event store (DESIGN.md D14); empty until
    /// [`EventServer::enable_history`]. `Arc` because the metric bridge
    /// reads it from gauge closures.
    history: Arc<HistorySlot>,
    ids: IdGenerator,
}

impl EventServer {
    /// Ephemeral server (in-memory journal).
    pub fn in_memory(config: ServerConfig) -> Result<EventServer> {
        let db = Database::in_memory(DbOptions {
            clock: Arc::clone(&config.clock),
            registry: Arc::clone(&config.registry),
            ..Default::default()
        })?;
        Self::from_db(db, config)
    }

    /// Durable server on a directory (runs recovery).
    pub fn open(dir: impl AsRef<Path>, config: ServerConfig) -> Result<EventServer> {
        let db = Database::open(
            dir,
            DbOptions {
                clock: Arc::clone(&config.clock),
                registry: Arc::clone(&config.registry),
                ..Default::default()
            },
        )?;
        Self::from_db(db, config)
    }

    fn from_db(db: Arc<Database>, config: ServerConfig) -> Result<EventServer> {
        let queues = Arc::new(QueueManager::attach(Arc::clone(&db))?);
        let access = AccessControl::attach(Arc::clone(&db))?;
        let registry = config.registry;
        let stage_obs = StageObs::bind(&registry);
        let journal_lag = registry.gauge("evdb_storage_journal_lag");
        let mut rt = StreamRuntime::new(config.lateness_ms);
        rt.bind_obs(&registry);
        if config.dedup_capacity > 0 {
            rt.enable_dedup(config.dedup_capacity);
        }
        let runtime = Arc::new(rt);
        let metrics = Arc::new(Metrics::default());
        let notifications = Arc::new(NotificationCenter::new(
            config.virt,
            Arc::clone(&config.clock),
        ));
        let admission = Arc::new(AdmissionControl::new(
            config.ingest_capacity,
            config.overload,
        ));
        let history = Arc::new(HistorySlot::default());
        if registry.is_enabled() {
            Self::bridge_gauges(
                &registry,
                &metrics,
                &notifications,
                &runtime,
                &admission,
                &history,
            );
        }
        Ok(EventServer {
            queues,
            broker: Broker::new(),
            runtime,
            notifications,
            access,
            metrics,
            registry,
            stage_obs,
            journal_lag,
            agg_mode: config.agg_mode,
            captures: Mutex::new(Vec::new()),
            admission,
            ingest_priorities: Arc::new(RwLock::new(HashMap::new())),
            alert_rules: RwLock::new(HashMap::new()),
            detectors: RwLock::new(HashMap::new()),
            partition_fields: RwLock::new(HashMap::new()),
            history,
            ids: IdGenerator::default(),
            db,
        })
    }

    /// Bridge pull-style gauges over the legacy atomic counters so the
    /// text exposition covers the whole engine without double-counting.
    fn bridge_gauges(
        registry: &Registry,
        metrics: &Arc<Metrics>,
        notifications: &Arc<NotificationCenter>,
        runtime: &Arc<StreamRuntime>,
        admission: &Arc<AdmissionControl>,
        history: &Arc<HistorySlot>,
    ) {
        use std::sync::atomic::Ordering;
        let m = Arc::clone(metrics);
        registry.gauge_fn("evdb_core_events_captured", move || {
            m.events_captured.load(Ordering::Relaxed) as f64
        });
        let m = Arc::clone(metrics);
        registry.gauge_fn("evdb_core_events_processed", move || {
            m.events_processed.load(Ordering::Relaxed) as f64
        });
        let m = Arc::clone(metrics);
        registry.gauge_fn("evdb_core_derived_events", move || {
            m.derived_events.load(Ordering::Relaxed) as f64
        });
        let m = Arc::clone(metrics);
        registry.gauge_fn("evdb_core_deviations", move || {
            m.deviations.load(Ordering::Relaxed) as f64
        });
        let m = Arc::clone(metrics);
        registry.gauge_fn("evdb_shard_events_routed", move || {
            m.total_events_routed() as f64
        });
        let m = Arc::clone(metrics);
        registry.gauge_fn("evdb_shard_busy_cycles", move || m.total_busy_cycles() as f64);
        let m = Arc::clone(metrics);
        registry.gauge_fn("evdb_shard_queue_depth", move || {
            m.shard_snapshots().iter().map(|s| s.queue_depth).sum::<u64>() as f64
        });
        let nc = Arc::clone(notifications);
        registry.gauge_fn("evdb_notify_delivered", move || {
            nc.delivered.load(Ordering::Relaxed) as f64
        });
        let nc = Arc::clone(notifications);
        registry.gauge_fn("evdb_notify_suppressed", move || {
            nc.suppressed.load(Ordering::Relaxed) as f64
        });
        let nc = Arc::clone(notifications);
        registry.gauge_fn("evdb_notify_retracted_total", move || {
            nc.retracted.load(Ordering::Relaxed) as f64
        });
        let rt = Arc::clone(runtime);
        registry.gauge_fn("evdb_cq_window_memory", move || rt.window_memory() as f64);
        // Out-of-order delta accounting (D12): retractions emitted,
        // already-emitted panes reopened, late events admitted vs dropped,
        // and duplicate deliveries suppressed by the replay-dedup window.
        let rt = Arc::clone(runtime);
        registry.gauge_fn("evdb_cq_retractions_total", move || {
            rt.cq_delta_stats().retractions as f64
        });
        let rt = Arc::clone(runtime);
        registry.gauge_fn("evdb_cq_pane_reopens_total", move || {
            rt.cq_delta_stats().pane_reopens as f64
        });
        let rt = Arc::clone(runtime);
        registry.gauge_fn("evdb_cq_late_admitted_total", move || {
            rt.cq_delta_stats().late_admitted as f64
        });
        let rt = Arc::clone(runtime);
        registry.gauge_fn("evdb_cq_late_dropped_total", move || {
            rt.cq_delta_stats().late_events as f64
        });
        let rt = Arc::clone(runtime);
        registry.gauge_fn("evdb_cq_dup_dropped_total", move || rt.dup_dropped() as f64);
        // Admission control: depth plus the no-silent-caps counters
        // (every shed, rejection and dropped capture is visible here).
        let ac = Arc::clone(admission);
        registry.gauge_fn("evdb_ingest_depth", move || ac.depth() as f64);
        let ac = Arc::clone(admission);
        registry.gauge_fn("evdb_ingest_shed_total", move || ac.shed_total() as f64);
        let ac = Arc::clone(admission);
        registry.gauge_fn("evdb_ingest_rejected_total", move || {
            ac.rejected_total() as f64
        });
        let ac = Arc::clone(admission);
        registry.gauge_fn("evdb_ingest_dropped_capture_total", move || {
            ac.dropped_capture_total() as f64
        });
        // Expression compiler: process-wide compile/fold statistics (D9
        // no-silent-caps: every fold and precompiled LIKE is accounted).
        registry.gauge_fn("evdb_expr_compiled_total", || {
            evdb_expr::compiler_stats().compiled_total as f64
        });
        registry.gauge_fn("evdb_expr_folded_subtrees_total", || {
            evdb_expr::compiler_stats().folded_subtrees as f64
        });
        registry.gauge_fn("evdb_expr_folded_nodes_total", || {
            evdb_expr::compiler_stats().folded_nodes as f64
        });
        registry.gauge_fn("evdb_expr_like_precompiled_total", || {
            evdb_expr::compiler_stats().like_precompiled as f64
        });
        // Batched evaluation (D15): how many batch-VM dispatches ran and
        // how many records they covered, process-wide. The ratio is the
        // realized amortization of the batched hot path.
        registry.gauge_fn("evdb_expr_batches_total", || {
            evdb_expr::batch_stats().0 as f64
        });
        registry.gauge_fn("evdb_expr_batched_records_total", || {
            evdb_expr::batch_stats().1 as f64
        });
        // Historical event store (D14). Registered even while history is
        // disabled (they read zero) so the exposition's metric set does
        // not depend on whether enable_history ran.
        let h = Arc::clone(history);
        registry.gauge_fn("evdb_store_segments", move || h.stats().0 as f64);
        let h = Arc::clone(history);
        registry.gauge_fn("evdb_store_appended_total", move || {
            h.stats().1.appended as f64
        });
        let h = Arc::clone(history);
        registry.gauge_fn("evdb_store_freezes_total", move || {
            h.stats().1.freezes as f64
        });
        let h = Arc::clone(history);
        registry.gauge_fn("evdb_store_compactions_total", move || {
            h.stats().1.compactions as f64
        });
        let h = Arc::clone(history);
        registry.gauge_fn("evdb_store_segments_pruned_total", move || {
            h.stats().1.segments_pruned as f64
        });
        let h = Arc::clone(history);
        registry.gauge_fn("evdb_store_zones_pruned_total", move || {
            h.stats().1.zones_pruned as f64
        });
        let h = Arc::clone(history);
        registry.gauge_fn("evdb_store_replayed_total", move || {
            h.stats().1.replayed as f64
        });
    }

    // ---- component access -------------------------------------------------

    /// The underlying database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The queue manager.
    pub fn queues(&self) -> &Arc<QueueManager> {
        &self.queues
    }

    /// The pub/sub broker.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The stream runtime.
    pub fn runtime(&self) -> &StreamRuntime {
        &self.runtime
    }

    /// The notification center.
    pub fn notifications(&self) -> &Arc<NotificationCenter> {
        &self.notifications
    }

    /// Access control / audit.
    pub fn access(&self) -> &AccessControl {
        &self.access
    }

    /// Engine metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The unified metrics registry (render with
    /// [`Registry::render`], diff with [`Registry::snapshot`]).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The per-stage observability handles (shared with the sharded
    /// pump's router and worker threads, which flush their own
    /// [`StageBatch`]es through it).
    pub fn stage_obs(&self) -> &StageObs {
        &self.stage_obs
    }

    /// Current engine time.
    pub fn now(&self) -> TimestampMs {
        self.db.now()
    }

    // ---- capture ------------------------------------------------------------

    /// Capture a table's changes into stream `"<table>_changes"` using
    /// the given mechanism. Returns the stream name.
    pub fn capture_table(&self, table: &str, mechanism: CaptureMechanism) -> Result<String> {
        let t = self.db.table(table)?;
        let stream = format!("{table}_changes");
        let key_type = t.schema().fields()[t.def().pk].dtype;
        let schema = change_schema(t.schema(), key_type)?;
        self.runtime.create_stream(&stream, Arc::clone(&schema))?;

        let kind = match mechanism {
            CaptureMechanism::Trigger => {
                let admission = Arc::clone(&self.admission);
                let priorities = Arc::clone(&self.ingest_priorities);
                let stream_name = stream.clone();
                self.db.create_trigger(
                    &format!("__cap_{stream}"),
                    table,
                    TriggerTiming::After,
                    TriggerOps::ALL,
                    None,
                    Arc::new(move |ev| {
                        // Admission runs inside the writer's transaction:
                        // under `Reject` the returned `Overloaded` error
                        // aborts (rolls back) the producer's write, and
                        // under `Block` the writer parks — holding the
                        // write gate — until the pump drains (the drain
                        // never takes the gate, so this cannot deadlock).
                        let pri = priorities.read().get(&stream_name).copied().unwrap_or(0);
                        admission.admit(pri, Staged::Change(stream_name.clone(), ev.clone()))
                    }),
                )?;
                CaptureKind::Trigger
            }
            CaptureMechanism::Journal => CaptureKind::Journal(JournalMiner::from_now(&self.db)),
            CaptureMechanism::QueryPoll { interval_ms } => CaptureKind::Snapshot {
                snapshot: QuerySnapshot::new(table, evdb_expr::Expr::lit(true)),
                interval_ms: interval_ms.max(1),
                last_poll: None,
            },
        };
        self.captures.lock().push(CaptureTask {
            stream,
            table: table.to_string(),
            schema,
            kind,
        });
        Ok(self
            .captures
            .lock()
            .last()
            .expect("just pushed")
            .stream
            .clone())
    }

    /// Deregister a capture task (the stream itself stays: registered
    /// rules and queries keep their schema). For trigger captures the
    /// row trigger is dropped, so subsequent writes stop staging
    /// changes; changes already staged when the capture goes away are
    /// counted as dropped captures at the next drain (never silently
    /// discarded).
    pub fn remove_capture(&self, stream: &str) -> Result<()> {
        let task = {
            let mut captures = self.captures.lock();
            let pos = captures
                .iter()
                .position(|t| t.stream == stream)
                .ok_or_else(|| Error::NotFound(format!("capture for '{stream}'")))?;
            captures.remove(pos)
        };
        if matches!(task.kind, CaptureKind::Trigger) {
            self.db.drop_trigger(&format!("__cap_{stream}"))?;
        }
        Ok(())
    }

    /// Set a stream's shed priority (default 0): under
    /// [`OverloadPolicy::ShedLowest`], staged events from
    /// lower-priority streams are displaced first when the buffer is
    /// full. Applies to trigger captures and `ingest_async` alike.
    pub fn set_ingest_priority(&self, stream: &str, priority: i64) -> Result<()> {
        self.runtime.stream_schema(stream)?;
        self.ingest_priorities
            .write()
            .insert(stream.to_string(), priority);
        Ok(())
    }

    /// The admission-control gate on the staged ingest path: capacity,
    /// policy, live depth and the shed / rejected / dropped-capture
    /// accounting.
    pub fn admission(&self) -> &Arc<AdmissionControl> {
        &self.admission
    }

    /// Declare a free-standing stream fed by [`EventServer::ingest`]
    /// (external feeds: market data, sensor telemetry).
    pub fn create_stream(&self, name: &str, schema: Arc<Schema>) -> Result<()> {
        self.runtime.create_stream(name, schema)
    }

    /// Push one external event into a stream, running the evaluation
    /// pipeline for it immediately.
    pub fn ingest(
        &self,
        stream: &str,
        timestamp: TimestampMs,
        payload: Record,
    ) -> Result<PumpStats> {
        use std::sync::atomic::Ordering;
        let mut event = self.make_event(stream, timestamp, payload)?;
        let mut stats = PumpStats::default();
        self.metrics.events_captured.fetch_add(1, Ordering::Relaxed);
        stats.captured = 1;
        if self.stage_obs.enabled {
            event.trace.stamp(Stage::Capture, event.timestamp);
            self.stage_obs
                .observe(Stage::Capture, self.now().since(event.timestamp).max(0) as f64);
        }
        let stamp_now = self.now();
        let mut batch = StageBatch::default();
        self.process_event(&mut event, stamp_now, &mut stats, &mut batch)?;
        self.stage_obs.flush(&mut batch);
        Ok(stats)
    }

    /// Stage one external event for the next pump instead of evaluating
    /// it inline. This is the producer-side entry point for background
    /// pumping (sequential or sharded): producers validate and enqueue,
    /// the pump evaluates. Counted as captured when drained.
    /// Staging is subject to admission control: when the staged buffer
    /// is at capacity the configured [`OverloadPolicy`] applies (block,
    /// `Err(Overloaded)`, or shed-lowest).
    pub fn ingest_async(
        &self,
        stream: &str,
        timestamp: TimestampMs,
        payload: Record,
    ) -> Result<()> {
        let event = self.make_event(stream, timestamp, payload)?;
        let pri = self
            .ingest_priorities
            .read()
            .get(stream)
            .copied()
            .unwrap_or(0);
        self.admission.admit(pri, Staged::External(event))
    }

    fn make_event(&self, stream: &str, timestamp: TimestampMs, payload: Record) -> Result<Event> {
        let schema = self.runtime.stream_schema(stream)?;
        schema.validate(&payload)?;
        Ok(Event::new(
            EventId(self.ids.next_id()),
            stream,
            timestamp,
            payload,
            schema,
        ))
    }

    /// Partition a stream's events by a payload field for sharded
    /// pumping ([`crate::PumpMode::Sharded`]). By default a whole stream
    /// maps to one shard, which preserves every sequential semantic
    /// (CQ windows, cross-key detectors, in-stream order). Keying a hot
    /// stream by a field spreads it over the workers; use it only when
    /// the stream's rules and detectors are scoped by that same field
    /// and no continuous query reads the stream (see DESIGN.md §D7).
    pub fn set_partition_field(&self, stream: &str, field: &str) -> Result<()> {
        let schema = self.runtime.stream_schema(stream)?;
        let idx = schema
            .index_of(field)
            .ok_or_else(|| Error::Schema(format!("unknown partition field '{field}'")))?;
        self.partition_fields
            .write()
            .insert(stream.to_string(), idx);
        Ok(())
    }

    /// The routing key the sharded pump hashes for this event: the
    /// stream name, refined by the stream's partition field if one is
    /// configured.
    pub fn partition_key_of(&self, event: &Event) -> String {
        match self.partition_fields.read().get(event.source.as_ref()) {
            Some(&i) => format!(
                "{}/{}",
                event.source,
                event.payload.get(i).cloned().unwrap_or(Value::Null)
            ),
            None => event.source.to_string(),
        }
    }

    // ---- historical event store (D14) ------------------------------------------

    /// Enable the historical event store under `root`: from now on every
    /// event that reaches [`EventServer::evaluate_event`] — on either
    /// pump mode — is also appended to its stream's columnar segment
    /// store, queryable and replayable after the fact. Errors if history
    /// is already enabled. Re-opening an existing root runs segment
    /// recovery per stream.
    pub fn enable_history(
        &self,
        root: impl AsRef<Path>,
        config: HistoryConfig,
    ) -> Result<Arc<History>> {
        self.history.install(History::open(root, config)?)
    }

    /// The historical store, if [`enable_history`](Self::enable_history)
    /// has run.
    pub fn history(&self) -> Option<Arc<History>> {
        self.history.get()
    }

    /// REPLAY a stream's history in original arrival order, as
    /// reconstructed events (original ids, timestamps and retraction
    /// flags). `from_seq..=to_seq` are history sequence numbers as
    /// returned by the store; `(0, u64::MAX)` replays everything.
    pub fn replay(&self, stream: &str, from_seq: u64, to_seq: u64) -> Result<Vec<Event>> {
        let history = self
            .history
            .get()
            .ok_or_else(|| Error::Invalid("history is not enabled".into()))?;
        let schema = self.runtime.stream_schema(stream)?;
        let store = history.store_or_recover(stream, &schema)?;
        Ok(History::to_events(
            stream,
            &schema,
            store.replay(from_seq, to_seq)?,
        ))
    }

    /// REPLAY a stream's history back *through the continuous-query
    /// runtime*: each historical event is re-fed in arrival order via
    /// the dedup-bypassing replay path (original ids legitimately
    /// reappear here), re-driving windows and subscribers. Alert rules
    /// and detectors are not re-run — replay reconstructs derived state,
    /// it does not re-page anyone. Returns (events replayed, derived
    /// events produced).
    pub fn replay_into_runtime(
        &self,
        stream: &str,
        from_seq: u64,
        to_seq: u64,
    ) -> Result<(u64, u64)> {
        let events = self.replay(stream, from_seq, to_seq)?;
        let mut derived = 0u64;
        for event in &events {
            derived += self.runtime.push_event_replay(event)?.len() as u64;
        }
        Ok((events.len() as u64, derived))
    }

    /// Historical query: events of `stream` whose payload satisfies
    /// `predicate`, in arrival order, pruned by segment- and zone-level
    /// statistics (check `evdb_store_*_pruned_total` to see the savings).
    pub fn query_history(&self, stream: &str, predicate: &str) -> Result<Vec<Event>> {
        let history = self
            .history
            .get()
            .ok_or_else(|| Error::Invalid("history is not enabled".into()))?;
        let schema = self.runtime.stream_schema(stream)?;
        let store = history.store_or_recover(stream, &schema)?;
        let expr = evdb_expr::parse(predicate)?;
        Ok(History::to_events(stream, &schema, store.query(&expr)?))
    }

    /// Recover a capture whose journal cursor lost history to a
    /// checkpoint (`Error::TruncatedHistory` from a strict poll): the
    /// capture's baseline is reset from current table state —
    /// `QuerySnapshot::rebaseline` for query-poll captures, cursor
    /// `resync` for journal miners — and then the stream's history from
    /// `from_seq` is replayed through the CQ runtime to rebuild derived
    /// state. Returns the number of events replayed.
    pub fn rebaseline_by_replay(&self, stream: &str, from_seq: u64) -> Result<u64> {
        {
            let mut captures = self.captures.lock();
            for task in captures.iter_mut() {
                if task.stream != stream {
                    continue;
                }
                match &mut task.kind {
                    CaptureKind::Journal(miner) => {
                        miner.resync(&self.db);
                    }
                    CaptureKind::Snapshot { snapshot, .. } => {
                        snapshot.rebaseline(&self.db)?;
                    }
                    CaptureKind::Trigger => {}
                }
            }
        }
        let (replayed, _) = self.replay_into_runtime(stream, from_seq, u64::MAX)?;
        Ok(replayed)
    }

    // ---- continuous queries ----------------------------------------------------

    /// Register a CQL continuous query. The `FROM` stream must exist.
    /// The query's `EMIT` clause selects its consistency level (D12);
    /// the default is retraction-free watermark gating.
    pub fn register_cql(&self, name: &str, cql: &str) -> Result<()> {
        let q = evdb_cq::cql::parse_query(cql)?;
        let input = self.runtime.stream_schema(&q.from)?;
        let pipeline = evdb_cq::cql::compile(&q, &input, self.agg_mode)?;
        self.runtime
            .register_query_with(name, &q.from, pipeline, q.consistency)
    }

    /// Subscribe to a query's derived events.
    pub fn on_query(&self, name: &str, subscriber: Subscriber) -> Result<()> {
        self.runtime.subscribe(name, subscriber)
    }

    /// Subscribe to a query's derived rows with the delta sign made
    /// explicit: the callback receives `(row, is_retraction)`. Under
    /// `EMIT SPECULATIVE` a retraction withdraws a previously delivered
    /// row; under the default watermark level `is_retraction` is always
    /// false (asserted by the order-equivalence suite).
    pub fn on_query_updates(
        &self,
        name: &str,
        subscriber: impl Fn(&Record, bool) + Send + Sync + 'static,
    ) -> Result<()> {
        self.runtime.subscribe(
            name,
            Arc::new(move |event: &Event| subscriber(&event.payload, event.is_retraction())),
        )
    }

    // ---- alert rules -------------------------------------------------------------

    /// Add an alert rule: when an event on `stream` satisfies
    /// `predicate`, a notification of `severity` fires. The optional
    /// `key_field` scopes VIRT suppression (e.g. per symbol / per
    /// sensor). Returns a rule id for removal.
    pub fn add_alert_rule(
        &self,
        name: &str,
        stream: &str,
        predicate: &str,
        severity: f64,
        key_field: Option<&str>,
    ) -> Result<u64> {
        let schema = self.runtime.stream_schema(stream)?;
        let expr = evdb_expr::parse(predicate)?;
        let key_idx = match key_field {
            None => None,
            Some(f) => Some(
                schema
                    .index_of(f)
                    .ok_or_else(|| Error::Schema(format!("unknown key field '{f}'")))?,
            ),
        };
        let mut rules = self.alert_rules.write();
        let entry = rules
            .entry(stream.to_string())
            .or_insert_with(|| {
                let mut matcher = IndexedMatcher::new(Arc::clone(&schema));
                matcher.bind_obs(&self.registry);
                AlertRules {
                    matcher,
                    meta: HashMap::new(),
                    next_id: 1,
                }
            });
        let id = entry.next_id;
        entry.matcher.add_rule(Rule::new(id, name, expr))?;
        entry.meta.insert(
            id,
            AlertMeta {
                name: name.to_string(),
                severity,
                key_field: key_idx,
            },
        );
        entry.next_id += 1;
        Ok(id)
    }

    /// Remove an alert rule.
    pub fn remove_alert_rule(&self, stream: &str, id: u64) -> Result<()> {
        let mut rules = self.alert_rules.write();
        let entry = rules
            .get_mut(stream)
            .ok_or_else(|| Error::NotFound(format!("alert rules on '{stream}'")))?;
        entry.matcher.remove_rule(id)?;
        entry.meta.remove(&id);
        Ok(())
    }

    // ---- detectors ----------------------------------------------------------------

    /// Attach a grouped deviation detector to a stream: `field` is the
    /// observed value; when `key_field` is given, each distinct key gets
    /// its own model instance (per-meter, per-symbol expectations).
    pub fn add_detector<F>(
        &self,
        name: &str,
        stream: &str,
        field: &str,
        key_field: Option<&str>,
        policy: UpdatePolicy,
        model_factory: F,
    ) -> Result<()>
    where
        F: Fn() -> Box<dyn ExpectationModel> + Send + 'static,
    {
        self.add_detector_when(name, stream, field, key_field, None, policy, model_factory)
    }

    /// [`add_detector`](Self::add_detector) with an optional WHEN
    /// predicate over the stream's records: only events satisfying the
    /// condition feed the expectation model. The predicate is bound and
    /// compiled to bytecode once, here.
    #[allow(clippy::too_many_arguments)]
    pub fn add_detector_when<F>(
        &self,
        name: &str,
        stream: &str,
        field: &str,
        key_field: Option<&str>,
        condition: Option<&Expr>,
        policy: UpdatePolicy,
        model_factory: F,
    ) -> Result<()>
    where
        F: Fn() -> Box<dyn ExpectationModel> + Send + 'static,
    {
        let schema = self.runtime.stream_schema(stream)?;
        let condition = match condition {
            None => None,
            Some(e) => Some(CompiledExpr::compile(&e.bind_predicate(&schema)?)),
        };
        let field_idx = schema
            .index_of(field)
            .ok_or_else(|| Error::Schema(format!("unknown field '{field}'")))?;
        let key_idx = match key_field {
            None => None,
            Some(f) => Some(
                schema
                    .index_of(f)
                    .ok_or_else(|| Error::Schema(format!("unknown key field '{f}'")))?,
            ),
        };
        self.detectors
            .write()
            .entry(stream.to_string())
            .or_default()
            .push(Mutex::new(DetectorGroup {
                name: name.to_string(),
                field: field_idx,
                key_field: key_idx,
                condition,
                factory: Box::new(move || DeviationDetector::with_policy(model_factory(), policy)),
                instances: HashMap::new(),
            }));
        Ok(())
    }

    /// Register a notification handler.
    pub fn on_notification(&self, handler: NotificationHandler) {
        self.notifications.on_notification(handler);
    }

    /// Persist every delivered notification as a message on `queue`
    /// (created if needed) — notifications *are* messages in the paper's
    /// architecture, so alert consumers get the queue layer's
    /// recoverability, fan-out and auditability. Returns the queue's
    /// payload schema.
    pub fn persist_notifications(&self, queue: &str) -> Result<Arc<Schema>> {
        let schema = Schema::of(&[
            ("key", evdb_types::DataType::Str),
            ("severity", evdb_types::DataType::Float),
            ("title", evdb_types::DataType::Str),
            ("body", evdb_types::DataType::Str),
            ("ts", evdb_types::DataType::Timestamp),
        ]);
        if self.queues.queue_schema(queue).is_err() {
            self.queues
                .create_queue(queue, Arc::clone(&schema), QueueConfig::default())?;
        }
        let queues = Arc::clone(&self.queues);
        let qname = queue.to_string();
        self.notifications.on_notification(Arc::new(move |n| {
            // Enqueue failures must not unwind into the notifier; they
            // surface through queue metrics/depth instead.
            let _ = queues.enqueue(
                &qname,
                Record::from_iter([
                    Value::from(n.key.as_str()),
                    Value::Float(n.severity),
                    Value::from(n.title.as_str()),
                    Value::from(n.body.as_str()),
                    Value::Timestamp(n.timestamp),
                ]),
                "notification-center",
            );
        }));
        Ok(schema)
    }

    // ---- queue & topic conveniences (guarded variants audit) ----------------------

    /// Create a queue.
    pub fn create_queue(&self, name: &str, schema: Arc<Schema>, config: QueueConfig) -> Result<()> {
        self.queues.create_queue(name, schema, config)
    }

    /// Enqueue as a principal: checked against `queue:<name>` Write and
    /// audited.
    pub fn enqueue_as(&self, principal: &Principal, queue: &str, payload: Record) -> Result<u64> {
        self.access
            .check(principal, &format!("queue:{queue}"), Privilege::Write)?;
        self.queues.enqueue(queue, payload, &principal.name)
    }

    /// Dequeue as a principal: checked against `queue:<name>` Read.
    pub fn dequeue_as(
        &self,
        principal: &Principal,
        queue: &str,
        group: &str,
        max: usize,
    ) -> Result<Vec<Delivery>> {
        self.access
            .check(principal, &format!("queue:{queue}"), Privilege::Read)?;
        self.queues.dequeue(queue, group, max)
    }

    // ---- the pump ------------------------------------------------------------------

    /// Drain all pending captured changes through the evaluation
    /// pipeline. Deterministic: with a `SimClock`, repeated runs produce
    /// identical results.
    pub fn pump(&self) -> Result<PumpStats> {
        let mut events = self.drain_captured()?;
        let mut stats = PumpStats {
            captured: events.len() as u64,
            ..PumpStats::default()
        };
        // One clock read serves every stage stamp this cycle: the stage
        // histograms have 10ms bins, so per-event clock reads would buy
        // no resolution and cost a measurable share of the pipeline
        // (experiment E13 bounds the total tax).
        let stamp_now = self.now();
        let mut batch = StageBatch::default();
        for event in &mut events {
            self.process_event(event, stamp_now, &mut stats, &mut batch)?;
        }
        self.stage_obs.flush(&mut batch);
        // Bounded history maintenance: at most one segment merge per
        // stream per pump, so compaction rides the pump cadence instead
        // of needing its own thread (determinism under SimClock).
        if let Some(history) = self.history.get() {
            history.maintain()?;
        }
        Ok(stats)
    }

    /// Collect every pending captured change as a ready-to-evaluate
    /// event, in capture order, without evaluating anything. This is the
    /// ingest stage shared by the sequential pump (which evaluates the
    /// returned batch inline) and the sharded pump's router thread
    /// (which fans it out to workers). Capture-side metrics
    /// (`events_captured`, capture latency) are recorded here.
    pub fn drain_captured(&self) -> Result<Vec<Event>> {
        use std::sync::atomic::Ordering;
        let now = self.now();
        let mut events = Vec::new();
        let mut batch = StageBatch::default();

        // The staged buffer (ingest_async producers + trigger captures),
        // processed strictly in arrival order: the admission queue is
        // the single cross-stream sequence, so two interleaved producers
        // are evaluated exactly as they arrived (regression-tested in
        // tests/admission.rs).
        let staged = self.admission.drain();
        if !staged.is_empty() {
            let schemas: HashMap<String, Arc<Schema>> = {
                let captures = self.captures.lock();
                captures
                    .iter()
                    .map(|t| (t.stream.clone(), Arc::clone(&t.schema)))
                    .collect()
            };
            let mut dropped: HashMap<String, u64> = HashMap::new();
            for item in staged {
                match item {
                    Staged::External(mut event) => {
                        self.metrics.events_captured.fetch_add(1, Ordering::Relaxed);
                        // Async-ingested events start their trace at event
                        // time; capture latency is staging-to-drain lag.
                        if event.trace.stamp_of(Stage::Capture).is_none() {
                            event.trace.stamp(Stage::Capture, event.timestamp);
                        }
                        if self.stage_obs.enabled {
                            batch.push(Stage::Capture, now.since(event.timestamp).max(0) as f64);
                        }
                        events.push(event);
                    }
                    Staged::Change(stream, change) => {
                        let Some(schema) = schemas.get(&stream) else {
                            // Capture deregistered between staging and
                            // drain: count and log, never lose silently.
                            *dropped.entry(stream).or_default() += 1;
                            continue;
                        };
                        events.push(self.change_into_event(&stream, schema, change, now, &mut batch));
                    }
                }
            }
            if !dropped.is_empty() {
                let total: u64 = dropped.values().sum();
                self.admission.note_dropped_capture(total);
                for (stream, n) in &dropped {
                    eprintln!(
                        "evdb: dropped {n} staged change(s) for '{stream}' \
                         (capture deregistered before drain)"
                    );
                }
            }
        }

        let mut batches: Vec<(String, Arc<Schema>, Vec<ChangeEvent>)> = Vec::new();
        // Journal miners and snapshots.
        {
            let mut captures = self.captures.lock();
            for task in captures.iter_mut() {
                match &mut task.kind {
                    CaptureKind::Trigger => {}
                    CaptureKind::Journal(miner) => {
                        self.journal_lag
                            .set(self.db.last_lsn().saturating_sub(miner.position()) as f64);
                        // The journal carries every table's ops; this
                        // capture only owns its own table's changes.
                        let mut evs = miner.poll(&self.db)?;
                        evs.retain(|c| c.table.as_ref() == task.table);
                        if !evs.is_empty() {
                            batches.push((task.stream.clone(), Arc::clone(&task.schema), evs));
                        }
                    }
                    CaptureKind::Snapshot {
                        snapshot,
                        interval_ms,
                        last_poll,
                    } => {
                        let due = match last_poll {
                            None => true,
                            Some(t) => now.since(*t) >= *interval_ms,
                        };
                        if due {
                            *last_poll = Some(now);
                            let evs = snapshot.poll(&self.db)?;
                            if !evs.is_empty() {
                                batches.push((task.stream.clone(), Arc::clone(&task.schema), evs));
                            }
                        }
                    }
                }
            }
        }

        for (stream, schema, changes) in batches {
            for change in changes {
                events.push(self.change_into_event(&stream, &schema, change, now, &mut batch));
            }
        }
        self.stage_obs.flush(&mut batch);
        Ok(events)
    }

    /// Convert one captured [`ChangeEvent`] into the stream event the
    /// pipeline evaluates, recording capture-side metrics.
    fn change_into_event(
        &self,
        stream: &str,
        schema: &Arc<Schema>,
        change: ChangeEvent,
        now: TimestampMs,
        batch: &mut StageBatch,
    ) -> Event {
        use std::sync::atomic::Ordering;
        let event = change_to_event(&change, schema, &self.ids);
        // Rewrite the event source to the stream name so the
        // runtime routes it (delta:: prefix is for standalone use).
        let mut event = Event::new(
            event.id,
            stream,
            event.timestamp,
            event.payload,
            event.schema,
        );
        // Continue the change's trace (capture stamped when the
        // change was produced).
        event.trace = change.trace;
        self.metrics.events_captured.fetch_add(1, Ordering::Relaxed);
        let lat = now.since(change.timestamp) as f64;
        self.metrics.observe_latency(lat);
        if self.stage_obs.enabled {
            batch.push(Stage::Capture, lat.max(0.0));
        }
        event
    }

    /// Route one event: runtime queries, alert rules, detectors;
    /// notifications delivered inline (the sequential path).
    fn process_event(
        &self,
        event: &mut Event,
        stamp_now: TimestampMs,
        stats: &mut PumpStats,
        batch: &mut StageBatch,
    ) -> Result<()> {
        self.observe_route(event, stamp_now, batch);
        let (derived, notes) = self.evaluate_event_traced(event, stamp_now, batch)?;
        stats.derived += derived;
        for mut n in notes {
            if self.stage_obs.enabled {
                n.trace.stamp(Stage::Deliver, stamp_now);
                let span = n.trace.span_ms(Stage::Capture, Stage::Deliver).unwrap_or(0) as f64;
                batch.push(Stage::Deliver, span);
            }
            if self.deliver_untraced(n) {
                stats.notified += 1;
            }
        }
        Ok(())
    }

    /// Stamp the route stage on an event at `now` and queue the
    /// capture→route span. Called once per event by the sequential pump
    /// and by the sharded pump's router thread; callers read the clock
    /// once per batch and flush the batch once per cycle (stage
    /// histograms are ms-granular).
    pub fn observe_route(&self, event: &mut Event, now: TimestampMs, batch: &mut StageBatch) {
        if !self.stage_obs.enabled {
            return;
        }
        event.trace.stamp(Stage::Route, now);
        let span = event
            .trace
            .span_ms(Stage::Capture, Stage::Route)
            .unwrap_or(0) as f64;
        batch.push(Stage::Route, span);
    }

    /// [`EventServer::evaluate_event`] plus evaluate-stage tracing:
    /// stamps the event at `now` and queues the capture→evaluate span
    /// (pipeline latency up to this stage). Shard workers and the
    /// sequential pump both go through here.
    pub fn evaluate_event_traced(
        &self,
        event: &mut Event,
        now: TimestampMs,
        batch: &mut StageBatch,
    ) -> Result<(u64, Vec<Notification>)> {
        if !self.stage_obs.enabled {
            return self.evaluate_event(event);
        }
        let result = self.evaluate_event(event)?;
        event.trace.stamp(Stage::Evaluate, now);
        let span = event
            .trace
            .span_ms(Stage::Capture, Stage::Evaluate)
            .unwrap_or(0) as f64;
        batch.push(Stage::Evaluate, span);
        Ok(result)
    }

    /// Evaluate one event — continuous queries, alert rules, detectors —
    /// *collecting* its notifications instead of delivering them.
    /// Returns (derived event count, pending notifications).
    ///
    /// This is the worker-side half of the sharded pump: workers
    /// evaluate concurrently (the VIRT filter is stateful per key, so
    /// delivery is deferred to the single merge stage, which calls
    /// [`EventServer::deliver`] in per-key order). The sequential pump
    /// uses the same method and delivers inline, so both modes run the
    /// identical evaluation code.
    pub fn evaluate_event(&self, event: &Event) -> Result<(u64, Vec<Notification>)> {
        use std::sync::atomic::Ordering;
        self.metrics
            .events_processed
            .fetch_add(1, Ordering::Relaxed);

        // Historical store (D14): record before evaluation, so history
        // reflects arrival order and a replay re-presents exactly what
        // the pipeline saw. Both pump modes funnel through here; the
        // replay feed itself bypasses this method (no re-recording).
        if let Some(history) = self.history.get() {
            history.append(event)?;
        }
        self.evaluate_recorded(event)
    }

    /// [`evaluate_event`](Self::evaluate_event) after the history append
    /// (the per-event fallback of the batch path, whose events are
    /// already recorded).
    fn evaluate_recorded(&self, event: &Event) -> Result<(u64, Vec<Notification>)> {
        use std::sync::atomic::Ordering;
        // Continuous queries.
        let derived = self.runtime.push_event(event)?;
        self.metrics
            .derived_events
            .fetch_add(derived.len() as u64, Ordering::Relaxed);

        let mut notes = Vec::new();
        self.collect_alert_rules(event, &mut notes)?;
        self.collect_detectors(event, &mut notes)?;
        Ok((derived.len() as u64, notes))
    }

    /// Batched form of [`evaluate_event_traced`](Self::evaluate_event_traced)
    /// over a shard's whole routed batch — the worker-side hot path of
    /// the sharded pump (D15). Observable behavior matches evaluating
    /// the events one at a time in order: history append, dedup and
    /// detector state advance per event in arrival order, while the
    /// stateless stages amortize — continuous queries go through
    /// [`StreamRuntime::push_events`] (one pipeline lock per query per
    /// batch, head filters pre-verified through the batch VM) and alert
    /// rules through [`Matcher::match_batch`] (one batch-VM dispatch per
    /// candidate rule). Notifications are appended to `notes` in event
    /// order (per event: rules, then detectors). Returns (derived event
    /// count, events whose evaluation errored).
    pub fn evaluate_events(
        &self,
        events: &mut [Event],
        now: TimestampMs,
        batch: &mut StageBatch,
        scratch: &mut EvalScratch,
        notes: &mut Vec<Notification>,
    ) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        if events.is_empty() {
            return (0, 0);
        }
        self.metrics
            .events_processed
            .fetch_add(events.len() as u64, Ordering::Relaxed);

        // History first, per event in arrival order (D14: the store sees
        // exactly the sequence the pipeline evaluates). An append error
        // aborts that event's evaluation — like the per-event path — and
        // drops the rest of the batch to the per-event fallback, since
        // the batched CQ push cannot skip individual events.
        let mut errors = 0u64;
        if let Some(history) = self.history.get() {
            let mut failed: Option<usize> = None;
            for (i, event) in events.iter().enumerate() {
                if history.append(event).is_err() {
                    errors += 1;
                    failed = Some(i);
                    break;
                }
            }
            if let Some(first_bad) = failed {
                let mut derived_total = 0u64;
                for (i, event) in events.iter_mut().enumerate() {
                    if i == first_bad {
                        continue;
                    }
                    // Events before the failure are already recorded;
                    // the rest still need their history append (the
                    // whole batch was counted as processed above).
                    let step = if i < first_bad {
                        self.evaluate_recorded(event)
                    } else {
                        history
                            .append(event)
                            .and_then(|_| self.evaluate_recorded(event))
                    };
                    match step {
                        Ok((derived, ns)) => {
                            derived_total += derived;
                            notes.extend(ns);
                            self.stamp_evaluated(event, now, batch);
                        }
                        Err(_) => errors += 1,
                    }
                }
                return (derived_total, errors);
            }
        }

        // Continuous queries, batched. `cq[i]` is what `push_event`
        // would have returned for `events[i]`.
        self.runtime
            .push_events(events, &mut scratch.expr, &mut scratch.cq);
        let mut derived_total = 0u64;
        scratch.failed.clear();
        scratch.failed.resize(events.len(), false);
        for (i, r) in scratch.cq.iter().enumerate() {
            match r {
                Ok(derived) => derived_total += derived.len() as u64,
                Err(_) => {
                    scratch.failed[i] = true;
                    errors += 1;
                }
            }
        }
        self.metrics
            .derived_events
            .fetch_add(derived_total, Ordering::Relaxed);

        // Alert rules, batched per stream: the candidate-verify work is
        // rule-major through the batch VM; hits land back per event.
        scratch.hits.clear();
        scratch.hits.resize_with(events.len(), || None);
        {
            let rules = self.alert_rules.read();
            if !rules.is_empty() {
                scratch.sources.clear();
                for (i, ev) in events.iter().enumerate() {
                    if !scratch.failed[i]
                        && rules.contains_key(ev.source.as_ref())
                        && !scratch.sources.contains(&ev.source)
                    {
                        scratch.sources.push(Arc::clone(&ev.source));
                    }
                }
                for src in std::mem::take(&mut scratch.sources) {
                    let entry = &rules[src.as_ref()];
                    scratch.idxs.clear();
                    scratch.idxs.extend(events.iter().enumerate().filter_map(|(i, e)| {
                        (!scratch.failed[i] && e.source == src).then_some(i as u32)
                    }));
                    let records: Vec<&Record> = scratch
                        .idxs
                        .iter()
                        .map(|&i| &events[i as usize].payload)
                        .collect();
                    entry
                        .matcher
                        .match_batch(&records, &mut scratch.rules, &mut scratch.rule_out);
                    for (k, hit) in scratch.rule_out.drain(..).enumerate() {
                        scratch.hits[scratch.idxs[k] as usize] = Some(hit);
                    }
                }
            }
        }

        // Per-event tail, in arrival order: materialize rule hits, then
        // run the (stateful) detectors — the same per-event order as the
        // sequential path, so every notification lands in `notes` where
        // a per-event loop would have put it. An event's notes are
        // staged and only committed if its whole evaluation succeeds,
        // matching the per-event path's discard-on-error.
        let rules = self.alert_rules.read();
        for (i, event) in events.iter_mut().enumerate() {
            if scratch.failed[i] {
                continue;
            }
            scratch.event_notes.clear();
            match scratch.hits[i].take() {
                None => {}
                Some(Ok(ids)) => {
                    // `get`, not index: churn may have dropped the whole
                    // stream's rule set since the match phase's lock.
                    if let Some(entry) = rules.get(event.source.as_ref()) {
                        for id in ids {
                            scratch
                                .event_notes
                                .extend(Self::rule_notification(entry, id, event));
                        }
                    }
                }
                Some(Err(_)) => {
                    errors += 1;
                    continue;
                }
            }
            if self.collect_detectors(event, &mut scratch.event_notes).is_err() {
                errors += 1;
                continue;
            }
            notes.append(&mut scratch.event_notes);
            self.stamp_evaluated(event, now, batch);
        }
        (derived_total, errors)
    }

    /// Stamp the evaluate stage on a successfully evaluated event and
    /// queue its capture→evaluate span (no-op when stage observability
    /// is disabled).
    fn stamp_evaluated(&self, event: &mut Event, now: TimestampMs, batch: &mut StageBatch) {
        if !self.stage_obs.enabled {
            return;
        }
        event.trace.stamp(Stage::Evaluate, now);
        let span = event
            .trace
            .span_ms(Stage::Capture, Stage::Evaluate)
            .unwrap_or(0) as f64;
        batch.push(Stage::Evaluate, span);
    }

    /// Run a pending notification through the VIRT filter; true when it
    /// was delivered (not suppressed). Single-threaded per key by
    /// construction in both pump modes.
    pub fn deliver(&self, mut notification: Notification) -> bool {
        if self.stage_obs.enabled {
            notification.trace.stamp(Stage::Deliver, self.now());
            let span = notification
                .trace
                .span_ms(Stage::Capture, Stage::Deliver)
                .unwrap_or(0) as f64;
            self.stage_obs.observe(Stage::Deliver, span);
        }
        self.deliver_untraced(notification)
    }

    /// Deliver a whole batch of pending notifications through the VIRT
    /// filter — the merge stage of the sharded pump calls this once per
    /// drained cycle, so the filter's key-state lock is taken once per
    /// batch instead of once per notification (D15). Returns the number
    /// delivered. Filter decisions and handler invocations are in batch
    /// order, identical to calling [`deliver`](Self::deliver) per item.
    pub fn deliver_batch(&self, mut batch: Vec<Notification>) -> u64 {
        if batch.is_empty() {
            return 0;
        }
        if self.stage_obs.enabled {
            let now = self.now();
            let mut spans = StageBatch::default();
            for n in &mut batch {
                n.trace.stamp(Stage::Deliver, now);
                let span = n.trace.span_ms(Stage::Capture, Stage::Deliver).unwrap_or(0) as f64;
                spans.push(Stage::Deliver, span);
            }
            self.stage_obs.flush(&mut spans);
        }
        let delivered = self.notifications.notify_batch(batch);
        self.sync_notify_metrics();
        delivered
    }

    /// Deliver a notification whose deliver stage was already stamped
    /// and queued by the caller (the batched sequential path).
    fn deliver_untraced(&self, notification: Notification) -> bool {
        let delivered = self.notifications.notify(notification);
        self.sync_notify_metrics();
        delivered
    }

    fn collect_alert_rules(&self, event: &Event, out: &mut Vec<Notification>) -> Result<()> {
        let rules = self.alert_rules.read();
        if let Some(entry) = rules.get(event.source.as_ref()) {
            let hits = entry.matcher.match_record(&event.payload)?;
            for id in hits {
                out.extend(Self::rule_notification(entry, id, event));
            }
        }
        Ok(())
    }

    /// Materialize the notification for one alert-rule hit (shared by
    /// the per-event and batched matching paths). Returns `None` when
    /// the rule is gone: the batched path matches and materializes
    /// under two separate read-lock acquisitions, so concurrent rule
    /// churn can remove a matched rule in between — dropping the hit is
    /// exactly the per-event outcome had the remove landed one event
    /// earlier. (The per-event path holds one lock across both steps
    /// and never takes the `None` arm.)
    fn rule_notification(entry: &AlertRules, id: u64, event: &Event) -> Option<Notification> {
        let meta = entry.meta.get(&id)?;
        let key = match meta.key_field {
            Some(i) => format!(
                "{}:{}",
                meta.name,
                event.payload.get(i).cloned().unwrap_or(Value::Null)
            ),
            None => meta.name.clone(),
        };
        Some(Notification {
            key,
            severity: meta.severity,
            title: format!("rule '{}' matched on {}", meta.name, event.source),
            body: event.payload.to_string(),
            timestamp: event.timestamp,
            trace: event.trace,
            is_retraction: event.is_retraction(),
        })
    }

    fn collect_detectors(&self, event: &Event, out: &mut Vec<Notification>) -> Result<()> {
        use std::sync::atomic::Ordering;
        let detectors = self.detectors.read();
        if let Some(groups) = detectors.get(event.source.as_ref()) {
            for cell in groups {
                let g = &mut *cell.lock();
                if let Some(cond) = &g.condition {
                    if !cond.matches(&event.payload)? {
                        continue;
                    }
                }
                let Some(value) = event.payload.get(g.field).and_then(Value::as_f64) else {
                    continue;
                };
                let key = match g.key_field {
                    Some(i) => format!(
                        "{}:{}",
                        g.name,
                        event.payload.get(i).cloned().unwrap_or(Value::Null)
                    ),
                    None => g.name.clone(),
                };
                let det = g
                    .instances
                    .entry(key.clone())
                    .or_insert_with(|| (g.factory)());
                if let Some(dev) = det.observe(event.timestamp, value) {
                    self.metrics.deviations.fetch_add(1, Ordering::Relaxed);
                    out.push(Notification {
                        key,
                        severity: dev.score,
                        title: format!("{}: {} outside expectation", g.name, dev.value),
                        body: format!(
                            "observed {} expected [{:.3}, {:.3}] (score {:.2})",
                            dev.value, dev.expected_low, dev.expected_high, dev.score
                        ),
                        timestamp: dev.timestamp,
                        trace: event.trace,
                        is_retraction: event.is_retraction(),
                    });
                }
            }
        }
        Ok(())
    }

    fn sync_notify_metrics(&self) {
        use std::sync::atomic::Ordering;
        self.metrics.notifications.store(
            self.notifications.delivered.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.metrics.suppressed.store(
            self.notifications.suppressed.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Flush trailing windows on a stream (end of input).
    pub fn flush_stream(&self, stream: &str, watermark: TimestampMs) -> Result<Vec<Event>> {
        self.runtime.flush(stream, watermark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_analytics::ThresholdModel;
    use evdb_types::{DataType, SimClock};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn server() -> (EventServer, Arc<SimClock>) {
        let clock = SimClock::new(TimestampMs(1_000));
        let s = EventServer::in_memory(ServerConfig {
            clock: clock.clone(),
            ..Default::default()
        })
        .unwrap();
        s.db()
            .create_table(
                "orders",
                Schema::of(&[("oid", DataType::Int), ("amt", DataType::Float)]),
                "oid",
            )
            .unwrap();
        (s, clock)
    }

    #[test]
    fn trigger_capture_to_alert_rule() {
        let (s, _clock) = server();
        let stream = s
            .capture_table("orders", CaptureMechanism::Trigger)
            .unwrap();
        assert_eq!(stream, "orders_changes");
        s.add_alert_rule(
            "big",
            &stream,
            "amt > 1000 AND change = 'insert'",
            2.0,
            None,
        )
        .unwrap();

        s.db()
            .insert(
                "orders",
                Record::from_iter([Value::Int(1), Value::Float(50.0)]),
            )
            .unwrap();
        s.db()
            .insert(
                "orders",
                Record::from_iter([Value::Int(2), Value::Float(5_000.0)]),
            )
            .unwrap();
        let stats = s.pump().unwrap();
        assert_eq!(stats.captured, 2);
        assert_eq!(stats.notified, 1);
        let delivered = s.notifications().drain_delivered();
        assert_eq!(delivered.len(), 1);
        assert!(delivered[0].title.contains("big"));
    }

    #[test]
    fn journal_capture_sees_only_commits() {
        let (s, _clock) = server();
        let stream = s
            .capture_table("orders", CaptureMechanism::Journal)
            .unwrap();
        s.add_alert_rule("any", &stream, "TRUE", 1.0, Some("row_key"))
            .unwrap();
        {
            let mut tx = s.db().begin();
            tx.insert(
                "orders",
                Record::from_iter([Value::Int(1), Value::Float(1.0)]),
            )
            .unwrap();
            tx.rollback();
        }
        s.db()
            .insert(
                "orders",
                Record::from_iter([Value::Int(2), Value::Float(2.0)]),
            )
            .unwrap();
        let stats = s.pump().unwrap();
        assert_eq!(stats.captured, 1); // rollback invisible
    }

    #[test]
    fn query_poll_capture_respects_interval() {
        let (s, clock) = server();
        s.capture_table("orders", CaptureMechanism::QueryPoll { interval_ms: 1_000 })
            .unwrap();
        s.db()
            .insert(
                "orders",
                Record::from_iter([Value::Int(1), Value::Float(1.0)]),
            )
            .unwrap();
        assert_eq!(s.pump().unwrap().captured, 1); // first poll fires
        s.db()
            .insert(
                "orders",
                Record::from_iter([Value::Int(2), Value::Float(2.0)]),
            )
            .unwrap();
        assert_eq!(s.pump().unwrap().captured, 0); // within interval
        clock.advance(1_000);
        assert_eq!(s.pump().unwrap().captured, 1);
    }

    #[test]
    fn cql_over_captured_stream() {
        let (s, _clock) = server();
        let stream = s
            .capture_table("orders", CaptureMechanism::Trigger)
            .unwrap();
        s.register_cql(
            "volume",
            &format!("SELECT count() AS n FROM {stream} [ROWS 2]"),
        )
        .unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        s.on_query(
            "volume",
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();
        for i in 0..4 {
            s.db()
                .insert(
                    "orders",
                    Record::from_iter([Value::Int(i), Value::Float(1.0)]),
                )
                .unwrap();
        }
        let stats = s.pump().unwrap();
        assert_eq!(stats.derived, 2); // two ROWS-2 windows closed
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn speculative_query_delivers_signed_deltas() {
        // Allowed lateness keeps the finality horizon behind the eager
        // emissions so the 900ms straggler is revisable, not dropped.
        let s = EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(1_000)),
            lateness_ms: 2_000,
            ..Default::default()
        })
        .unwrap();
        s.create_stream(
            "ticks",
            Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]),
        )
        .unwrap();
        s.register_cql(
            "spec",
            "SELECT count() AS n FROM ticks [RANGE 1 s] EMIT SPECULATIVE",
        )
        .unwrap();
        let seen: Arc<parking_lot::Mutex<Vec<(i64, bool)>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        s.on_query_updates("spec", move |row, retract| {
            if let Some(Value::Int(n)) = row.get(0) {
                sink.lock().push((*n, retract));
            }
        })
        .unwrap();
        let tick = |px: f64| Record::from_iter([Value::from("A"), Value::Float(px)]);
        s.ingest("ticks", TimestampMs(100), tick(1.0)).unwrap();
        // Event time crosses the pane end → eager emission of n=1…
        s.ingest("ticks", TimestampMs(1_200), tick(1.0)).unwrap();
        // …then a late event revises it: retract n=1, insert n=2.
        s.ingest("ticks", TimestampMs(900), tick(1.0)).unwrap();
        assert_eq!(
            *seen.lock(),
            vec![(1, false), (1, true), (2, false)]
        );
        // The revision is visible in the exposition (D9 no-silent-work).
        let text = s.registry().render();
        assert!(text.contains("evdb_cq_retractions_total 1"), "{text}");
        assert!(text.contains("evdb_cq_pane_reopens_total 1"), "{text}");
        assert!(text.contains("evdb_cq_late_admitted_total 1"), "{text}");
    }

    #[test]
    fn detectors_fire_per_key() {
        let (s, _clock) = server();
        s.create_stream(
            "meters",
            Schema::of(&[("meter", DataType::Str), ("kw", DataType::Float)]),
        )
        .unwrap();
        s.add_detector(
            "load",
            "meters",
            "kw",
            Some("meter"),
            UpdatePolicy::Always,
            || Box::new(ThresholdModel::new(0.0, 100.0)),
        )
        .unwrap();
        let mut notified = 0;
        for (m, kw) in [("m1", 50.0), ("m1", 150.0), ("m2", 99.0), ("m2", 500.0)] {
            let st = s
                .ingest(
                    "meters",
                    s.now(),
                    Record::from_iter([Value::from(m), Value::Float(kw)]),
                )
                .unwrap();
            notified += st.notified;
        }
        assert_eq!(notified, 2);
        assert_eq!(s.metrics().snapshot().deviations, 2);
    }

    #[test]
    fn detector_when_condition_gates_observation() {
        let (s, _clock) = server();
        s.create_stream(
            "meters",
            Schema::of(&[("meter", DataType::Str), ("kw", DataType::Float)]),
        )
        .unwrap();
        let cond = evdb_expr::parse("meter = 'm1'").unwrap();
        s.add_detector_when(
            "load",
            "meters",
            "kw",
            Some("meter"),
            Some(&cond),
            UpdatePolicy::Always,
            || Box::new(ThresholdModel::new(0.0, 100.0)),
        )
        .unwrap();
        let mut notified = 0;
        // m2's excursion is filtered out by the WHEN predicate; only
        // m1's out-of-band reading fires.
        for (m, kw) in [("m1", 150.0), ("m2", 500.0)] {
            let st = s
                .ingest(
                    "meters",
                    s.now(),
                    Record::from_iter([Value::from(m), Value::Float(kw)]),
                )
                .unwrap();
            notified += st.notified;
        }
        assert_eq!(notified, 1);
        assert_eq!(s.metrics().snapshot().deviations, 1);
    }

    #[test]
    fn guarded_queue_access_audits() {
        let (s, _clock) = server();
        s.create_queue(
            "alerts",
            Schema::of(&[("x", DataType::Int)]),
            QueueConfig::default(),
        )
        .unwrap();
        s.queues().subscribe("alerts", "ops").unwrap();
        let alice = Principal::named("alice");
        assert!(s
            .enqueue_as(&alice, "alerts", Record::from_iter([Value::Int(1)]))
            .is_err()); // no grant
        s.access().grant("alice", "queue:alerts", Privilege::Write);
        s.enqueue_as(&alice, "alerts", Record::from_iter([Value::Int(1)]))
            .unwrap();
        assert!(s.dequeue_as(&alice, "alerts", "ops", 1).is_err()); // read not granted
        s.access().grant("alice", "*", Privilege::Read);
        assert_eq!(s.dequeue_as(&alice, "alerts", "ops", 1).unwrap().len(), 1);
        assert_eq!(s.access().audit_len(), 4);
    }

    #[test]
    fn notifications_persist_to_a_queue() {
        let (s, _clock) = server();
        let stream = s
            .capture_table("orders", CaptureMechanism::Trigger)
            .unwrap();
        s.add_alert_rule("big", &stream, "amt > 100", 2.5, Some("oid"))
            .unwrap();
        s.persist_notifications("alerts").unwrap();
        s.queues().subscribe("alerts", "oncall").unwrap();

        s.db()
            .insert(
                "orders",
                Record::from_iter([Value::Int(1), Value::Float(500.0)]),
            )
            .unwrap();
        s.db()
            .insert(
                "orders",
                Record::from_iter([Value::Int(2), Value::Float(5.0)]),
            )
            .unwrap();
        s.pump().unwrap();

        let d = s.queues().dequeue("alerts", "oncall", 10).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].message.payload.get(1), Some(&Value::Float(2.5)));
        assert_eq!(d[0].message.source, "notification-center");
    }

    #[test]
    fn virt_policy_suppresses_duplicates_end_to_end() {
        let clock = SimClock::new(TimestampMs(0));
        let s = EventServer::in_memory(ServerConfig {
            clock: clock.clone(),
            virt: VirtPolicy {
                suppression_window_ms: 10_000,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap();
        s.create_stream("t", Schema::of(&[("v", DataType::Float)]))
            .unwrap();
        s.add_alert_rule("hot", "t", "v > 10", 1.0, None).unwrap();
        let mut total = 0;
        for _ in 0..5 {
            total += s
                .ingest("t", clock.now(), Record::from_iter([Value::Float(50.0)]))
                .unwrap()
                .notified;
        }
        assert_eq!(total, 1); // four suppressed
        assert_eq!(s.metrics().snapshot().suppressed, 4);
    }
}
