//! The notification center and the VIRT filter.
//!
//! The tutorial's opening problem is **information overload**: "this
//! problem can be solved by identifying what information is critical …
//! and filtering out non-critical data" (§1, citing Hayes-Roth's VIRT —
//! Valuable Information at the Right Time). [`VirtPolicy`] implements the
//! three standard throttles:
//!
//! * a **severity floor** — below it, nobody is paged;
//! * **duplicate suppression** — an identical (key, severity band)
//!   notification within the suppression window adds no information;
//! * **per-key rate limiting** — at most N notifications per key per
//!   window, whatever their content.
//!
//! Suppressed notifications are counted, never silently lost to
//! observability.

use std::collections::HashMap;
use std::sync::Arc;

use evdb_types::{Clock, TimestampMs, Trace};
use parking_lot::Mutex;

/// An outbound notification.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// Correlation key (e.g. `"meter:42"` or `"sym:IBM"`); suppression
    /// and rate limiting are per key.
    pub key: String,
    /// Severity, 0.0 (informational) and up.
    pub severity: f64,
    /// Short human-readable headline.
    pub title: String,
    /// Detail body.
    pub body: String,
    /// When the condition was detected.
    pub timestamp: TimestampMs,
    /// Trace of the event that produced this notification; the deliver
    /// stage is stamped by [`crate::EventServer::deliver`].
    pub trace: Trace,
    /// True when the triggering event was a retraction delta: the
    /// condition that paged is being *withdrawn* (out-of-order input
    /// revised a window, a speculative emit was taken back). Handlers use
    /// this to cancel the page rather than re-raise it, and the VIRT
    /// filter lets it through duplicate suppression — a cancel always
    /// carries information, even right after the alert it cancels.
    pub is_retraction: bool,
}

/// VIRT filtering parameters.
#[derive(Debug, Clone, Copy)]
pub struct VirtPolicy {
    /// Notifications below this severity are dropped.
    pub min_severity: f64,
    /// Window within which a same-key notification of not-higher
    /// severity is considered a duplicate (ms). 0 disables.
    pub suppression_window_ms: i64,
    /// Max notifications per key per window (0 = unlimited).
    pub max_per_key_per_window: u32,
    /// Rate-limit window length (ms).
    pub rate_window_ms: i64,
}

impl Default for VirtPolicy {
    fn default() -> Self {
        VirtPolicy {
            min_severity: 0.0,
            suppression_window_ms: 0,
            max_per_key_per_window: 0,
            rate_window_ms: 60_000,
        }
    }
}

/// Subscriber callback.
pub type NotificationHandler = Arc<dyn Fn(&Notification) + Send + Sync>;

#[derive(Debug, Default)]
struct KeyState {
    last_emitted: Option<(TimestampMs, f64)>,
    window_start: TimestampMs,
    window_count: u32,
}

/// Fan-out point for notifications, guarded by a [`VirtPolicy`].
pub struct NotificationCenter {
    policy: VirtPolicy,
    clock: Arc<dyn Clock>,
    handlers: Mutex<Vec<NotificationHandler>>,
    state: Mutex<HashMap<String, KeyState>>,
    delivered_log: Mutex<Vec<Notification>>,
    /// Notifications delivered.
    pub delivered: std::sync::atomic::AtomicU64,
    /// Notifications suppressed by the filter.
    pub suppressed: std::sync::atomic::AtomicU64,
    /// Delivered notifications that were retraction cancels (a subset of
    /// `delivered`).
    pub retracted: std::sync::atomic::AtomicU64,
}

impl NotificationCenter {
    /// Create a center with the given policy and clock.
    pub fn new(policy: VirtPolicy, clock: Arc<dyn Clock>) -> NotificationCenter {
        NotificationCenter {
            policy,
            clock,
            handlers: Mutex::new(Vec::new()),
            state: Mutex::new(HashMap::new()),
            delivered_log: Mutex::new(Vec::new()),
            delivered: std::sync::atomic::AtomicU64::new(0),
            suppressed: std::sync::atomic::AtomicU64::new(0),
            retracted: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Register a delivery handler.
    pub fn on_notification(&self, handler: NotificationHandler) {
        self.handlers.lock().push(handler);
    }

    /// Recent delivered notifications (kept in memory for inspection;
    /// drained by the caller).
    pub fn drain_delivered(&self) -> Vec<Notification> {
        std::mem::take(&mut self.delivered_log.lock())
    }

    /// Offer a notification; returns `true` if it passed the VIRT filter
    /// and was delivered.
    pub fn notify(&self, notification: Notification) -> bool {
        use std::sync::atomic::Ordering;
        let now = self.clock.now();
        let admitted = {
            let mut state = self.state.lock();
            self.admit_locked(&mut state, &notification, now)
        };
        if !admitted {
            return false;
        }
        self.delivered.fetch_add(1, Ordering::Relaxed);
        for h in self.handlers.lock().iter() {
            h(&notification);
        }
        self.delivered_log.lock().push(notification);
        true
    }

    /// Offer a whole batch, taking each internal lock once instead of
    /// once per notification — the merge stage of the sharded pump feeds
    /// entire drained shards through here (D15). Filter decisions are
    /// identical to calling [`notify`](Self::notify) in order; returns
    /// the number delivered.
    pub fn notify_batch(&self, batch: Vec<Notification>) -> u64 {
        use std::sync::atomic::Ordering;
        if batch.is_empty() {
            return 0;
        }
        let now = self.clock.now();
        let mut passed = Vec::with_capacity(batch.len());
        {
            let mut state = self.state.lock();
            for n in batch {
                if self.admit_locked(&mut state, &n, now) {
                    passed.push(n);
                }
            }
        }
        if passed.is_empty() {
            return 0;
        }
        let count = passed.len() as u64;
        self.delivered.fetch_add(count, Ordering::Relaxed);
        {
            let handlers = self.handlers.lock();
            for n in &passed {
                for h in handlers.iter() {
                    h(n);
                }
            }
        }
        self.delivered_log.lock().extend(passed);
        count
    }

    /// The VIRT admission decision, with the key-state lock already
    /// held: updates key state and the `suppressed`/`retracted` counters
    /// and returns whether the notification is delivered. The caller
    /// owns the `delivered` count, handler fan-out and the log.
    fn admit_locked(
        &self,
        state: &mut HashMap<String, KeyState>,
        notification: &Notification,
        now: TimestampMs,
    ) -> bool {
        use std::sync::atomic::Ordering;
        if notification.severity < self.policy.min_severity {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // A retraction cancels a page that (by construction) already
        // passed the filter. Suppressing the cancel as a "duplicate" of
        // the very alert it withdraws would leave the pager stuck on, so
        // cancels bypass suppression and rate limiting — and leave the
        // key state untouched, so a later genuine re-alert is judged
        // against the original alert, not against the cancel.
        if notification.is_retraction {
            self.retracted.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let ks = state.entry(notification.key.clone()).or_default();

        // Duplicate suppression: same key, not-higher severity,
        // inside the window.
        if self.policy.suppression_window_ms > 0 {
            if let Some((last_ts, last_sev)) = ks.last_emitted {
                if now.since(last_ts) < self.policy.suppression_window_ms
                    && notification.severity <= last_sev
                {
                    self.suppressed.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        // Rate limit.
        if self.policy.max_per_key_per_window > 0 {
            if now.since(ks.window_start) >= self.policy.rate_window_ms {
                ks.window_start = now;
                ks.window_count = 0;
            }
            if ks.window_count >= self.policy.max_per_key_per_window {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            ks.window_count += 1;
        }
        ks.last_emitted = Some((now, notification.severity));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_types::SimClock;

    fn notif(key: &str, sev: f64) -> Notification {
        Notification {
            key: key.into(),
            severity: sev,
            title: "t".into(),
            body: "b".into(),
            timestamp: TimestampMs(0),
            trace: Trace::default(),
            is_retraction: false,
        }
    }

    #[test]
    fn severity_floor() {
        let clock = SimClock::new(TimestampMs(0));
        let nc = NotificationCenter::new(
            VirtPolicy {
                min_severity: 1.0,
                ..Default::default()
            },
            clock,
        );
        assert!(!nc.notify(notif("k", 0.5)));
        assert!(nc.notify(notif("k", 1.5)));
        assert_eq!(nc.drain_delivered().len(), 1);
    }

    #[test]
    fn duplicate_suppression_lets_escalations_through() {
        let clock = SimClock::new(TimestampMs(0));
        let nc = NotificationCenter::new(
            VirtPolicy {
                suppression_window_ms: 1_000,
                ..Default::default()
            },
            clock.clone(),
        );
        assert!(nc.notify(notif("k", 1.0)));
        assert!(!nc.notify(notif("k", 1.0))); // duplicate
        assert!(nc.notify(notif("k", 2.0))); // escalation passes
        assert!(nc.notify(notif("other", 1.0))); // different key passes
        clock.advance(1_001);
        assert!(nc.notify(notif("k", 1.0))); // window expired
    }

    #[test]
    fn per_key_rate_limit() {
        let clock = SimClock::new(TimestampMs(0));
        let nc = NotificationCenter::new(
            VirtPolicy {
                max_per_key_per_window: 2,
                rate_window_ms: 1_000,
                ..Default::default()
            },
            clock.clone(),
        );
        // Escalating severities dodge duplicate suppression (disabled
        // anyway) but hit the rate limit.
        assert!(nc.notify(notif("k", 1.0)));
        assert!(nc.notify(notif("k", 2.0)));
        assert!(!nc.notify(notif("k", 3.0)));
        clock.advance(1_000);
        assert!(nc.notify(notif("k", 4.0)));
        use std::sync::atomic::Ordering;
        assert_eq!(nc.delivered.load(Ordering::Relaxed), 3);
        assert_eq!(nc.suppressed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn batch_filtering_matches_sequential() {
        use std::sync::atomic::Ordering;
        let policy = VirtPolicy {
            min_severity: 1.0,
            suppression_window_ms: 1_000,
            max_per_key_per_window: 2,
            rate_window_ms: 1_000,
        };
        let mixed = || {
            let mut cancel = notif("a", 2.0);
            cancel.is_retraction = true;
            vec![
                notif("a", 2.0),
                notif("a", 2.0), // duplicate
                notif("a", 3.0), // escalation
                notif("a", 4.0), // rate-limited (2 per window)
                cancel,          // retraction bypasses both throttles
                notif("b", 0.5), // under the severity floor
                notif("b", 1.5),
            ]
        };
        let seq = NotificationCenter::new(policy, SimClock::new(TimestampMs(0)));
        for n in mixed() {
            seq.notify(n);
        }
        let bat = NotificationCenter::new(policy, SimClock::new(TimestampMs(0)));
        let delivered = bat.notify_batch(mixed());
        assert_eq!(delivered, seq.delivered.load(Ordering::Relaxed));
        assert_eq!(bat.drain_delivered(), seq.drain_delivered());
        assert_eq!(
            bat.suppressed.load(Ordering::Relaxed),
            seq.suppressed.load(Ordering::Relaxed)
        );
        assert_eq!(
            bat.retracted.load(Ordering::Relaxed),
            seq.retracted.load(Ordering::Relaxed)
        );
        assert_eq!(bat.notify_batch(Vec::new()), 0);
    }

    #[test]
    fn batch_handlers_fire_per_delivery() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let nc = NotificationCenter::new(VirtPolicy::default(), SimClock::new(TimestampMs(0)));
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        nc.on_notification(Arc::new(move |_| {
            n2.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(nc.notify_batch(vec![notif("a", 1.0), notif("b", 1.0)]), 2);
        assert_eq!(n.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn retraction_cancel_bypasses_duplicate_suppression() {
        use std::sync::atomic::Ordering;
        let clock = SimClock::new(TimestampMs(0));
        let nc = NotificationCenter::new(
            VirtPolicy {
                suppression_window_ms: 1_000,
                max_per_key_per_window: 1,
                rate_window_ms: 1_000,
                ..Default::default()
            },
            clock,
        );
        assert!(nc.notify(notif("k", 2.0)));
        // Same key + severity, inside the window: the retraction would be
        // swallowed as a duplicate (and by the rate limit) — but a cancel
        // must reach the pager.
        let mut cancel = notif("k", 2.0);
        cancel.is_retraction = true;
        assert!(nc.notify(cancel));
        assert_eq!(nc.retracted.load(Ordering::Relaxed), 1);
        assert_eq!(nc.delivered.load(Ordering::Relaxed), 2);
        // The cancel did not reset key state: a genuine same-severity
        // re-alert right after is still a duplicate of the original.
        assert!(!nc.notify(notif("k", 2.0)));
        // Retractions still respect the severity floor.
        let nc = NotificationCenter::new(
            VirtPolicy {
                min_severity: 5.0,
                ..Default::default()
            },
            SimClock::new(TimestampMs(0)),
        );
        let mut low = notif("k", 1.0);
        low.is_retraction = true;
        assert!(!nc.notify(low));
        assert_eq!(nc.retracted.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn handlers_fire_per_delivery() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let clock = SimClock::new(TimestampMs(0));
        let nc = NotificationCenter::new(VirtPolicy::default(), clock);
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        nc.on_notification(Arc::new(move |_| {
            n2.fetch_add(1, Ordering::SeqCst);
        }));
        nc.notify(notif("a", 1.0));
        nc.notify(notif("b", 1.0));
        assert_eq!(n.load(Ordering::SeqCst), 2);
    }
}
