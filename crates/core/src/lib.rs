//! # evdb-core
//!
//! The EventDB facade: one [`EventServer`] that composes the storage
//! engine, staging areas, rules broker, continuous-query runtime,
//! analytics detectors and the distribution fabric into the event-driven
//! architecture of Chandy & Gawlick's tutorial.
//!
//! The server is **pump-driven**: captures buffer change events, and each
//! [`EventServer::pump`] drains them through the evaluation pipeline
//! (streams → continuous queries → detectors → notifications). This keeps
//! every experiment deterministic under a simulated clock; callers that
//! want liveness call `pump` from their own loop or timer thread.
//!
//! * [`server`] — the facade: tables, capture mechanisms (trigger /
//!   journal / query-poll), streams, CQL queries, queues, topics,
//!   detectors, pump.
//! * [`notify`] — the notification center with the **VIRT** filter
//!   ("Valuable Information at the Right Time", §1): severity floor,
//!   per-key duplicate suppression and rate limiting against
//!   information overload.
//! * [`security`] — principals, grants and the audit trail
//!   (the "security, auditing, tracking" operational characteristic).
//! * [`metrics`] — counters and latency histograms for the harness.
//! * [`shard`] — the sharded parallel pump: partitioned multi-worker
//!   evaluation behind [`PumpMode::Sharded`], preserving per-key order.
//! * [`admission`] — the bounded staged-ingest buffer and its
//!   [`OverloadPolicy`] (block / reject / shed-lowest), the explicit
//!   overload boundary between producers and the pump.
//! * [`history`] — the per-stream columnar historical event store
//!   (DESIGN.md D14): zone-map-pruned historical queries, pump-driven
//!   compaction, and `REPLAY` back through the CQ runtime.

pub mod admission;
pub mod history;
pub mod metrics;
pub mod notify;
pub mod pump;
pub mod security;
pub mod server;
pub mod shard;

pub use admission::{AdmissionControl, OverloadPolicy};
pub use history::{History, HistoryConfig};
pub use metrics::{Metrics, MetricsSnapshot, ShardMetrics, ShardSnapshot};
pub use notify::{Notification, NotificationCenter, VirtPolicy};
pub use pump::{spawn_pump, spawn_pump_with, PumpHandle, PumpMode};
pub use security::{AccessControl, Principal, Privilege};
pub use server::{CaptureMechanism, EventServer};
