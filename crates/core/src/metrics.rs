//! Engine metrics: cheap atomic counters plus a latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};

use evdb_analytics::Histogram;
use parking_lot::Mutex;

/// Live counters (lock-free) and a capture-to-process latency histogram.
#[derive(Debug)]
pub struct Metrics {
    /// Change events captured (all mechanisms).
    pub events_captured: AtomicU64,
    /// Events pushed through the stream runtime.
    pub events_processed: AtomicU64,
    /// Derived events produced by continuous queries.
    pub derived_events: AtomicU64,
    /// Deviations detected.
    pub deviations: AtomicU64,
    /// Notifications actually delivered.
    pub notifications: AtomicU64,
    /// Notifications suppressed by the VIRT filter.
    pub suppressed: AtomicU64,
    latency: Mutex<Histogram>,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Change events captured.
    pub events_captured: u64,
    /// Events pushed through the runtime.
    pub events_processed: u64,
    /// Derived events from queries.
    pub derived_events: u64,
    /// Deviations detected.
    pub deviations: u64,
    /// Notifications delivered.
    pub notifications: u64,
    /// Notifications suppressed.
    pub suppressed: u64,
    /// Median capture→process latency (ms), if observed.
    pub latency_p50_ms: Option<f64>,
    /// p99 capture→process latency (ms), if observed.
    pub latency_p99_ms: Option<f64>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            events_captured: AtomicU64::new(0),
            events_processed: AtomicU64::new(0),
            derived_events: AtomicU64::new(0),
            deviations: AtomicU64::new(0),
            notifications: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            // 0..10s in 10ms bins covers poll-driven capture latencies.
            latency: Mutex::new(Histogram::new(0.0, 10_000.0, 1_000)),
        }
    }
}

impl Metrics {
    /// Record one capture→process latency sample (ms).
    pub fn observe_latency(&self, ms: f64) {
        self.latency.lock().observe(ms.max(0.0));
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency = self.latency.lock();
        MetricsSnapshot {
            events_captured: self.events_captured.load(Ordering::Relaxed),
            events_processed: self.events_processed.load(Ordering::Relaxed),
            derived_events: self.derived_events.load(Ordering::Relaxed),
            deviations: self.deviations.load(Ordering::Relaxed),
            notifications: self.notifications.load(Ordering::Relaxed),
            suppressed: self.suppressed.load(Ordering::Relaxed),
            latency_p50_ms: latency.quantile(0.5),
            latency_p99_ms: latency.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters_and_latency() {
        let m = Metrics::default();
        m.events_captured.fetch_add(3, Ordering::Relaxed);
        m.observe_latency(20.0);
        m.observe_latency(40.0);
        let s = m.snapshot();
        assert_eq!(s.events_captured, 3);
        assert_eq!(s.events_processed, 0);
        let p50 = s.latency_p50_ms.unwrap();
        assert!(p50 > 0.0 && p50 < 50.0);
    }
}
