//! Engine metrics: cheap atomic counters plus a latency histogram, and
//! per-shard counters when the sharded pump is running.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evdb_analytics::Histogram;
use evdb_types::Stage;
use parking_lot::Mutex;

pub use evdb_obs::{Counter, Gauge, HistogramHandle, HistogramStats, Registry, Snapshot};

/// Per-pipeline-stage observability handles: one event counter and one
/// latency histogram per stage (`evdb_stage_<stage>_events_total`,
/// `evdb_stage_<stage>_latency_ms`). All handles are no-ops when the
/// registry is disabled; `enabled` lets hot paths skip even the clock
/// reads that feed them.
pub struct StageObs {
    /// False when the registry is disabled.
    pub enabled: bool,
    counters: [Arc<Counter>; 4],
    latencies: [Arc<HistogramHandle>; 4],
}

impl StageObs {
    /// Register the per-stage metrics with `registry`.
    pub fn bind(registry: &Registry) -> StageObs {
        let counters =
            Stage::ALL.map(|s| registry.counter(&format!("evdb_stage_{}_events_total", s.name())));
        let latencies = Stage::ALL
            .map(|s| registry.latency_histogram(&format!("evdb_stage_{}_latency_ms", s.name())));
        StageObs {
            enabled: registry.is_enabled(),
            counters,
            latencies,
        }
    }

    /// Count one event through `stage` with its latency sample (ms).
    /// Per-call cost is an atomic add plus a mutex-guarded histogram
    /// bin increment — fine for one-off sites (inline ingest, the merge
    /// thread); batch loops should accrue into a [`StageBatch`] and
    /// [`StageObs::flush`] once instead.
    pub fn observe(&self, stage: Stage, latency_ms: f64) {
        if !self.enabled {
            return;
        }
        self.counters[stage as usize].inc();
        self.latencies[stage as usize].observe(latency_ms);
    }

    /// Flush a batch of stage samples: one counter add and one
    /// histogram lock per stage that saw samples this batch, instead of
    /// per event. Clears the batch, retaining its capacity for reuse.
    pub fn flush(&self, batch: &mut StageBatch) {
        if !self.enabled {
            return;
        }
        for (i, samples) in batch.samples.iter_mut().enumerate() {
            if !samples.is_empty() {
                self.counters[i].add(samples.len() as u64);
                self.latencies[i].observe_many(samples);
                samples.clear();
            }
        }
    }
}

/// Per-batch scratch for stage latency samples. Hot loops (the pump,
/// the shard router/workers) push one sample per event per stage and
/// flush once per batch through [`StageObs::flush`], so the per-event
/// instrumentation cost is a `Vec` push rather than an atomic add plus
/// a histogram lock — the difference between a ~6% and a ~1% tax in
/// experiment E13. Callers skip pushes entirely when
/// [`StageObs::enabled`] is false.
#[derive(Debug, Default)]
pub struct StageBatch {
    samples: [Vec<f64>; 4],
}

impl StageBatch {
    /// Queue one latency sample (ms) for `stage`.
    pub fn push(&mut self, stage: Stage, latency_ms: f64) {
        self.samples[stage as usize].push(latency_ms);
    }
}

/// Live counters (lock-free) and a capture-to-process latency histogram.
#[derive(Debug)]
pub struct Metrics {
    /// Change events captured (all mechanisms).
    pub events_captured: AtomicU64,
    /// Events pushed through the stream runtime.
    pub events_processed: AtomicU64,
    /// Derived events produced by continuous queries.
    pub derived_events: AtomicU64,
    /// Deviations detected.
    pub deviations: AtomicU64,
    /// Notifications actually delivered.
    pub notifications: AtomicU64,
    /// Notifications suppressed by the VIRT filter.
    pub suppressed: AtomicU64,
    latency: Mutex<Histogram>,
    /// One entry per worker of the active sharded pump (empty when the
    /// pump is sequential). Replaced wholesale by `register_shards`.
    shards: Mutex<Vec<Arc<ShardMetrics>>>,
    /// Totals folded in from shard sets retired by `register_shards`, so
    /// cumulative counters stay monotone across pump restarts.
    retired_routed: AtomicU64,
    /// Busy-cycle total from retired shard sets.
    retired_busy: AtomicU64,
}

/// Live counters for one shard worker of the sharded pump.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Events the router has assigned to this shard.
    pub events_routed: AtomicU64,
    /// Events currently enqueued for (not yet finished by) this worker.
    pub queue_depth: AtomicU64,
    /// Batches the worker has pulled and evaluated (busy cycles; the
    /// gap between this and the router's cycle count is idle time).
    pub busy_cycles: AtomicU64,
}

/// A point-in-time copy of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Events routed to the shard so far.
    pub events_routed: u64,
    /// Events enqueued but not yet evaluated.
    pub queue_depth: u64,
    /// Batches evaluated by the worker.
    pub busy_cycles: u64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Change events captured.
    pub events_captured: u64,
    /// Events pushed through the runtime.
    pub events_processed: u64,
    /// Derived events from queries.
    pub derived_events: u64,
    /// Deviations detected.
    pub deviations: u64,
    /// Notifications delivered.
    pub notifications: u64,
    /// Notifications suppressed.
    pub suppressed: u64,
    /// Median capture→process latency (ms), if observed.
    pub latency_p50_ms: Option<f64>,
    /// p99 capture→process latency (ms), if observed.
    pub latency_p99_ms: Option<f64>,
    /// True when latency samples hit the histogram cap: the p99 is then a
    /// clamped lower bound, not a trustworthy quantile.
    pub latency_saturated: bool,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            events_captured: AtomicU64::new(0),
            events_processed: AtomicU64::new(0),
            derived_events: AtomicU64::new(0),
            deviations: AtomicU64::new(0),
            notifications: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            // 0..10s in 10ms bins covers poll-driven capture latencies.
            latency: Mutex::new(Histogram::new(0.0, 10_000.0, 1_000)),
            shards: Mutex::new(Vec::new()),
            retired_routed: AtomicU64::new(0),
            retired_busy: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Record one capture→process latency sample (ms).
    pub fn observe_latency(&self, ms: f64) {
        self.latency.lock().observe(ms.max(0.0));
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency = self.latency.lock();
        MetricsSnapshot {
            events_captured: self.events_captured.load(Ordering::Relaxed),
            events_processed: self.events_processed.load(Ordering::Relaxed),
            derived_events: self.derived_events.load(Ordering::Relaxed),
            deviations: self.deviations.load(Ordering::Relaxed),
            notifications: self.notifications.load(Ordering::Relaxed),
            suppressed: self.suppressed.load(Ordering::Relaxed),
            latency_p50_ms: latency.quantile(0.5),
            latency_p99_ms: latency.quantile(0.99),
            latency_saturated: latency.saturated(),
        }
    }

    /// Install `n` fresh shard counter sets (called by the sharded pump
    /// at startup) and return them for the workers to update.
    ///
    /// The retiring sets' totals are folded into persistent accumulators
    /// first, so [`Metrics::total_events_routed`] and
    /// [`Metrics::total_busy_cycles`] never go backwards when the pump
    /// restarts (e.g. a `PumpMode` switch mid-session).
    pub fn register_shards(&self, n: usize) -> Vec<Arc<ShardMetrics>> {
        let fresh: Vec<Arc<ShardMetrics>> =
            (0..n).map(|_| Arc::new(ShardMetrics::default())).collect();
        let mut shards = self.shards.lock();
        for old in shards.iter() {
            self.retired_routed
                .fetch_add(old.events_routed.load(Ordering::Relaxed), Ordering::Relaxed);
            self.retired_busy
                .fetch_add(old.busy_cycles.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        *shards = fresh.clone();
        fresh
    }

    /// Cumulative events routed across every shard set ever registered
    /// (monotone across pump restarts).
    pub fn total_events_routed(&self) -> u64 {
        let live: u64 = self
            .shards
            .lock()
            .iter()
            .map(|s| s.events_routed.load(Ordering::Relaxed))
            .sum();
        self.retired_routed.load(Ordering::Relaxed) + live
    }

    /// Cumulative busy cycles across every shard set ever registered.
    pub fn total_busy_cycles(&self) -> u64 {
        let live: u64 = self
            .shards
            .lock()
            .iter()
            .map(|s| s.busy_cycles.load(Ordering::Relaxed))
            .sum();
        self.retired_busy.load(Ordering::Relaxed) + live
    }

    /// Point-in-time copies of the per-shard counters (empty unless a
    /// sharded pump has registered).
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards
            .lock()
            .iter()
            .map(|s| ShardSnapshot {
                events_routed: s.events_routed.load(Ordering::Relaxed),
                queue_depth: s.queue_depth.load(Ordering::Relaxed),
                busy_cycles: s.busy_cycles.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters_and_latency() {
        let m = Metrics::default();
        m.events_captured.fetch_add(3, Ordering::Relaxed);
        m.observe_latency(20.0);
        m.observe_latency(40.0);
        let s = m.snapshot();
        assert_eq!(s.events_captured, 3);
        assert_eq!(s.events_processed, 0);
        let p50 = s.latency_p50_ms.unwrap();
        assert!(p50 > 0.0 && p50 < 50.0);
    }

    #[test]
    fn shard_registration_resets_counters() {
        let m = Metrics::default();
        assert!(m.shard_snapshots().is_empty());
        let shards = m.register_shards(2);
        shards[1].events_routed.fetch_add(7, Ordering::Relaxed);
        let snaps = m.shard_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].events_routed, 0);
        assert_eq!(snaps[1].events_routed, 7);
        // Re-registration replaces the old counters.
        m.register_shards(4);
        assert!(m.shard_snapshots().iter().all(|s| s.events_routed == 0));
    }

    #[test]
    fn shard_totals_monotone_across_registration() {
        // Regression: re-registration used to drop the old counters on
        // the floor, so cumulative totals went backwards on pump restart.
        let m = Metrics::default();
        let shards = m.register_shards(2);
        shards[0].events_routed.fetch_add(5, Ordering::Relaxed);
        shards[1].events_routed.fetch_add(7, Ordering::Relaxed);
        shards[1].busy_cycles.fetch_add(3, Ordering::Relaxed);
        assert_eq!(m.total_events_routed(), 12);

        let before = m.total_events_routed();
        let shards = m.register_shards(3);
        assert!(
            m.total_events_routed() >= before,
            "total went backwards across register_shards"
        );
        assert_eq!(m.total_events_routed(), 12);
        assert_eq!(m.total_busy_cycles(), 3);

        shards[2].events_routed.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.total_events_routed(), 13);
        // Live per-shard snapshots still start from zero for the new set.
        assert_eq!(m.shard_snapshots()[0].events_routed, 0);
    }

    #[test]
    fn snapshot_flags_saturated_latency() {
        let m = Metrics::default();
        for _ in 0..99 {
            m.observe_latency(5.0);
        }
        assert!(!m.snapshot().latency_saturated);
        for _ in 0..2 {
            m.observe_latency(50_000.0); // beyond the 10s cap
        }
        let s = m.snapshot();
        assert!(s.latency_saturated);
        // And the quantile fix keeps the clamped p99 at the cap rather
        // than an in-range midpoint.
        assert_eq!(s.latency_p99_ms, Some(10_000.0));
    }
}
