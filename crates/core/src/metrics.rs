//! Engine metrics: cheap atomic counters plus a latency histogram, and
//! per-shard counters when the sharded pump is running.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evdb_analytics::Histogram;
use parking_lot::Mutex;

/// Live counters (lock-free) and a capture-to-process latency histogram.
#[derive(Debug)]
pub struct Metrics {
    /// Change events captured (all mechanisms).
    pub events_captured: AtomicU64,
    /// Events pushed through the stream runtime.
    pub events_processed: AtomicU64,
    /// Derived events produced by continuous queries.
    pub derived_events: AtomicU64,
    /// Deviations detected.
    pub deviations: AtomicU64,
    /// Notifications actually delivered.
    pub notifications: AtomicU64,
    /// Notifications suppressed by the VIRT filter.
    pub suppressed: AtomicU64,
    latency: Mutex<Histogram>,
    /// One entry per worker of the active sharded pump (empty when the
    /// pump is sequential). Replaced wholesale by `register_shards`.
    shards: Mutex<Vec<Arc<ShardMetrics>>>,
}

/// Live counters for one shard worker of the sharded pump.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Events the router has assigned to this shard.
    pub events_routed: AtomicU64,
    /// Events currently enqueued for (not yet finished by) this worker.
    pub queue_depth: AtomicU64,
    /// Batches the worker has pulled and evaluated (busy cycles; the
    /// gap between this and the router's cycle count is idle time).
    pub busy_cycles: AtomicU64,
}

/// A point-in-time copy of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Events routed to the shard so far.
    pub events_routed: u64,
    /// Events enqueued but not yet evaluated.
    pub queue_depth: u64,
    /// Batches evaluated by the worker.
    pub busy_cycles: u64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Change events captured.
    pub events_captured: u64,
    /// Events pushed through the runtime.
    pub events_processed: u64,
    /// Derived events from queries.
    pub derived_events: u64,
    /// Deviations detected.
    pub deviations: u64,
    /// Notifications delivered.
    pub notifications: u64,
    /// Notifications suppressed.
    pub suppressed: u64,
    /// Median capture→process latency (ms), if observed.
    pub latency_p50_ms: Option<f64>,
    /// p99 capture→process latency (ms), if observed.
    pub latency_p99_ms: Option<f64>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            events_captured: AtomicU64::new(0),
            events_processed: AtomicU64::new(0),
            derived_events: AtomicU64::new(0),
            deviations: AtomicU64::new(0),
            notifications: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            // 0..10s in 10ms bins covers poll-driven capture latencies.
            latency: Mutex::new(Histogram::new(0.0, 10_000.0, 1_000)),
            shards: Mutex::new(Vec::new()),
        }
    }
}

impl Metrics {
    /// Record one capture→process latency sample (ms).
    pub fn observe_latency(&self, ms: f64) {
        self.latency.lock().observe(ms.max(0.0));
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency = self.latency.lock();
        MetricsSnapshot {
            events_captured: self.events_captured.load(Ordering::Relaxed),
            events_processed: self.events_processed.load(Ordering::Relaxed),
            derived_events: self.derived_events.load(Ordering::Relaxed),
            deviations: self.deviations.load(Ordering::Relaxed),
            notifications: self.notifications.load(Ordering::Relaxed),
            suppressed: self.suppressed.load(Ordering::Relaxed),
            latency_p50_ms: latency.quantile(0.5),
            latency_p99_ms: latency.quantile(0.99),
        }
    }

    /// Install `n` fresh shard counter sets (called by the sharded pump
    /// at startup) and return them for the workers to update.
    pub fn register_shards(&self, n: usize) -> Vec<Arc<ShardMetrics>> {
        let fresh: Vec<Arc<ShardMetrics>> =
            (0..n).map(|_| Arc::new(ShardMetrics::default())).collect();
        *self.shards.lock() = fresh.clone();
        fresh
    }

    /// Point-in-time copies of the per-shard counters (empty unless a
    /// sharded pump has registered).
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards
            .lock()
            .iter()
            .map(|s| ShardSnapshot {
                events_routed: s.events_routed.load(Ordering::Relaxed),
                queue_depth: s.queue_depth.load(Ordering::Relaxed),
                busy_cycles: s.busy_cycles.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters_and_latency() {
        let m = Metrics::default();
        m.events_captured.fetch_add(3, Ordering::Relaxed);
        m.observe_latency(20.0);
        m.observe_latency(40.0);
        let s = m.snapshot();
        assert_eq!(s.events_captured, 3);
        assert_eq!(s.events_processed, 0);
        let p50 = s.latency_p50_ms.unwrap();
        assert!(p50 > 0.0 && p50 < 50.0);
    }

    #[test]
    fn shard_registration_resets_counters() {
        let m = Metrics::default();
        assert!(m.shard_snapshots().is_empty());
        let shards = m.register_shards(2);
        shards[1].events_routed.fetch_add(7, Ordering::Relaxed);
        let snaps = m.shard_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].events_routed, 0);
        assert_eq!(snaps[1].events_routed, 7);
        // Re-registration replaces the old counters.
        m.register_shards(4);
        assert!(m.shard_snapshots().iter().all(|s| s.events_routed == 0));
    }
}
