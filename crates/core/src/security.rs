//! Principals, privileges and the audit trail.
//!
//! Every operational-characteristics list in the tutorial leads with
//! "security, auditing, tracking" (§2.2.b.ii, c.iv, d.iii). This module
//! provides the minimal honest version: named principals, per-resource
//! grants with wildcard support, and an audit log *stored in a database
//! table* so it inherits the engine's durability.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use evdb_storage::Database;
use evdb_types::{DataType, Error, Record, Result, Schema, Value};
use parking_lot::RwLock;

/// A named actor (user, service, responder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Principal {
    /// Unique name.
    pub name: String,
    /// Free-form attributes used by routing predicates (ChemSecure /
    /// SensorNet route to the *authorized, available* responder).
    pub attributes: HashMap<String, String>,
}

impl Principal {
    /// A principal with no attributes.
    pub fn named(name: &str) -> Principal {
        Principal {
            name: name.to_string(),
            attributes: HashMap::new(),
        }
    }

    /// Builder-style attribute.
    pub fn with_attr(mut self, k: &str, v: &str) -> Principal {
        self.attributes.insert(k.to_string(), v.to_string());
        self
    }
}

/// What a principal may do with a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Read / dequeue / subscribe.
    Read,
    /// Write / enqueue / publish.
    Write,
    /// DDL and grants.
    Admin,
}

impl Privilege {
    fn name(self) -> &'static str {
        match self {
            Privilege::Read => "read",
            Privilege::Write => "write",
            Privilege::Admin => "admin",
        }
    }
}

const AUDIT_TABLE: &str = "__audit";

/// Grant store + durable audit log.
pub struct AccessControl {
    db: Arc<Database>,
    /// (principal, resource-or-`*`) → privileges.
    grants: RwLock<HashMap<(String, String), HashSet<Privilege>>>,
    seq: evdb_types::IdGenerator,
}

impl AccessControl {
    /// Attach to a database, creating the audit table if needed.
    pub fn attach(db: Arc<Database>) -> Result<AccessControl> {
        if db.table(AUDIT_TABLE).is_err() {
            db.create_table(
                AUDIT_TABLE,
                Schema::of(&[
                    ("id", DataType::Int),
                    ("ts", DataType::Timestamp),
                    ("principal", DataType::Str),
                    ("action", DataType::Str),
                    ("resource", DataType::Str),
                    ("allowed", DataType::Bool),
                ]),
                "id",
            )?;
        }
        Ok(AccessControl {
            db,
            grants: RwLock::new(HashMap::new()),
            seq: evdb_types::IdGenerator::default(),
        })
    }

    /// Grant a privilege on a resource (`"*"` = all resources).
    pub fn grant(&self, principal: &str, resource: &str, privilege: Privilege) {
        self.grants
            .write()
            .entry((principal.to_string(), resource.to_string()))
            .or_default()
            .insert(privilege);
    }

    /// Revoke a privilege.
    pub fn revoke(&self, principal: &str, resource: &str, privilege: Privilege) {
        if let Some(set) = self
            .grants
            .write()
            .get_mut(&(principal.to_string(), resource.to_string()))
        {
            set.remove(&privilege);
        }
    }

    /// Is the principal allowed? Admin implies read and write; a `*`
    /// resource grant covers everything.
    pub fn allowed(&self, principal: &str, resource: &str, privilege: Privilege) -> bool {
        let grants = self.grants.read();
        let has = |res: &str| {
            grants
                .get(&(principal.to_string(), res.to_string()))
                .map(|s| s.contains(&privilege) || s.contains(&Privilege::Admin))
                .unwrap_or(false)
        };
        has(resource) || has("*")
    }

    /// Check and durably audit an access. Returns `Unauthorized` on
    /// denial (the denial itself is audited too — "tracking").
    pub fn check(
        &self,
        principal: &Principal,
        resource: &str,
        privilege: Privilege,
    ) -> Result<()> {
        let ok = self.allowed(&principal.name, resource, privilege);
        self.db.insert(
            AUDIT_TABLE,
            Record::from_iter([
                Value::Int(self.seq.next_id() as i64),
                Value::Timestamp(self.db.now()),
                Value::from(principal.name.as_str()),
                Value::from(privilege.name()),
                Value::from(resource),
                Value::Bool(ok),
            ]),
        )?;
        if ok {
            Ok(())
        } else {
            Err(Error::Unauthorized(format!(
                "{} lacks {} on {resource}",
                principal.name,
                privilege.name()
            )))
        }
    }

    /// Number of audit entries.
    pub fn audit_len(&self) -> usize {
        self.db.table(AUDIT_TABLE).map(|t| t.len()).unwrap_or(0)
    }

    /// Audit rows for one principal (for tests/inspection).
    pub fn audit_for(&self, principal: &str) -> Result<Vec<Record>> {
        let pred = evdb_expr::Expr::binary(
            evdb_expr::BinaryOp::Eq,
            evdb_expr::Expr::field("principal"),
            evdb_expr::Expr::lit(principal),
        );
        self.db.select(AUDIT_TABLE, &pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_storage::DbOptions;

    fn ac() -> AccessControl {
        let db = Database::in_memory(DbOptions::default()).unwrap();
        AccessControl::attach(db).unwrap()
    }

    #[test]
    fn grants_and_wildcards() {
        let ac = ac();
        ac.grant("alice", "q1", Privilege::Read);
        ac.grant("root", "*", Privilege::Admin);
        assert!(ac.allowed("alice", "q1", Privilege::Read));
        assert!(!ac.allowed("alice", "q1", Privilege::Write));
        assert!(!ac.allowed("alice", "q2", Privilege::Read));
        assert!(ac.allowed("root", "anything", Privilege::Write)); // admin implies
        ac.revoke("alice", "q1", Privilege::Read);
        assert!(!ac.allowed("alice", "q1", Privilege::Read));
    }

    #[test]
    fn check_audits_both_outcomes() {
        let ac = ac();
        ac.grant("alice", "q1", Privilege::Write);
        let alice = Principal::named("alice");
        assert!(ac.check(&alice, "q1", Privilege::Write).is_ok());
        let denied = ac.check(&alice, "q2", Privilege::Write);
        assert!(matches!(denied, Err(Error::Unauthorized(_))));
        assert_eq!(ac.audit_len(), 2);
        let rows = ac.audit_for("alice").unwrap();
        assert_eq!(rows.len(), 2);
        let allowed: Vec<bool> = rows
            .iter()
            .map(|r| r.get(5).unwrap().as_bool().unwrap())
            .collect();
        assert!(allowed.contains(&true) && allowed.contains(&false));
    }

    #[test]
    fn principal_attributes_for_routing() {
        let p = Principal::named("responder7")
            .with_attr("zone", "east")
            .with_attr("available", "true");
        assert_eq!(p.attributes.get("zone").map(String::as_str), Some("east"));
    }
}
