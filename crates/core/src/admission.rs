//! Admission control for the staged ingest path (DESIGN.md D10).
//!
//! Producers — capture triggers firing inside writer transactions and
//! [`ingest_async`] callers — stage events into one bounded buffer that
//! the pump drains. The buffer is the single source of cross-stream
//! arrival order, and its capacity is the system's explicit overload
//! boundary: when it is full, the configured [`OverloadPolicy`] decides
//! whether the producer waits, is turned away, or displaces the
//! lowest-priority staged event. Every outcome is counted — nothing is
//! capped or dropped silently (the D9 rule).
//!
//! The accounting invariant the policies uphold (asserted by experiment
//! E14 and `tests/prop_overload.rs`):
//!
//! ```text
//! offered == drained + shed + rejected
//! ```
//!
//! where `drained` events are exactly the ones the pump goes on to
//! evaluate.
//!
//! Pull-based captures (journal mining, query-poll snapshots) are not
//! staged here: the pump reads them at its own pace, so they are
//! naturally bounded by the drain cadence.
//!
//! [`ingest_async`]: crate::server::EventServer::ingest_async

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
// Deliberately `std::sync` rather than the workspace `parking_lot`
// facade: `Block` needs a condvar tied to the buffer's mutex.
use std::sync::{Condvar, Mutex};

use evdb_storage::ChangeEvent;
use evdb_types::{Error, Event, Result};

/// What happens to a producer offering an event when the staged ingest
/// buffer is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// The producer waits until the pump drains — durability-first
    /// backpressure, no event is ever turned away or displaced.
    #[default]
    Block,
    /// The offer fails with [`Error::Overloaded`] so the producer can
    /// retry with backoff. On the trigger-capture path the error aborts
    /// (rolls back) the producer's write, keeping table and stream
    /// consistent.
    Reject,
    /// Admit by displacing the lowest-priority staged event (oldest
    /// first among ties); when nothing staged ranks below the newcomer,
    /// the newcomer itself is shed. Either way the producer's write
    /// succeeds and the shed is counted.
    ShedLowest,
}

/// One staged (admitted but not yet drained) item.
#[derive(Debug, Clone)]
pub enum Staged {
    /// An external event from `ingest_async`.
    External(Event),
    /// A captured table change buffered by a trigger, tagged with its
    /// stream name.
    Change(String, ChangeEvent),
}

/// The bounded staging buffer shared by every push-side producer.
///
/// Depth, peak depth and the shed / rejected / dropped-capture counters
/// are exported through the metrics registry as `evdb_ingest_depth`,
/// `evdb_ingest_shed_total`, `evdb_ingest_rejected_total` and
/// `evdb_ingest_dropped_capture_total` (see `EventServer::bridge_gauges`).
pub struct AdmissionControl {
    capacity: usize,
    policy: OverloadPolicy,
    staged: Mutex<VecDeque<(i64, Staged)>>,
    /// Signaled by [`drain`](Self::drain) so `Block`ed producers retry.
    space: Condvar,
    shed: AtomicU64,
    rejected: AtomicU64,
    dropped_capture: AtomicU64,
    peak_depth: AtomicU64,
}

impl AdmissionControl {
    /// A buffer holding at most `capacity` staged events (clamped to at
    /// least 1) under the given policy.
    pub fn new(capacity: usize, policy: OverloadPolicy) -> AdmissionControl {
        AdmissionControl {
            capacity: capacity.max(1),
            policy,
            staged: Mutex::new(VecDeque::new()),
            space: Condvar::new(),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            dropped_capture: AtomicU64::new(0),
            peak_depth: AtomicU64::new(0),
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overload policy.
    pub fn policy(&self) -> OverloadPolicy {
        self.policy
    }

    /// Events currently staged.
    pub fn depth(&self) -> usize {
        self.staged.lock().expect("admission lock").len()
    }

    /// High-water mark of the staged depth since startup.
    pub fn peak_depth(&self) -> u64 {
        self.peak_depth.load(Ordering::Relaxed)
    }

    /// Events shed so far (displaced or turned away under `ShedLowest`,
    /// plus batches the sharded router shed at saturated worker queues).
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Offers refused with [`Error::Overloaded`] so far.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Staged trigger changes whose capture was deregistered before the
    /// drain could resolve their stream (counted, logged, never silent).
    pub fn dropped_capture_total(&self) -> u64 {
        self.dropped_capture.load(Ordering::Relaxed)
    }

    /// Record `n` events shed outside the admission gate (the sharded
    /// router sheds whole batches when a worker queue is saturated under
    /// `ShedLowest`); keeps the accounting invariant in one place.
    pub fn note_shed(&self, n: u64) {
        self.shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` staged changes dropped because their capture task was
    /// deregistered between buffering and drain.
    pub fn note_dropped_capture(&self, n: u64) {
        self.dropped_capture.fetch_add(n, Ordering::Relaxed);
    }

    /// Offer one item at `priority` (higher survives longer under
    /// `ShedLowest`; ignored by the other policies). Returns `Ok` when
    /// the item was admitted *or* shed-on-arrival (the shed is counted);
    /// `Err(Overloaded)` only under `Reject`.
    pub fn admit(&self, priority: i64, item: Staged) -> Result<()> {
        let mut staged = self.staged.lock().expect("admission lock");
        if staged.len() >= self.capacity {
            match self.policy {
                OverloadPolicy::Block => {
                    while staged.len() >= self.capacity {
                        staged = self.space.wait(staged).expect("admission lock");
                    }
                }
                OverloadPolicy::Reject => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(Error::Overloaded(format!(
                        "staged ingest buffer full ({} events)",
                        self.capacity
                    )));
                }
                OverloadPolicy::ShedLowest => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    // min_by_key keeps the first (oldest) among ties, so
                    // equal-priority displacement is FIFO.
                    let (idx, min_pri) = staged
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (p, _))| *p)
                        .map(|(i, (p, _))| (i, *p))
                        .expect("capacity >= 1 so a full buffer is non-empty");
                    if min_pri < priority {
                        staged.remove(idx);
                    } else {
                        // Newcomer ranks no higher than everything
                        // staged: it is the one shed.
                        return Ok(());
                    }
                }
            }
        }
        staged.push_back((priority, item));
        self.peak_depth
            .fetch_max(staged.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Take every staged item in arrival order and wake blocked
    /// producers. The drained sequence is the pipeline's cross-stream
    /// evaluation order.
    pub fn drain(&self) -> Vec<Staged> {
        let mut staged = self.staged.lock().expect("admission lock");
        if staged.is_empty() {
            return Vec::new();
        }
        let items: Vec<Staged> = staged.drain(..).map(|(_, item)| item).collect();
        drop(staged);
        self.space.notify_all();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_types::{EventId, Record, Schema, TimestampMs};
    use std::sync::Arc;

    fn ev(id: u64) -> Staged {
        let schema = Schema::of(&[("k", evdb_types::DataType::Int)]);
        Staged::External(Event::new(
            EventId(id),
            "s",
            TimestampMs(0),
            Record::from_iter([evdb_types::Value::Int(id as i64)]),
            Arc::clone(&schema),
        ))
    }

    fn id_of(s: &Staged) -> u64 {
        match s {
            Staged::External(e) => e.id.0,
            Staged::Change(..) => unreachable!(),
        }
    }

    #[test]
    fn reject_turns_overflow_away_and_counts() {
        let ac = AdmissionControl::new(2, OverloadPolicy::Reject);
        ac.admit(0, ev(1)).unwrap();
        ac.admit(0, ev(2)).unwrap();
        let err = ac.admit(0, ev(3)).unwrap_err();
        assert_eq!(err.kind(), "overloaded");
        assert_eq!(ac.rejected_total(), 1);
        assert_eq!(ac.depth(), 2);
        let drained: Vec<u64> = ac.drain().iter().map(id_of).collect();
        assert_eq!(drained, vec![1, 2]);
        // Invariant: offered == drained + shed + rejected.
        assert_eq!(3, drained.len() as u64 + ac.shed_total() + ac.rejected_total());
    }

    #[test]
    fn shed_lowest_displaces_oldest_lowest_priority() {
        let ac = AdmissionControl::new(3, OverloadPolicy::ShedLowest);
        ac.admit(0, ev(1)).unwrap();
        ac.admit(5, ev(2)).unwrap();
        ac.admit(0, ev(3)).unwrap();
        // Higher priority displaces the oldest priority-0 entry (id 1).
        ac.admit(3, ev(4)).unwrap();
        assert_eq!(ac.shed_total(), 1);
        // Equal-or-lower priority newcomer is itself shed.
        ac.admit(0, ev(5)).unwrap();
        assert_eq!(ac.shed_total(), 2);
        let drained: Vec<u64> = ac.drain().iter().map(id_of).collect();
        assert_eq!(drained, vec![2, 3, 4]);
        assert_eq!(5, drained.len() as u64 + ac.shed_total() + ac.rejected_total());
        assert!(ac.peak_depth() <= 3);
    }

    #[test]
    fn block_waits_for_drain() {
        let ac = Arc::new(AdmissionControl::new(1, OverloadPolicy::Block));
        ac.admit(0, ev(1)).unwrap();
        let producer = {
            let ac = Arc::clone(&ac);
            std::thread::spawn(move || ac.admit(0, ev(2)).unwrap())
        };
        // The producer must be parked until the pump drains.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(ac.drain().len(), 1);
        producer.join().unwrap();
        assert_eq!(ac.drain().len(), 1);
        assert_eq!(ac.shed_total() + ac.rejected_total(), 0);
        assert!(ac.peak_depth() <= 1);
    }
}
