//! Background pumping: liveness without hand-rolled loops.
//!
//! [`EventServer::pump`] is deliberately pull-driven for determinism; a
//! deployed server wants the pump to run continuously. [`spawn_pump`]
//! starts a worker thread that pumps on an interval and also performs
//! queue maintenance (visibility-timeout reaping), and shuts down
//! cleanly when the handle is stopped or dropped.
//!
//! [`spawn_pump_with`] selects the execution mode: the classic
//! single-threaded loop ([`PumpMode::Sequential`]) or the sharded
//! parallel pipeline ([`PumpMode::Sharded`], see [`crate::shard`]),
//! which partitions captured events by stream/partition key across N
//! evaluation workers behind the same [`PumpHandle`] API.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::server::EventServer;
use crate::shard;

/// How a background pump executes the evaluation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PumpMode {
    /// One thread: drain, then evaluate every event inline. The
    /// original, strictly ordered mode.
    #[default]
    Sequential,
    /// Router + N evaluation workers + merge stage. Events are
    /// partitioned by stream (or the stream's partition field, see
    /// [`EventServer::set_partition_field`]); events sharing a key stay
    /// on one worker in arrival order.
    Sharded {
        /// Worker count; `0` means `std::thread::available_parallelism()`.
        workers: usize,
    },
}

impl PumpMode {
    /// Sharded with one worker per available core.
    pub fn sharded_auto() -> PumpMode {
        PumpMode::Sharded { workers: 0 }
    }
}

/// Handle to a running pump (one thread sequential, N+2 sharded).
/// Stops (and joins) on drop.
pub struct PumpHandle {
    stop: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
    cycles: Arc<AtomicU64>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl PumpHandle {
    /// Signal the pump to stop and wait for its threads to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Pump cycles completed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Pump cycles that returned an error (logged, not fatal).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Join in spawn order: the router drains once more and closes
        // the worker channels, workers finish their queues and close
        // the merge channel, the merge stage delivers the tail.
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for PumpHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a background thread that calls [`EventServer::pump`] (and reaps
/// queue visibility timeouts) every `interval`.
///
/// Errors from individual pump cycles are counted on the handle and do
/// not kill the thread — a poisoned event must not stop the feed
/// (callers watch [`PumpHandle::errors`]).
pub fn spawn_pump(server: &Arc<EventServer>, interval: Duration) -> PumpHandle {
    spawn_pump_with(server, interval, PumpMode::Sequential)
}

/// Start a background pump in the given [`PumpMode`].
pub fn spawn_pump_with(
    server: &Arc<EventServer>,
    interval: Duration,
    mode: PumpMode,
) -> PumpHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));
    let cycles = Arc::new(AtomicU64::new(0));
    let threads = match mode {
        PumpMode::Sequential => vec![spawn_sequential(server, interval, &stop, &errors, &cycles)],
        PumpMode::Sharded { workers } => {
            let n = if workers == 0 {
                std::thread::available_parallelism().map_or(1, |p| p.get())
            } else {
                workers
            };
            shard::spawn_sharded(server, interval, n, &stop, &errors, &cycles)
        }
    };
    PumpHandle {
        stop,
        errors,
        cycles,
        threads,
    }
}

fn spawn_sequential(
    server: &Arc<EventServer>,
    interval: Duration,
    stop: &Arc<AtomicBool>,
    errors: &Arc<AtomicU64>,
    cycles: &Arc<AtomicU64>,
) -> std::thread::JoinHandle<()> {
    let (s, st, er, cy) = (
        Arc::clone(server),
        Arc::clone(stop),
        Arc::clone(errors),
        Arc::clone(cycles),
    );
    std::thread::Builder::new()
        .name("evdb-pump".into())
        .spawn(move || {
            while !st.load(Ordering::SeqCst) {
                if s.pump().is_err() {
                    er.fetch_add(1, Ordering::Relaxed);
                }
                for q in s.queues().queue_names() {
                    let _ = s.queues().reap_timeouts(&q);
                }
                cy.fetch_add(1, Ordering::Relaxed);
                // Under load skip the idle sleep: producers may already
                // be blocked (or shedding) on a full staged buffer, and
                // every sleep tick would stretch the overload window.
                if s.admission().depth() == 0 {
                    std::thread::sleep(interval);
                }
            }
        })
        .expect("spawn pump thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{CaptureMechanism, ServerConfig};
    use evdb_types::{DataType, Record, Schema, Value};

    fn journal_server() -> Arc<EventServer> {
        let server = Arc::new(EventServer::in_memory(ServerConfig::default()).unwrap());
        server
            .db()
            .create_table(
                "t",
                Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
                "id",
            )
            .unwrap();
        let stream = server
            .capture_table("t", CaptureMechanism::Journal)
            .unwrap();
        server
            .add_alert_rule("any", &stream, "TRUE", 1.0, None)
            .unwrap();
        server
    }

    #[test]
    fn background_pump_processes_changes() {
        let server = journal_server();
        let handle = spawn_pump(&server, Duration::from_millis(5));
        for i in 0..20 {
            server
                .db()
                .insert(
                    "t",
                    Record::from_iter([Value::Int(i), Value::Float(i as f64)]),
                )
                .unwrap();
        }
        // Wait (bounded) for the pump to pick everything up.
        for _ in 0..400 {
            if server.metrics().snapshot().events_captured >= 20 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let cycles = handle.cycles();
        handle.stop();
        assert!(cycles > 0);
        assert_eq!(server.metrics().snapshot().events_captured, 20);
        // VIRT suppression: "any" rule has one key, so only the first
        // notification necessarily lands; captured count is the check.
    }

    #[test]
    fn sharded_pump_processes_changes() {
        let server = journal_server();
        let handle = spawn_pump_with(
            &server,
            Duration::from_millis(5),
            PumpMode::Sharded { workers: 3 },
        );
        for i in 0..20 {
            server
                .db()
                .insert(
                    "t",
                    Record::from_iter([Value::Int(i), Value::Float(i as f64)]),
                )
                .unwrap();
        }
        for _ in 0..400 {
            if server.metrics().snapshot().events_processed >= 20 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
        let snap = server.metrics().snapshot();
        assert_eq!(snap.events_captured, 20);
        assert_eq!(snap.events_processed, 20);
        // One stream → one shard owns every event; the other counters
        // must stay untouched and queues must be fully drained.
        let shards = server.metrics().shard_snapshots();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(|s| s.events_routed).sum::<u64>(), 20);
        assert_eq!(
            shards.iter().filter(|s| s.events_routed > 0).count(),
            1,
            "a single stream must map to a single shard"
        );
        assert!(shards.iter().all(|s| s.queue_depth == 0));
    }

    #[test]
    fn handle_drop_stops_thread() {
        let server = Arc::new(EventServer::in_memory(ServerConfig::default()).unwrap());
        let handle = spawn_pump(&server, Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(10));
        drop(handle); // must not hang

        let handle = spawn_pump_with(&server, Duration::from_millis(1), PumpMode::sharded_auto());
        std::thread::sleep(Duration::from_millis(10));
        drop(handle); // must not hang either
    }
}
