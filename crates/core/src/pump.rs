//! Background pumping: liveness without hand-rolled loops.
//!
//! [`EventServer::pump`] is deliberately pull-driven for determinism; a
//! deployed server wants the pump to run continuously. [`spawn_pump`]
//! starts a worker thread that pumps on an interval and also performs
//! queue maintenance (visibility-timeout reaping), and shuts down
//! cleanly when the handle is stopped or dropped.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::server::EventServer;

/// Handle to a running pump thread. Stops (and joins) on drop.
pub struct PumpHandle {
    stop: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
    cycles: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl PumpHandle {
    /// Signal the pump to stop and wait for the thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Pump cycles completed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Pump cycles that returned an error (logged, not fatal).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for PumpHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a background thread that calls [`EventServer::pump`] (and reaps
/// queue visibility timeouts) every `interval`.
///
/// Errors from individual pump cycles are counted on the handle and do
/// not kill the thread — a poisoned event must not stop the feed
/// (callers watch [`PumpHandle::errors`]).
pub fn spawn_pump(server: &Arc<EventServer>, interval: Duration) -> PumpHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));
    let cycles = Arc::new(AtomicU64::new(0));
    let (s, st, er, cy) = (
        Arc::clone(server),
        Arc::clone(&stop),
        Arc::clone(&errors),
        Arc::clone(&cycles),
    );
    let thread = std::thread::Builder::new()
        .name("evdb-pump".into())
        .spawn(move || {
            while !st.load(Ordering::SeqCst) {
                if s.pump().is_err() {
                    er.fetch_add(1, Ordering::Relaxed);
                }
                for q in s.queues().queue_names() {
                    let _ = s.queues().reap_timeouts(&q);
                }
                cy.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(interval);
            }
        })
        .expect("spawn pump thread");
    PumpHandle {
        stop,
        errors,
        cycles,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{CaptureMechanism, ServerConfig};
    use evdb_types::{DataType, Record, Schema, Value};

    #[test]
    fn background_pump_processes_changes() {
        let server = Arc::new(EventServer::in_memory(ServerConfig::default()).unwrap());
        server
            .db()
            .create_table(
                "t",
                Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
                "id",
            )
            .unwrap();
        let stream = server.capture_table("t", CaptureMechanism::Journal).unwrap();
        server.add_alert_rule("any", &stream, "TRUE", 1.0, None).unwrap();

        let handle = spawn_pump(&server, Duration::from_millis(5));
        for i in 0..20 {
            server
                .db()
                .insert(
                    "t",
                    Record::from_iter([Value::Int(i), Value::Float(i as f64)]),
                )
                .unwrap();
        }
        // Wait (bounded) for the pump to pick everything up.
        for _ in 0..400 {
            if server.metrics().snapshot().events_captured >= 20 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let cycles = handle.cycles();
        handle.stop();
        assert!(cycles > 0);
        assert_eq!(server.metrics().snapshot().events_captured, 20);
        // VIRT suppression: "any" rule has one key, so only the first
        // notification necessarily lands; captured count is the check.
    }

    #[test]
    fn handle_drop_stops_thread() {
        let server = Arc::new(EventServer::in_memory(ServerConfig::default()).unwrap());
        let handle = spawn_pump(&server, Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(10));
        drop(handle); // must not hang
    }
}
