//! Historical event store integration (DESIGN.md D14).
//!
//! The stream runtime evaluates events and forgets them; the paper's
//! architecture also wants the *context* — "what led up to this alert?"
//! — answerable after the fact. [`History`] gives every stream an
//! append-only columnar [`SegmentStore`]: each evaluated event is
//! appended to its stream's write-optimized head, frozen into immutable
//! time-sorted segments with zone maps, and compacted in the background
//! of the pump. Point/range/historical queries prune on per-segment and
//! per-zone statistics; `REPLAY` streams a seq range back in original
//! arrival order, either to the caller or re-fed through the CQ runtime
//! (via the dedup-bypassing replay path — see
//! `StreamRuntime::push_event_replay`).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use evdb_storage::{
    compact_once, CompactionPolicy, SegmentStore, SegmentStoreOptions, StoreStatsSnapshot,
    StoredEvent,
};
use evdb_types::{Error, Event, EventId, Result, Schema};
use parking_lot::RwLock;

/// Configuration for [`crate::EventServer::enable_history`].
#[derive(Clone, Default)]
pub struct HistoryConfig {
    /// Per-stream segment store tuning (freeze threshold, zone size,
    /// head durability, fault injection).
    pub store: SegmentStoreOptions,
    /// Compaction policy applied by [`History::maintain`] (one merge
    /// step per stream per pump). `None` disables compaction.
    pub compaction: Option<CompactionPolicy>,
}

impl HistoryConfig {
    /// Default store tuning with the default compaction policy enabled.
    pub fn compacted() -> HistoryConfig {
        HistoryConfig {
            store: SegmentStoreOptions::default(),
            compaction: Some(CompactionPolicy::default()),
        }
    }
}

/// Filesystem-safe directory name for a stream: alphanumerics, `-` and
/// `_` pass through; everything else becomes `_`, and a short FNV hash
/// of the original name keeps distinct streams from colliding.
fn stream_dir(name: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{:08x}", hash as u32 ^ (hash >> 32) as u32)
}

/// Per-stream historical stores under one root directory.
pub struct History {
    root: PathBuf,
    config: HistoryConfig,
    stores: RwLock<HashMap<String, Arc<SegmentStore>>>,
}

impl History {
    /// Open (or create) the history root. Stores are opened lazily on
    /// first append per stream; streams already on disk from a previous
    /// run re-open then too (recovery is per-store, in
    /// [`SegmentStore::open`]).
    pub fn open(root: impl AsRef<Path>, config: HistoryConfig) -> Result<History> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(History {
            root,
            config,
            stores: RwLock::new(HashMap::new()),
        })
    }

    /// The store backing `stream`, opening it if this is the first
    /// touch. The schema is fixed at first open.
    pub fn store_for(&self, stream: &str, schema: &Arc<Schema>) -> Result<Arc<SegmentStore>> {
        if let Some(s) = self.stores.read().get(stream) {
            return Ok(Arc::clone(s));
        }
        let mut stores = self.stores.write();
        if let Some(s) = stores.get(stream) {
            return Ok(Arc::clone(s));
        }
        let store = Arc::new(SegmentStore::open(
            self.root.join(stream_dir(stream)),
            Arc::clone(schema),
            self.config.store.clone(),
        )?);
        stores.insert(stream.to_string(), Arc::clone(&store));
        Ok(store)
    }

    /// The store backing `stream`, if any event has been recorded on it.
    pub fn store(&self, stream: &str) -> Result<Arc<SegmentStore>> {
        self.stores
            .read()
            .get(stream)
            .map(Arc::clone)
            .ok_or_else(|| Error::NotFound(format!("history for stream '{stream}'")))
    }

    /// The store backing `stream`, re-opening it from disk if a previous
    /// process recorded history that this one has not touched yet (read
    /// paths must see history across restarts without waiting for the
    /// first append). `NotFound` when no history was ever recorded —
    /// reads never create store directories.
    pub fn store_or_recover(&self, stream: &str, schema: &Arc<Schema>) -> Result<Arc<SegmentStore>> {
        if let Some(s) = self.stores.read().get(stream) {
            return Ok(Arc::clone(s));
        }
        if !self.root.join(stream_dir(stream)).is_dir() {
            return Err(Error::NotFound(format!("history for stream '{stream}'")));
        }
        self.store_for(stream, schema)
    }

    /// Record one evaluated event; returns its history sequence number.
    pub fn append(&self, event: &Event) -> Result<u64> {
        let store = self.store_for(event.source.as_ref(), &event.schema)?;
        store.append(
            event.id.0,
            event.timestamp,
            event.retraction,
            event.payload.clone(),
        )
    }

    /// One compaction step per stream (bounded work per pump tick).
    /// Returns how many merges ran. No-op without a policy.
    pub fn maintain(&self) -> Result<u64> {
        let Some(policy) = &self.config.compaction else {
            return Ok(0);
        };
        let stores: Vec<Arc<SegmentStore>> = self.stores.read().values().map(Arc::clone).collect();
        let mut merges = 0;
        for store in stores {
            if compact_once(&store, policy)? {
                merges += 1;
            }
        }
        Ok(merges)
    }

    /// Reconstruct the stream [`Event`]s for a slice of stored history.
    /// Ids, timestamps and retraction flags are the originals.
    pub fn to_events(stream: &str, schema: &Arc<Schema>, stored: Vec<StoredEvent>) -> Vec<Event> {
        stored
            .into_iter()
            .map(|s| {
                let mut e = Event::new(
                    EventId(s.id),
                    stream,
                    s.timestamp,
                    s.payload,
                    Arc::clone(schema),
                );
                e.retraction = s.retraction;
                e
            })
            .collect()
    }

    /// Streams with recorded history, sorted.
    pub fn streams(&self) -> Vec<String> {
        let mut names: Vec<String> = self.stores.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Store statistics summed across every open stream store, plus the
    /// live segment count. All zeros while no stream has history.
    pub fn stats(&self) -> (u64, StoreStatsSnapshot) {
        let stores = self.stores.read();
        let mut segments = 0u64;
        let mut total = StoreStatsSnapshot::default();
        for store in stores.values() {
            segments += store.segment_count() as u64;
            let s = store.stats_snapshot();
            total.appended += s.appended;
            total.freezes += s.freezes;
            total.compactions += s.compactions;
            total.segments_considered += s.segments_considered;
            total.segments_pruned += s.segments_pruned;
            total.zones_considered += s.zones_considered;
            total.zones_pruned += s.zones_pruned;
            total.replayed += s.replayed;
            total.orphans_removed += s.orphans_removed;
        }
        (segments, total)
    }
}

/// The server's history slot: absent until
/// [`crate::EventServer::enable_history`], but the metrics gauges bridge
/// over it from construction (reading zeros while disabled), so enabling
/// history never changes the exposition's metric set.
#[derive(Default)]
pub struct HistorySlot {
    inner: RwLock<Option<Arc<History>>>,
}

impl HistorySlot {
    /// Install a history store; errors if one is already installed.
    pub fn install(&self, history: History) -> Result<Arc<History>> {
        let mut slot = self.inner.write();
        if slot.is_some() {
            return Err(Error::AlreadyExists("history store".into()));
        }
        let h = Arc::new(history);
        *slot = Some(Arc::clone(&h));
        Ok(h)
    }

    /// The installed history, if any.
    pub fn get(&self) -> Option<Arc<History>> {
        self.inner.read().as_ref().map(Arc::clone)
    }

    /// Aggregated stats, zeros when disabled.
    pub fn stats(&self) -> (u64, StoreStatsSnapshot) {
        match self.get() {
            Some(h) => h.stats(),
            None => (0, StoreStatsSnapshot::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_types::{DataType, Record, TimestampMs, Value};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "evdb-history-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn appends_replays_and_compacts_per_stream() {
        let dir = tmp("basic");
        let history = History::open(
            &dir,
            HistoryConfig {
                store: SegmentStoreOptions {
                    freeze_rows: 4,
                    zone_rows: 2,
                    ..Default::default()
                },
                compaction: Some(CompactionPolicy {
                    max_segments: 2,
                    small_rows: 1000,
                    max_merge: 8,
                }),
            },
        )
        .unwrap();
        let schema = Schema::of(&[("v", DataType::Int)]);
        for i in 0..16u64 {
            let e = Event::new(
                EventId(i),
                "ticks",
                TimestampMs(i as i64),
                Record::from_iter([Value::Int(i as i64)]),
                Arc::clone(&schema),
            );
            assert_eq!(history.append(&e).unwrap(), i);
        }
        while history.maintain().unwrap() > 0 {}
        let store = history.store("ticks").unwrap();
        assert!(store.segment_count() <= 2);
        let stored = store.replay(0, u64::MAX).unwrap();
        let events = History::to_events("ticks", &schema, stored);
        assert_eq!(events.len(), 16);
        assert_eq!(events[7].id, EventId(7));
        assert!(history.store("ghost").is_err());
        assert_eq!(history.streams(), vec!["ticks".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_recovers_from_disk_after_reopen() {
        let dir = tmp("reopen");
        let schema = Schema::of(&[("v", DataType::Int)]);
        {
            let history = History::open(&dir, HistoryConfig::default()).unwrap();
            let e = Event::new(
                EventId(1),
                "ticks",
                TimestampMs(1),
                Record::from_iter([Value::Int(1)]),
                Arc::clone(&schema),
            );
            history.append(&e).unwrap();
        }
        // Fresh process: the store is not in memory…
        let history = History::open(&dir, HistoryConfig::default()).unwrap();
        assert!(history.store("ticks").is_err());
        // …but read paths recover it from disk without an append first.
        let store = history.store_or_recover("ticks", &schema).unwrap();
        assert_eq!(store.replay(0, u64::MAX).unwrap().len(), 1);
        // A stream with no recorded history stays NotFound — recovery
        // must not create directories on reads.
        assert!(history.store_or_recover("ghost", &schema).is_err());
        assert!(!dir.join(stream_dir("ghost")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slot_reads_zero_when_disabled_and_installs_once() {
        let slot = HistorySlot::default();
        assert!(slot.get().is_none());
        assert_eq!(slot.stats().0, 0);
        let dir = tmp("slot");
        slot.install(History::open(&dir, HistoryConfig::default()).unwrap())
            .unwrap();
        assert!(slot.get().is_some());
        assert!(slot
            .install(History::open(&dir, HistoryConfig::default()).unwrap())
            .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stream_dirs_never_collide_on_sanitization() {
        assert_ne!(stream_dir("a:b"), stream_dir("a?b"));
        assert_eq!(stream_dir("plain"), stream_dir("plain"));
        assert!(stream_dir("delta::orders")
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
    }
}
