//! The sharded parallel pump: a router/worker/merge pipeline that
//! evaluates captured events on N threads while preserving the
//! sequential engine's per-key semantics.
//!
//! ```text
//!                        ┌────────────┐  bounded   ┌───────────┐
//!  captures ──drain──►   │   router   ├───────────►│ worker 0  ├──┐
//!  (trigger/journal/     │ hash(key)  ├───────────►│ worker 1  ├──┤
//!   poll/ingest_async)   │  → shard   ├───────────►│    …      ├──┼──► merge ──► VIRT
//!                        └────────────┘            └───────────┘  │    (NotificationCenter)
//!                                                                 ┘
//! ```
//!
//! * **Partitioning** — the router hashes each event's partition key
//!   ([`EventServer::partition_key_of`]: the stream name, optionally
//!   refined by a payload field) with [`shard_for`]. Same key ⇒ same
//!   shard ⇒ evaluated in arrival order, so stream-runtime windows,
//!   detector state and VIRT keys see exactly the sequence they would
//!   see sequentially.
//! * **Backpressure** — worker queues are bounded channels; when a
//!   worker falls behind, the router blocks on its queue rather than
//!   buffering without limit.
//! * **Delivery** — workers *collect* notifications
//!   ([`EventServer::evaluate_events`], the batched evaluation path)
//!   and the merge stage runs them through the stateful VIRT filter.
//!   Each worker feeds its own staging channel; the merge thread drains
//!   the shards in deterministic order (0..n) and delivers each drained
//!   batch through one filter-lock acquisition
//!   ([`EventServer::deliver_batch`]), so workers never contend on a
//!   shared merge queue. A key's notifications all ride one shard's
//!   channel in that worker's send order, so per-key delivery order
//!   still matches the sequential pump (D15).
//! * **Shutdown** — the router performs one final drain after the stop
//!   flag is raised, then drops the worker queues; workers finish their
//!   backlog and drop the merge queue; the merge delivers the tail.
//!   [`crate::PumpHandle`] joins the threads in that order, so no
//!   staged event or notification is lost on a clean stop.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel;
use evdb_types::Event;

use crate::metrics::{ShardMetrics, StageBatch};
use crate::notify::Notification;
use crate::server::{EvalScratch, EventServer};

/// In-flight batches a worker queue holds before the router blocks.
const WORKER_QUEUE_BATCHES: usize = 64;

/// In-flight notification batches each worker's private staging channel
/// holds before that worker blocks on the merge stage.
const MERGE_QUEUE_BATCHES: usize = 64;

/// How long the merge thread sleeps when every shard's staging channel
/// came up empty on a full drain pass.
const MERGE_IDLE: Duration = Duration::from_micros(50);

/// Map a partition key to a shard in `0..n`.
///
/// Uses [`DefaultHasher`] with its default (fixed) keys, so the mapping
/// is stable for the life of the process — the property the pipeline's
/// ordering guarantee rests on. Exposed so tests can assert routing
/// invariants.
pub fn shard_for(key: &str, n: usize) -> usize {
    assert!(n > 0, "shard_for: shard count must be positive");
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n as u64) as usize
}

/// Spawn the sharded pipeline: 1 router + `workers` evaluators + 1
/// merge thread. Returns the joinable threads in shutdown-join order.
pub(crate) fn spawn_sharded(
    server: &Arc<EventServer>,
    interval: Duration,
    workers: usize,
    stop: &Arc<AtomicBool>,
    errors: &Arc<AtomicU64>,
    cycles: &Arc<AtomicU64>,
) -> Vec<JoinHandle<()>> {
    let n = workers.max(1);
    let shard_metrics = server.metrics().register_shards(n);

    let mut worker_txs: Vec<channel::Sender<Vec<Event>>> = Vec::with_capacity(n);
    let mut merge_rxs: Vec<channel::Receiver<Vec<Notification>>> = Vec::with_capacity(n);
    let mut evaluators: Vec<JoinHandle<()>> = Vec::with_capacity(n);
    for (i, metrics) in shard_metrics.iter().enumerate() {
        let (tx, rx) = channel::bounded::<Vec<Event>>(WORKER_QUEUE_BATCHES);
        worker_txs.push(tx);
        // Each worker stages into its own channel: no cross-worker
        // contention on the way to the merge, and the merge exits a
        // shard's drain when that worker (alone) has hung up.
        let (merge_tx, merge_rx) = channel::bounded::<Vec<Notification>>(MERGE_QUEUE_BATCHES);
        merge_rxs.push(merge_rx);
        let s = Arc::clone(server);
        let m = Arc::clone(metrics);
        let er = Arc::clone(errors);
        let t = std::thread::Builder::new()
            .name(format!("evdb-shard-{i}"))
            .spawn(move || worker_loop(&s, &rx, &merge_tx, &m, &er))
            .expect("spawn shard worker thread");
        evaluators.push(t);
    }

    let merge_thread = {
        let s = Arc::clone(server);
        std::thread::Builder::new()
            .name("evdb-merge".into())
            .spawn(move || merge_loop(&s, &merge_rxs))
            .expect("spawn merge thread")
    };

    let router_thread = {
        let s = Arc::clone(server);
        let st = Arc::clone(stop);
        let er = Arc::clone(errors);
        let cy = Arc::clone(cycles);
        let sm = shard_metrics;
        std::thread::Builder::new()
            .name("evdb-router".into())
            .spawn(move || router_loop(&s, interval, &worker_txs, &sm, &st, &er, &cy))
            .expect("spawn router thread")
    };

    // Join order for a clean shutdown: router first (closes worker
    // queues), then workers (close the merge queue), then merge.
    let mut threads = vec![router_thread];
    threads.extend(evaluators);
    threads.push(merge_thread);
    threads
}

fn router_loop(
    server: &Arc<EventServer>,
    interval: Duration,
    worker_txs: &[channel::Sender<Vec<Event>>],
    shard_metrics: &[Arc<ShardMetrics>],
    stop: &AtomicBool,
    errors: &AtomicU64,
    cycles: &AtomicU64,
) {
    let n = worker_txs.len();
    loop {
        // Read the flag *before* draining: the post-stop iteration then
        // ships everything staged up to the stop call.
        let stopping = stop.load(Ordering::SeqCst);
        match server.drain_captured() {
            Ok(events) => {
                let mut batches: Vec<Vec<Event>> = (0..n).map(|_| Vec::new()).collect();
                let stamp_now = server.now();
                let mut stage_batch = StageBatch::default();
                for mut event in events {
                    server.observe_route(&mut event, stamp_now, &mut stage_batch);
                    let key = server.partition_key_of(&event);
                    batches[shard_for(&key, n)].push(event);
                }
                server.stage_obs().flush(&mut stage_batch);
                let shed_at_router =
                    server.admission().policy() == crate::admission::OverloadPolicy::ShedLowest;
                for (i, batch) in batches.into_iter().enumerate() {
                    if batch.is_empty() {
                        continue;
                    }
                    let len = batch.len() as u64;
                    shard_metrics[i]
                        .events_routed
                        .fetch_add(len, Ordering::Relaxed);
                    shard_metrics[i]
                        .queue_depth
                        .fetch_add(len, Ordering::Relaxed);
                    if shed_at_router {
                        // ShedLowest must not stall the router on one
                        // saturated worker: a full queue sheds the batch
                        // into the same accounting the admission gate
                        // uses, so offered == evaluated + shed + rejected
                        // still balances (DESIGN.md D10).
                        match worker_txs[i].try_send(batch) {
                            Ok(()) => {}
                            Err(channel::TrySendError::Full(batch)) => {
                                server.admission().note_shed(batch.len() as u64);
                                shard_metrics[i]
                                    .queue_depth
                                    .fetch_sub(len, Ordering::Relaxed);
                            }
                            Err(channel::TrySendError::Disconnected(_)) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                shard_metrics[i]
                                    .queue_depth
                                    .fetch_sub(len, Ordering::Relaxed);
                            }
                        }
                    } else if worker_txs[i].send(batch).is_err() {
                        // Blocking send (Block/Reject): a full worker
                        // queue backpressures the router instead of
                        // growing without bound. Err means the worker
                        // died (only on panic); count and go on.
                        errors.fetch_add(1, Ordering::Relaxed);
                        shard_metrics[i]
                            .queue_depth
                            .fetch_sub(len, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        for q in server.queues().queue_names() {
            let _ = server.queues().reap_timeouts(&q);
        }
        cycles.fetch_add(1, Ordering::Relaxed);
        if stopping {
            break;
        }
        // Keep draining while producers are backed up on the staged
        // buffer; sleep only when the admission gate is empty.
        if server.admission().depth() == 0 {
            std::thread::sleep(interval);
        }
    }
    // Dropping the senders lets the workers drain their queues and exit.
}

fn worker_loop(
    server: &Arc<EventServer>,
    rx: &channel::Receiver<Vec<Event>>,
    merge: &channel::Sender<Vec<Notification>>,
    metrics: &ShardMetrics,
    errors: &AtomicU64,
) {
    let mut scratch = EvalScratch::default();
    // `recv` yields every batch still queued even after the router has
    // dropped the sender, so a stop never abandons routed events.
    while let Ok(mut batch) = rx.recv() {
        metrics.busy_cycles.fetch_add(1, Ordering::Relaxed);
        let mut pending = Vec::new();
        let stamp_now = server.now();
        let mut stage_batch = StageBatch::default();
        let (_derived, errs) =
            server.evaluate_events(&mut batch, stamp_now, &mut stage_batch, &mut scratch, &mut pending);
        errors.fetch_add(errs, Ordering::Relaxed);
        server.stage_obs().flush(&mut stage_batch);
        metrics
            .queue_depth
            .fetch_sub(batch.len() as u64, Ordering::Relaxed);
        if !pending.is_empty() && merge.send(pending).is_err() {
            // Merge stage gone: only possible mid-teardown after a
            // panic; stop consuming.
            break;
        }
    }
}

/// The merge stage: drain every shard's staging channel in a fixed
/// order (0..n), deliver the round's notifications as one batch, and
/// idle briefly when nothing arrived. Draining shard-by-shard in a
/// deterministic order keeps delivery fair across shards; per-key order
/// needs no cross-shard coordination because a key's notifications all
/// travel one shard's FIFO channel. Exits when every worker has hung up
/// and every channel is drained — crossbeam yields queued batches even
/// after a sender drops, so a clean stop delivers the tail.
fn merge_loop(server: &Arc<EventServer>, shards: &[channel::Receiver<Vec<Notification>>]) {
    let mut open = vec![true; shards.len()];
    let mut staged: Vec<Notification> = Vec::new();
    loop {
        let mut any_open = false;
        for (i, rx) in shards.iter().enumerate() {
            if !open[i] {
                continue;
            }
            loop {
                match rx.try_recv() {
                    Ok(notes) => staged.extend(notes),
                    Err(channel::TryRecvError::Empty) => {
                        any_open = true;
                        break;
                    }
                    Err(channel::TryRecvError::Disconnected) => {
                        open[i] = false;
                        break;
                    }
                }
            }
        }
        if !staged.is_empty() {
            server.deliver_batch(std::mem::take(&mut staged));
        } else if !any_open {
            break;
        } else {
            std::thread::sleep(MERGE_IDLE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_for_is_stable_and_in_range() {
        for n in 1..=16 {
            for key in ["ticks", "meters/7", "a", "", "stream/NULL"] {
                let s = shard_for(key, n);
                assert!(s < n);
                assert_eq!(s, shard_for(key, n), "same key must map identically");
            }
        }
    }

    #[test]
    fn shard_for_spreads_keys() {
        let n = 8;
        let mut hit = vec![false; n];
        for i in 0..256 {
            hit[shard_for(&format!("stream/{i}"), n)] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 keys should cover all 8 shards");
    }
}
