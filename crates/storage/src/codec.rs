//! Binary encoding of values, records and schemas.
//!
//! One compact, versioned-by-tag format shared by the WAL, checkpoints and
//! the queue layer's message payloads. Layout is little-endian throughout:
//!
//! ```text
//! value   := tag:u8 body
//!   0x00 NULL            (no body)
//!   0x01 BOOL            u8
//!   0x02 INT             i64
//!   0x03 FLOAT           f64 bits
//!   0x04 STR             u32 len + utf8 bytes
//!   0x05 BYTES           u32 len + bytes
//!   0x06 TIMESTAMP       i64
//! record  := u16 count + values
//! schema  := u16 count + fields;  field := str name, u8 dtype, u8 nullable
//! ```

use std::sync::Arc;

use evdb_types::{DataType, Error, FieldDef, Record, Result, Schema, TimestampMs, Value};

/// Append a `u16` LE.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` LE.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` LE.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` LE.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A cursor over encoded bytes with corruption-reporting reads.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Corruption(format!(
                "encoded data truncated: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16` LE.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32` LE.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64` LE.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64` LE.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Skip `n` bytes (e.g. a length-prefixed block read elsewhere).
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }

    /// Read a length-prefixed string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corruption("invalid utf8 in encoded string".into()))
    }
}

/// Encode one value.
pub fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0x00),
        Value::Bool(b) => {
            buf.push(0x01);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(0x02);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            buf.push(0x03);
            put_u64(buf, f.to_bits());
        }
        Value::Str(s) => {
            buf.push(0x04);
            put_str(buf, s);
        }
        Value::Bytes(b) => {
            buf.push(0x05);
            put_u32(buf, b.len() as u32);
            buf.extend_from_slice(b);
        }
        Value::Timestamp(t) => {
            buf.push(0x06);
            put_i64(buf, t.0);
        }
    }
}

/// Decode one value.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8()? {
        0x00 => Ok(Value::Null),
        0x01 => Ok(Value::Bool(r.u8()? != 0)),
        0x02 => Ok(Value::Int(r.i64()?)),
        0x03 => Ok(Value::Float(f64::from_bits(r.u64()?))),
        0x04 => Ok(Value::from(r.str()?)),
        0x05 => {
            let n = r.u32()? as usize;
            Ok(Value::bytes(r.take(n)?.to_vec()))
        }
        0x06 => Ok(Value::Timestamp(TimestampMs(r.i64()?))),
        tag => Err(Error::Corruption(format!("unknown value tag {tag:#x}"))),
    }
}

/// Encode a record.
pub fn encode_record(buf: &mut Vec<u8>, rec: &Record) {
    put_u16(buf, rec.len() as u16);
    for v in rec.values() {
        encode_value(buf, v);
    }
}

/// Decode a record.
pub fn decode_record(r: &mut Reader<'_>) -> Result<Record> {
    let n = r.u16()? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(decode_value(r)?);
    }
    Ok(Record::new(values))
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 1,
        DataType::Int => 2,
        DataType::Float => 3,
        DataType::Str => 4,
        DataType::Bytes => 5,
        DataType::Timestamp => 6,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType> {
    Ok(match t {
        1 => DataType::Bool,
        2 => DataType::Int,
        3 => DataType::Float,
        4 => DataType::Str,
        5 => DataType::Bytes,
        6 => DataType::Timestamp,
        _ => return Err(Error::Corruption(format!("unknown dtype tag {t}"))),
    })
}

/// Encode a schema.
pub fn encode_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_u16(buf, schema.len() as u16);
    for f in schema.fields() {
        put_str(buf, &f.name);
        buf.push(dtype_tag(f.dtype));
        buf.push(f.nullable as u8);
    }
}

/// Decode a schema.
pub fn decode_schema(r: &mut Reader<'_>) -> Result<Arc<Schema>> {
    let n = r.u16()? as usize;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let dtype = dtype_from_tag(r.u8()?)?;
        let nullable = r.u8()? != 0;
        fields.push(FieldDef {
            name,
            dtype,
            nullable,
        });
    }
    Schema::new(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let mut buf = Vec::new();
        encode_value(&mut buf, &v);
        let mut r = Reader::new(&buf);
        let back = decode_value(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back, v);
    }

    #[test]
    fn value_round_trips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Int(i64::MIN));
        roundtrip_value(Value::Float(-0.0));
        roundtrip_value(Value::Float(f64::INFINITY));
        roundtrip_value(Value::from("héllo 'quotes'"));
        roundtrip_value(Value::bytes(vec![0u8, 255, 128]));
        roundtrip_value(Value::Timestamp(TimestampMs(-5)));
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Float(f64::NAN));
        let mut r = Reader::new(&buf);
        match decode_value(&mut r).unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn record_round_trips() {
        let rec = Record::from_iter([Value::Int(1), Value::from("x"), Value::Null]);
        let mut buf = Vec::new();
        encode_record(&mut buf, &rec);
        let back = decode_record(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn schema_round_trips() {
        let schema = Schema::new(vec![
            FieldDef::required("id", DataType::Int),
            FieldDef::nullable("note", DataType::Str),
            FieldDef::required("at", DataType::Timestamp),
        ])
        .unwrap();
        let mut buf = Vec::new();
        encode_schema(&mut buf, &schema);
        let back = decode_schema(&mut Reader::new(&buf)).unwrap();
        assert_eq!(*back, *schema);
    }

    #[test]
    fn truncation_and_bad_tags_are_corruption() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::from("hello"));
        buf.truncate(buf.len() - 2);
        assert!(decode_value(&mut Reader::new(&buf)).is_err());

        let bad = [0x77u8];
        let err = decode_value(&mut Reader::new(&bad)).unwrap_err();
        assert_eq!(err.kind(), "corruption");

        let invalid_utf8 = [0x04, 2, 0, 0, 0, 0xff, 0xfe];
        assert!(decode_value(&mut Reader::new(&invalid_utf8)).is_err());
    }
}
