//! # evdb-storage
//!
//! The embedded storage engine beneath EventDB — the "commercial database"
//! substrate of Chandy & Gawlick's tutorial, reduced to the capabilities
//! event processing actually leans on:
//!
//! * **Tables** with typed schemas, a primary key and secondary indexes
//!   ([`table`], [`index`]).
//! * A **write-ahead log / journal** with checksummed binary records,
//!   configurable sync policy (per-commit fsync vs. group commit), tailing
//!   readers, and truncation on checkpoint ([`wal`]).
//! * **Transactions** — redo-only logging, in-memory undo for rollback,
//!   atomic multi-table commits ([`txn`]).
//! * **Crash recovery** — replay committed WAL records over the last
//!   checkpoint; torn trailing records are detected and ignored ([`db`]).
//!   The durable paths carry named fault sites for `evdb-faults`, so the
//!   torture harness (DESIGN.md D8, experiment E12) can crash the engine
//!   at any WAL append, checkpoint step or directory sync.
//! * A per-stream **historical event store** — a write-optimized head
//!   freezing into immutable columnar segments with per-column zone maps,
//!   background compaction, and arrival-order replay ([`columnar`],
//!   [`segment`], [`compact`]; DESIGN.md D14).
//! * The paper's three **event capture mechanisms** (§2.2.a):
//!   row-level **triggers** ([`trigger`]), **journal mining**
//!   ([`journal`]), and **query snapshots/deltas** ([`snapshot`]).
//!
//! Concurrency model: writers are serialized (one transaction commits at a
//! time); readers take shared table locks and may observe the effects of a
//! transaction that is still in flight (read-uncommitted for concurrent
//! readers). This mirrors the simple latch-based engines the tutorial era
//! assumed and keeps the capture-path measurements honest.

pub mod change;
pub mod codec;
pub mod columnar;
pub mod compact;
pub mod crc;
pub mod db;
pub mod index;
pub mod journal;
pub mod segment;
pub mod snapshot;
pub mod table;
pub mod trigger;
pub mod txn;
pub mod wal;

pub use change::{ChangeEvent, ChangeKind};
pub use columnar::{ColumnStats, StoredEvent};
pub use compact::{compact_once, CompactionPolicy, Compactor};
pub use db::{Database, DbOptions};
pub use journal::JournalMiner;
pub use segment::{SegmentMeta, SegmentStore, SegmentStoreOptions, StoreStatsSnapshot};
pub use snapshot::QuerySnapshot;
pub use table::{Table, TableDef};
pub use trigger::{TriggerDef, TriggerOps, TriggerTiming};
pub use txn::Transaction;
pub use wal::{scan_buffer, SyncPolicy, Wal, WalTail};
