//! CRC-32 (IEEE 802.3 polynomial) for WAL and checkpoint integrity.
//!
//! Hand-rolled table-driven implementation so the engine has zero
//! dependencies for its durability path; ~1 byte/cycle, plenty for a log
//! whose bottleneck is fsync.

/// Lazily built 256-entry lookup table for polynomial `0xEDB88320`
/// (reflected IEEE).
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Whether `data`'s checksum matches `expected`.
///
/// Caveat the durable layers must respect: `crc32(b"") == 0`, so an
/// all-zero region (e.g. a zero-filled page where a frame header should
/// be) vacuously "verifies" as an empty payload. A passing check is
/// therefore necessary but not sufficient — callers must still decode and
/// validate the payload (`wal::scan` classifies that case as
/// `WalTail::BadRecord` rather than accepting it).
pub fn verify(data: &[u8], expected: u32) -> bool {
    crc32(data) == expected
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32: feed any chunking of a byte stream through
/// [`update`](Crc32::update) and get the same digest `crc32` computes
/// over the concatenation. Lets the segment store verify multi-megabyte
/// files in fixed-size reads instead of loading them whole.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh digest.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The digest over everything fed so far (the hasher stays usable).
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot_for_any_chunking() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1_000).collect();
        let whole = crc32(&data);
        for chunk in [1usize, 7, 64, 333, 1_000] {
            let mut h = Crc32::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), whole, "chunk size {chunk}");
        }
        assert_eq!(Crc32::new().finalize(), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {i}:{bit} undetected");
            }
        }
    }
}
