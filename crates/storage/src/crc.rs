//! CRC-32 (IEEE 802.3 polynomial) for WAL and checkpoint integrity.
//!
//! Hand-rolled table-driven implementation so the engine has zero
//! dependencies for its durability path; ~1 byte/cycle, plenty for a log
//! whose bottleneck is fsync.

/// Lazily built 256-entry lookup table for polynomial `0xEDB88320`
/// (reflected IEEE).
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Whether `data`'s checksum matches `expected`.
///
/// Caveat the durable layers must respect: `crc32(b"") == 0`, so an
/// all-zero region (e.g. a zero-filled page where a frame header should
/// be) vacuously "verifies" as an empty payload. A passing check is
/// therefore necessary but not sufficient — callers must still decode and
/// validate the payload (`wal::scan` classifies that case as
/// `WalTail::BadRecord` rather than accepting it).
pub fn verify(data: &[u8], expected: u32) -> bool {
    crc32(data) == expected
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c: u32 = 0xFFFF_FFFF;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {i}:{bit} undetected");
            }
        }
    }
}
