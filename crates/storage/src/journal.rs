//! Journal mining — capture mechanism (ii) of the tutorial's §2.2.a
//! ("capturing events using journals").
//!
//! A [`JournalMiner`] tails the committed portion of the WAL and converts
//! row ops into [`ChangeEvent`]s. Unlike triggers, mining is *asynchronous*
//! and *off the commit path*: the writing transaction pays only the cost
//! of logging it already paid, and the miner batches whatever has been
//! committed since its last poll — the trade measured by experiment E1.
//!
//! Because update/delete ops carry before images in the log, mined events
//! have the same fidelity as trigger events.

use evdb_types::{Error, Result, Trace, Value};

use crate::change::{ChangeEvent, ChangeKind};
use crate::db::Database;
use crate::wal::WalOp;

/// A cursor over the database journal.
#[derive(Debug)]
pub struct JournalMiner {
    last_lsn: u64,
    events_mined: u64,
    truncation_gaps: u64,
}

impl JournalMiner {
    /// Start mining after the current end of the journal (only future
    /// changes will be seen).
    pub fn from_now(db: &Database) -> JournalMiner {
        JournalMiner {
            last_lsn: db.last_lsn(),
            events_mined: 0,
            truncation_gaps: 0,
        }
    }

    /// Start mining from the beginning of the retained journal.
    pub fn from_start() -> JournalMiner {
        JournalMiner {
            last_lsn: 0,
            events_mined: 0,
            truncation_gaps: 0,
        }
    }

    /// LSN up to which this miner has consumed the journal.
    pub fn position(&self) -> u64 {
        self.last_lsn
    }

    /// Total change events produced by this miner.
    pub fn events_mined(&self) -> u64 {
        self.events_mined
    }

    /// How many polls observed an LSN gap: the miner lagged past a
    /// checkpoint, which truncated journal records it had not yet consumed.
    /// Those changes are only recoverable from the checkpoint image, not
    /// the journal — a lagging miner after crash recovery must treat a
    /// nonzero gap count as "re-baseline from table state".
    pub fn truncation_gaps(&self) -> u64 {
        self.truncation_gaps
    }

    /// Where the journal has a gap relative to this cursor: a checkpoint
    /// truncated records the cursor had not yet consumed. Checks the
    /// WAL's truncation floor first — so a gap is visible even when no
    /// post-checkpoint records exist yet — then the first retained
    /// record's LSN as a backstop (LSNs are contiguous, so a first
    /// record beyond `last_lsn + 1` means discarded history).
    fn gap_floor(&self, db: &Database, records: &[crate::wal::WalRecord]) -> Option<u64> {
        let floor = db.wal_truncated_through();
        if floor > self.last_lsn {
            return Some(floor);
        }
        match records.first() {
            Some(first) if first.lsn > self.last_lsn + 1 => Some(first.lsn - 1),
            _ => None,
        }
    }

    /// Drain all newly committed changes into events. DDL ops are skipped
    /// (they are catalog changes, not row events). Ops on tables that have
    /// since been dropped are skipped too — their schema is gone.
    ///
    /// A truncation gap is *counted* (see [`truncation_gaps`]
    /// (Self::truncation_gaps)) and then skipped — the lenient capture
    /// semantics the pump wants. A REPLAY cursor that must never skip
    /// silently uses [`poll_strict`](Self::poll_strict) instead.
    pub fn poll(&mut self, db: &Database) -> Result<Vec<ChangeEvent>> {
        let records = db.wal_read_after(self.last_lsn)?;
        if let Some(floor) = self.gap_floor(db, &records) {
            self.truncation_gaps += 1;
            // Skip the hole so one truncation is one gap, not one per poll.
            self.last_lsn = self.last_lsn.max(floor);
        }
        self.convert(db, records)
    }

    /// [`poll`](Self::poll) that surfaces a truncation gap as a typed
    /// [`Error::TruncatedHistory`] instead of silently skipping the lost
    /// records: the cursor does not advance, no events are returned, and
    /// the gap is counted once. The caller must re-baseline from table
    /// state (e.g. [`crate::QuerySnapshot::rebaseline`] or a history
    /// replay) and then [`resync`](Self::resync) past the hole.
    pub fn poll_strict(&mut self, db: &Database) -> Result<Vec<ChangeEvent>> {
        let records = db.wal_read_after(self.last_lsn)?;
        if let Some(floor) = self.gap_floor(db, &records) {
            self.truncation_gaps += 1;
            return Err(Error::TruncatedHistory(format!(
                "journal truncated through lsn {floor} while replay cursor at lsn {}",
                self.last_lsn
            )));
        }
        self.convert(db, records)
    }

    /// Jump the cursor past a truncation hole (after the caller has
    /// re-baselined). Returns the new position.
    pub fn resync(&mut self, db: &Database) -> u64 {
        self.last_lsn = self.last_lsn.max(db.wal_truncated_through());
        self.last_lsn
    }

    fn convert(
        &mut self,
        db: &Database,
        records: Vec<crate::wal::WalRecord>,
    ) -> Result<Vec<ChangeEvent>> {
        let mut out = Vec::new();
        for rec in records {
            self.last_lsn = self.last_lsn.max(rec.lsn);
            for op in &rec.ops {
                let (table, kind, key, before, after) = match op {
                    WalOp::Insert { table, row } => {
                        let t = match db.table(table) {
                            Ok(t) => t,
                            Err(_) => continue,
                        };
                        let key = t.key_of(row);
                        (table, ChangeKind::Insert, key, None, Some(row.clone()))
                    }
                    WalOp::Update {
                        table,
                        key,
                        before,
                        after,
                    } => (
                        table,
                        ChangeKind::Update,
                        key.clone(),
                        Some(before.clone()),
                        Some(after.clone()),
                    ),
                    WalOp::Delete { table, key, before } => (
                        table,
                        ChangeKind::Delete,
                        key.clone(),
                        Some(before.clone()),
                        None,
                    ),
                    _ => continue, // DDL
                };
                let t = match db.table(table) {
                    Ok(t) => t,
                    Err(_) => continue,
                };
                let key: Value = key;
                out.push(ChangeEvent {
                    table: t.name().into(),
                    kind,
                    key,
                    before,
                    after,
                    txid: rec.txid,
                    lsn: Some(rec.lsn),
                    timestamp: rec.timestamp,
                    schema: t.schema().clone(),
                    trace: Trace::begin(rec.timestamp),
                });
            }
        }
        self.events_mined += out.len() as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbOptions;
    use evdb_types::{DataType, Record, Schema};

    fn db() -> std::sync::Arc<Database> {
        let db = Database::in_memory(DbOptions::default()).unwrap();
        db.create_table(
            "t",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
            "id",
        )
        .unwrap();
        db
    }

    #[test]
    fn mines_inserts_updates_deletes_with_images() {
        let db = db();
        let mut miner = JournalMiner::from_now(&db);

        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
            .unwrap();
        db.update(
            "t",
            &Value::Int(1),
            Record::from_iter([Value::Int(1), Value::Float(2.0)]),
        )
        .unwrap();
        db.delete("t", &Value::Int(1)).unwrap();

        let events = miner.poll(&db).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, ChangeKind::Insert);
        assert!(events[0].lsn.is_some());
        assert_eq!(events[1].kind, ChangeKind::Update);
        assert_eq!(
            events[1].before.as_ref().unwrap().get(1),
            Some(&Value::Float(1.0))
        );
        assert_eq!(
            events[1].after.as_ref().unwrap().get(1),
            Some(&Value::Float(2.0))
        );
        assert_eq!(events[2].kind, ChangeKind::Delete);
        assert!(events[2].after.is_none());
        assert_eq!(miner.events_mined(), 3);

        // Nothing new → empty poll.
        assert!(miner.poll(&db).unwrap().is_empty());
    }

    #[test]
    fn from_now_skips_history_from_start_sees_it() {
        let db = db();
        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
            .unwrap();

        let mut now_miner = JournalMiner::from_now(&db);
        assert!(now_miner.poll(&db).unwrap().is_empty());

        let mut start_miner = JournalMiner::from_start();
        let events = start_miner.poll(&db).unwrap();
        assert_eq!(events.len(), 1); // DDL skipped, one insert
    }

    #[test]
    fn multi_op_transactions_share_txid() {
        let db = db();
        let mut miner = JournalMiner::from_now(&db);
        let mut tx = db.begin();
        tx.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
            .unwrap();
        tx.insert("t", Record::from_iter([Value::Int(2), Value::Float(2.0)]))
            .unwrap();
        tx.commit().unwrap();

        let events = miner.poll(&db).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].txid, events[1].txid);
        assert_eq!(events[0].lsn, events[1].lsn);
    }

    #[test]
    fn lagging_miner_detects_checkpoint_truncation() {
        let dir = std::env::temp_dir().join(format!(
            "evdb-journal-gap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        db.create_table(
            "t",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
            "id",
        )
        .unwrap();
        let mut fresh = JournalMiner::from_now(&db);
        let mut lagging = JournalMiner::from_now(&db);

        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
            .unwrap();
        // `fresh` consumes before the checkpoint; `lagging` does not.
        assert_eq!(fresh.poll(&db).unwrap().len(), 1);
        db.checkpoint().unwrap();
        db.insert("t", Record::from_iter([Value::Int(2), Value::Float(2.0)]))
            .unwrap();

        let events = fresh.poll(&db).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(fresh.truncation_gaps(), 0);

        // The lagging miner only sees post-checkpoint records and must
        // report that history was truncated out from under it.
        let events = lagging.poll(&db).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(lagging.truncation_gaps(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_cursor_surfaces_typed_gap_error_and_resyncs() {
        let dir = std::env::temp_dir().join(format!(
            "evdb-journal-strict-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        db.create_table(
            "t",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
            "id",
        )
        .unwrap();
        let mut cursor = JournalMiner::from_now(&db);
        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
            .unwrap();
        // The checkpoint truncates the unconsumed insert out of the
        // journal while the replay cursor is open.
        db.checkpoint().unwrap();
        db.insert("t", Record::from_iter([Value::Int(2), Value::Float(2.0)]))
            .unwrap();

        let pos = cursor.position();
        let err = cursor.poll_strict(&db).unwrap_err();
        assert_eq!(err.kind(), "truncated_history");
        assert_eq!(cursor.truncation_gaps(), 1);
        // Strict mode never silently skips: the cursor did not move.
        assert_eq!(cursor.position(), pos);

        // After re-baselining, resync jumps the hole and polling resumes.
        cursor.resync(&db);
        let events = cursor.poll_strict(&db).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(cursor.truncation_gaps(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gap_is_counted_even_when_no_new_records_exist_yet() {
        let dir = std::env::temp_dir().join(format!(
            "evdb-journal-earlygap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        db.create_table(
            "t",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
            "id",
        )
        .unwrap();
        let mut lagging = JournalMiner::from_now(&db);
        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
            .unwrap();
        db.checkpoint().unwrap();
        // No post-checkpoint writes: the old first-record heuristic saw
        // an empty batch here and reported no gap — the accounting bug.
        let events = lagging.poll(&db).unwrap();
        assert!(events.is_empty());
        assert_eq!(lagging.truncation_gaps(), 1);
        // And only once, not once per poll.
        assert!(lagging.poll(&db).unwrap().is_empty());
        assert_eq!(lagging.truncation_gaps(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_floor_survives_recovery() {
        let dir = std::env::temp_dir().join(format!(
            "evdb-journal-floor-recover-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            db.create_table(
                "t",
                Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
                "id",
            )
            .unwrap();
            db.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
                .unwrap();
            db.checkpoint().unwrap();
        }
        // Reopen: the floor must be re-derived from the checkpoint base,
        // so a cursor persisted from before the restart (here at LSN 0)
        // still sees its gap — even with zero post-checkpoint records.
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        let mut cursor = JournalMiner::from_start();
        let err = cursor.poll_strict(&db).unwrap_err();
        assert_eq!(err.kind(), "truncated_history");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rolled_back_transactions_never_appear() {
        let db = db();
        let mut miner = JournalMiner::from_now(&db);
        {
            let mut tx = db.begin();
            tx.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
                .unwrap();
            tx.rollback();
        }
        assert!(miner.poll(&db).unwrap().is_empty());
    }
}
