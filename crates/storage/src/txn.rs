//! Transactions: atomic multi-table mutation with redo-only logging.
//!
//! A [`Transaction`] holds the database's single write gate for its whole
//! life, so writers are serialized (see the crate docs for the model).
//! Every row op:
//!
//! 1. builds the prospective [`ChangeEvent`],
//! 2. fires matching BEFORE triggers (an `Err` vetoes the op),
//! 3. applies the physical change to the table,
//! 4. records an undo entry (for rollback) and a redo [`WalOp`]
//!    (for commit),
//! 5. fires AFTER triggers.
//!
//! `commit` writes all redo ops as one framed WAL record — the record's
//! presence is the commit mark. `rollback` (explicit or on drop) replays
//! the undo list in reverse.

use evdb_types::{Error, Record, Result, Trace, Value};
use parking_lot::MutexGuard;

use crate::change::{ChangeEvent, ChangeKind};
use crate::db::Database;
use crate::trigger::TriggerTiming;
use crate::wal::WalOp;

enum Undo {
    Insert { table: String, key: Value },
    Update { table: String, key: Value, before: Record },
    Delete { table: String, before: Record },
}

/// An open transaction. Dropping without commit rolls back.
pub struct Transaction<'db> {
    db: &'db Database,
    txid: u64,
    undo: Vec<Undo>,
    redo: Vec<WalOp>,
    finished: bool,
    /// Still counted in `Database::write_waiters` (begun, commit record
    /// not yet appended) — the group-commit leader's join signal.
    counted: bool,
    /// Held from `begin` until the commit record is appended (or the
    /// transaction aborts); `None` while a group fsync is awaited.
    gate: Option<MutexGuard<'db, ()>>,
}

impl<'db> Transaction<'db> {
    pub(crate) fn new(db: &'db Database, txid: u64, gate: MutexGuard<'db, ()>) -> Self {
        Transaction {
            db,
            txid,
            undo: Vec::new(),
            redo: Vec::new(),
            finished: false,
            counted: true,
            gate: Some(gate),
        }
    }

    /// Leave the group-commit leader's join-window count once this
    /// transaction can no longer produce an append.
    fn uncount(&mut self) {
        if self.counted {
            self.counted = false;
            self.db
                .write_waiters
                .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// This transaction's id.
    pub fn txid(&self) -> u64 {
        self.txid
    }

    /// Number of buffered row operations.
    pub fn op_count(&self) -> usize {
        self.redo.len()
    }

    fn check_open(&self) -> Result<()> {
        if self.finished {
            Err(Error::Transaction("transaction already finished".into()))
        } else {
            Ok(())
        }
    }

    /// Insert a row.
    pub fn insert(&mut self, table: &str, row: Record) -> Result<Record> {
        self.check_open()?;
        let t = self.db.table(table)?;
        let row = t.schema().normalize(row)?;
        let key = t.key_of(&row);
        let timestamp = self.db.now();
        let event = ChangeEvent {
            table: t.name().into(),
            kind: ChangeKind::Insert,
            key: key.clone(),
            before: None,
            after: Some(row.clone()),
            txid: self.txid,
            lsn: None,
            timestamp,
            schema: t.schema().clone(),
            trace: Trace::begin(timestamp),
        };
        self.db.fire_triggers(TriggerTiming::Before, &event)?;
        let stored = t.insert(row)?;
        self.undo.push(Undo::Insert {
            table: table.to_string(),
            key,
        });
        self.redo.push(WalOp::Insert {
            table: table.to_string(),
            row: stored.clone(),
        });
        self.db.fire_triggers(TriggerTiming::After, &event)?;
        Ok(stored)
    }

    /// Update the row with primary key `key` to `new_row` (same key).
    pub fn update(&mut self, table: &str, key: &Value, new_row: Record) -> Result<Record> {
        self.check_open()?;
        let t = self.db.table(table)?;
        let new_row = t.schema().normalize(new_row)?;
        let before = t
            .get(key)
            .ok_or_else(|| Error::NotFound(format!("key {key} in table '{table}'")))?;
        let timestamp = self.db.now();
        let event = ChangeEvent {
            table: t.name().into(),
            kind: ChangeKind::Update,
            key: key.clone(),
            before: Some(before.clone()),
            after: Some(new_row.clone()),
            txid: self.txid,
            lsn: None,
            timestamp,
            schema: t.schema().clone(),
            trace: Trace::begin(timestamp),
        };
        self.db.fire_triggers(TriggerTiming::Before, &event)?;
        let (before, after) = t.update(key, new_row)?;
        self.undo.push(Undo::Update {
            table: table.to_string(),
            key: key.clone(),
            before: before.clone(),
        });
        self.redo.push(WalOp::Update {
            table: table.to_string(),
            key: key.clone(),
            before,
            after: after.clone(),
        });
        self.db.fire_triggers(TriggerTiming::After, &event)?;
        Ok(after)
    }

    /// Delete the row with primary key `key`; returns the removed row.
    pub fn delete(&mut self, table: &str, key: &Value) -> Result<Record> {
        self.check_open()?;
        let t = self.db.table(table)?;
        let before = t
            .get(key)
            .ok_or_else(|| Error::NotFound(format!("key {key} in table '{table}'")))?;
        let timestamp = self.db.now();
        let event = ChangeEvent {
            table: t.name().into(),
            kind: ChangeKind::Delete,
            key: key.clone(),
            before: Some(before.clone()),
            after: None,
            txid: self.txid,
            lsn: None,
            timestamp,
            schema: t.schema().clone(),
            trace: Trace::begin(timestamp),
        };
        self.db.fire_triggers(TriggerTiming::Before, &event)?;
        let before = t.delete(key)?;
        self.undo.push(Undo::Delete {
            table: table.to_string(),
            before: before.clone(),
        });
        self.redo.push(WalOp::Delete {
            table: table.to_string(),
            key: key.clone(),
            before: before.clone(),
        });
        self.db.fire_triggers(TriggerTiming::After, &event)?;
        Ok(before)
    }

    /// Read a row by key within this transaction (sees own writes, since
    /// ops apply eagerly).
    pub fn get(&self, table: &str, key: &Value) -> Result<Option<Record>> {
        Ok(self.db.table(table)?.get(key))
    }

    /// Commit: write the redo ops as one WAL record. Returns the LSN, or
    /// `None` if the transaction made no changes (nothing to log).
    ///
    /// If the append fails (I/O error, injected crash) the eagerly applied
    /// changes are rolled back first, so in-memory state never runs ahead
    /// of the journal — a failed commit is an aborted transaction.
    ///
    /// Under `SyncPolicy::Always` the append enlists in a **commit
    /// group** (D15): the write gate is released as soon as the record is
    /// in the log, and this thread parks until one leader's fsync covers
    /// the whole group. If that fsync fails the commit returns `Err`
    /// *without* rolling back — the record is in the log and later
    /// transactions may already have built on the state, so its fate is
    /// "ack lost": recovery decides from what reached the platter.
    pub fn commit(mut self) -> Result<Option<u64>> {
        self.check_open()?;
        if self.redo.is_empty() {
            self.finished = true;
            self.uncount();
            return Ok(None);
        }
        let ops = std::mem::take(&mut self.redo);
        match self.db.commit_append(self.txid, &ops) {
            Ok((lsn, grouped)) => {
                self.finished = true;
                self.uncount();
                if grouped {
                    // Record is logged: let the next producer append
                    // while we wait for (or lead) the group fsync.
                    drop(self.gate.take());
                    self.db.group_wait(lsn)?;
                }
                Ok(Some(lsn))
            }
            Err(e) => {
                self.do_rollback();
                Err(e)
            }
        }
    }

    /// Roll back every applied op, newest first.
    pub fn rollback(mut self) {
        self.do_rollback();
    }

    fn do_rollback(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.uncount();
        while let Some(u) = self.undo.pop() {
            // Physical undo cannot fail unless the engine is corrupted;
            // panic loudly rather than limp on with half-undone state.
            match u {
                Undo::Insert { table, key } => {
                    let t = self.db.table(&table).expect("table vanished during txn");
                    t.delete(&key).expect("undo insert failed");
                }
                Undo::Update { table, key, before } => {
                    let t = self.db.table(&table).expect("table vanished during txn");
                    t.update(&key, before).expect("undo update failed");
                }
                Undo::Delete { table, before } => {
                    let t = self.db.table(&table).expect("table vanished during txn");
                    t.insert(before).expect("undo delete failed");
                }
            }
        }
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        self.do_rollback();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Database, DbOptions};
    use evdb_types::{DataType, Schema};

    fn db() -> std::sync::Arc<Database> {
        let db = Database::in_memory(DbOptions::default()).unwrap();
        db.create_table(
            "acct",
            Schema::of(&[("id", DataType::Int), ("bal", DataType::Float)]),
            "id",
        )
        .unwrap();
        db
    }

    #[test]
    fn commit_applies_and_logs() {
        let db = db();
        let mut tx = db.begin();
        tx.insert("acct", Record::from_iter([Value::Int(1), Value::Float(10.0)]))
            .unwrap();
        tx.insert("acct", Record::from_iter([Value::Int(2), Value::Float(20.0)]))
            .unwrap();
        let lsn = tx.commit().unwrap();
        assert!(lsn.is_some());
        assert_eq!(db.table("acct").unwrap().len(), 2);
        let recs = db.wal_read_after(0).unwrap();
        // 1 DDL record + 1 data record
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].ops.len(), 2);
    }

    #[test]
    fn rollback_undoes_everything_in_order() {
        let db = db();
        db.insert("acct", Record::from_iter([Value::Int(1), Value::Float(10.0)]))
            .unwrap();

        let mut tx = db.begin();
        tx.insert("acct", Record::from_iter([Value::Int(2), Value::Float(5.0)]))
            .unwrap();
        tx.update("acct", &Value::Int(1), Record::from_iter([Value::Int(1), Value::Float(99.0)]))
            .unwrap();
        tx.delete("acct", &Value::Int(2)).unwrap();
        tx.insert("acct", Record::from_iter([Value::Int(3), Value::Float(7.0)]))
            .unwrap();
        tx.rollback();

        let t = db.table("acct").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get(&Value::Int(1)).unwrap().get(1),
            Some(&Value::Float(10.0))
        );
        // Nothing beyond the DDL + first autocommit insert in the log.
        assert_eq!(db.wal_read_after(0).unwrap().len(), 2);
    }

    #[test]
    fn drop_rolls_back() {
        let db = db();
        {
            let mut tx = db.begin();
            tx.insert("acct", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
                .unwrap();
            // dropped without commit
        }
        assert_eq!(db.table("acct").unwrap().len(), 0);
    }

    #[test]
    fn empty_commit_writes_nothing() {
        let db = db();
        let tx = db.begin();
        assert_eq!(tx.commit().unwrap(), None);
        assert_eq!(db.wal_read_after(0).unwrap().len(), 1); // just DDL
    }

    #[test]
    fn txn_sees_own_writes() {
        let db = db();
        let mut tx = db.begin();
        tx.insert("acct", Record::from_iter([Value::Int(1), Value::Float(10.0)]))
            .unwrap();
        assert!(tx.get("acct", &Value::Int(1)).unwrap().is_some());
        tx.rollback();
        assert!(db.table("acct").unwrap().get(&Value::Int(1)).is_none());
    }

    #[test]
    fn failed_append_rolls_back_memory_state() {
        use evdb_faults::{FaultInjector, IoFault};
        let injector = FaultInjector::new(11);
        let db = Database::in_memory(DbOptions {
            faults: Some(std::sync::Arc::clone(&injector)),
            ..Default::default()
        })
        .unwrap();
        db.create_table(
            "acct",
            Schema::of(&[("id", DataType::Int), ("bal", DataType::Float)]),
            "id",
        )
        .unwrap();
        db.insert("acct", Record::from_iter([Value::Int(1), Value::Float(10.0)]))
            .unwrap();

        injector.arm(0, IoFault::PowerCut);
        let mut tx = db.begin();
        tx.update("acct", &Value::Int(1), Record::from_iter([Value::Int(1), Value::Float(99.0)]))
            .unwrap();
        let err = tx.commit().unwrap_err();
        assert!(FaultInjector::is_crash(&err), "{err}");
        // The eager update must have been undone: memory matches the log.
        injector.heal();
        assert_eq!(
            db.table("acct").unwrap().get(&Value::Int(1)).unwrap().get(1),
            Some(&Value::Float(10.0))
        );
    }

    #[test]
    fn errors_after_finish() {
        let db = db();
        let mut tx = db.begin();
        tx.insert("acct", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
            .unwrap();
        let _ = tx.commit();
        // `commit` consumes; construct a fresh finished txn via rollback path.
        let mut tx2 = db.begin();
        tx2.do_rollback();
        assert!(tx2
            .insert("acct", Record::from_iter([Value::Int(2), Value::Float(1.0)]))
            .is_err());
    }
}
