//! Change events: the common currency of all three capture mechanisms.
//!
//! Whether a row change is observed synchronously by a trigger, mined from
//! the journal, or inferred by diffing query snapshots, it surfaces as the
//! same [`ChangeEvent`], so everything downstream (rule matching,
//! continuous queries, analytics) is capture-agnostic — exactly the
//! layering the tutorial's §2.2.a implies.

use std::sync::Arc;

use evdb_types::{Record, Schema, TimestampMs, Trace, Value};

/// What happened to the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeKind {
    /// Row inserted.
    Insert,
    /// Row updated in place (primary key unchanged).
    Update,
    /// Row deleted.
    Delete,
}

impl ChangeKind {
    /// Lowercase name used in audit records and event payloads.
    pub fn name(self) -> &'static str {
        match self {
            ChangeKind::Insert => "insert",
            ChangeKind::Update => "update",
            ChangeKind::Delete => "delete",
        }
    }
}

/// One observed row change.
#[derive(Debug, Clone)]
pub struct ChangeEvent {
    /// Table the change happened in.
    pub table: Arc<str>,
    /// Insert/update/delete.
    pub kind: ChangeKind,
    /// Primary-key value of the affected row.
    pub key: Value,
    /// Row image before the change (`None` for inserts).
    pub before: Option<Record>,
    /// Row image after the change (`None` for deletes).
    pub after: Option<Record>,
    /// Transaction that made the change.
    pub txid: u64,
    /// Log sequence number — set when the event was mined from the
    /// journal, `None` for synchronous trigger/snapshot capture.
    pub lsn: Option<u64>,
    /// When the change was made (engine clock).
    pub timestamp: TimestampMs,
    /// Schema of the row images.
    pub schema: Arc<Schema>,
    /// Pipeline trace, stamped at [`evdb_types::Stage::Capture`] when the
    /// change was observed. Events converted from this change inherit it,
    /// so one id follows the change from capture to delivery.
    pub trace: Trace,
}

impl ChangeEvent {
    /// The most recent row image: `after` if present, else `before`.
    /// This is the record trigger WHEN-clauses and rule predicates see.
    pub fn row(&self) -> &Record {
        self.after
            .as_ref()
            .or(self.before.as_ref())
            .expect("change event must carry at least one row image")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_types::DataType;

    #[test]
    fn row_prefers_after_image() {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let mk = |before: Option<Record>, after: Option<Record>| ChangeEvent {
            table: Arc::from("t"),
            kind: ChangeKind::Update,
            key: Value::Int(1),
            before,
            after,
            txid: 1,
            lsn: None,
            timestamp: TimestampMs(0),
            schema: Arc::clone(&schema),
            trace: Trace::begin(TimestampMs(0)),
        };
        let e = mk(
            Some(Record::from_iter([1i64])),
            Some(Record::from_iter([2i64])),
        );
        assert_eq!(e.row().get(0), Some(&Value::Int(2)));
        let e = mk(Some(Record::from_iter([1i64])), None);
        assert_eq!(e.row().get(0), Some(&Value::Int(1)));
        assert_eq!(ChangeKind::Delete.name(), "delete");
    }
}
