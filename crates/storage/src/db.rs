//! The database: catalog, DDL, transactions, triggers, checkpointing and
//! crash recovery.
//!
//! Durability layout when opened on a directory:
//!
//! ```text
//! <dir>/evdb.wal        the journal (framed records, see `wal`)
//! <dir>/evdb.ckpt       last checkpoint: full table images + catalog
//! ```
//!
//! Recovery = load checkpoint (if any), then replay WAL records with
//! `lsn > checkpoint_lsn`. Because logging is redo-only and a WAL record
//! is written only at commit, replay never needs an undo pass.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use evdb_expr::Expr;
use evdb_faults::{FaultInjector, WriteDecision};
use evdb_obs::{HistogramHandle, Registry};
use evdb_types::{
    Clock, Error, IdGenerator, Record, Result, Schema, SystemClock, TimestampMs, Value,
};
use parking_lot::{Mutex, RwLock};

use crate::change::ChangeEvent;
use crate::codec::{self, Reader};
use crate::crc::crc32;
use crate::table::{Table, TableDef};
use crate::trigger::{TriggerAction, TriggerDef, TriggerOps, TriggerTiming};
use crate::txn::Transaction;
use crate::wal::{fsync_dir, GroupCommit, SyncPolicy, Wal, WalOp, WalTail};

/// Database configuration.
#[derive(Clone)]
pub struct DbOptions {
    /// WAL sync policy.
    pub sync: SyncPolicy,
    /// Time source (swap in a `SimClock` for deterministic tests).
    pub clock: Arc<dyn Clock>,
    /// Fault injector threaded through the durable paths (WAL appends,
    /// checkpoint writes, queue transitions). `None` in production; the
    /// torture harness arms one to sample crash schedules.
    pub faults: Option<Arc<FaultInjector>>,
    /// Metric registry the storage layer reports into (WAL append/fsync
    /// durations, checkpoint time). Defaults to a disabled registry, so
    /// instrumentation is a no-op unless the embedder opts in.
    pub registry: Arc<Registry>,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            sync: SyncPolicy::Always,
            clock: Arc::new(SystemClock),
            faults: None,
            registry: Arc::new(Registry::disabled()),
        }
    }
}

impl std::fmt::Debug for DbOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbOptions")
            .field("sync", &self.sync)
            .field("faults", &self.faults.is_some())
            .field("metrics_enabled", &self.registry.is_enabled())
            .finish()
    }
}

/// The embedded database.
pub struct Database {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    triggers: RwLock<HashMap<String, Vec<Arc<TriggerDef>>>>,
    wal: Mutex<Wal>,
    write_gate: Mutex<()>,
    /// Group-commit coordinator for `SyncPolicy::Always` commits (D15).
    group: GroupCommit,
    /// Transactions that have begun but not yet appended their commit
    /// record — the group-commit leader's signal that waiting a little
    /// longer will grow the group.
    pub(crate) write_waiters: AtomicUsize,
    txids: IdGenerator,
    clock: Arc<dyn Clock>,
    dir: Option<PathBuf>,
    faults: Option<Arc<FaultInjector>>,
    registry: Arc<Registry>,
    checkpoint_ms: Arc<HistogramHandle>,
}

impl Database {
    /// Open (or create) a durable database in `dir`, running recovery.
    pub fn open(dir: impl AsRef<Path>, options: DbOptions) -> Result<Arc<Database>> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut wal = Wal::open_with(dir.join("evdb.wal"), options.sync, options.faults.clone())?;
        wal.bind_registry(&options.registry);
        let db = Arc::new(Database {
            tables: RwLock::new(HashMap::new()),
            triggers: RwLock::new(HashMap::new()),
            wal: Mutex::new(wal),
            write_gate: Mutex::new(()),
            group: GroupCommit::new(&options.registry),
            write_waiters: AtomicUsize::new(0),
            txids: IdGenerator::default(),
            clock: options.clock,
            dir: Some(dir.clone()),
            faults: options.faults,
            checkpoint_ms: options.registry.latency_histogram("evdb_storage_checkpoint_ms"),
            registry: options.registry,
        });
        db.recover(&dir)?;
        Ok(db)
    }

    /// Create an ephemeral database (in-memory WAL, no checkpoint file).
    pub fn in_memory(options: DbOptions) -> Result<Arc<Database>> {
        let mut wal = Wal::in_memory_with(options.sync, options.faults.clone());
        wal.bind_registry(&options.registry);
        Ok(Arc::new(Database {
            tables: RwLock::new(HashMap::new()),
            triggers: RwLock::new(HashMap::new()),
            wal: Mutex::new(wal),
            write_gate: Mutex::new(()),
            group: GroupCommit::new(&options.registry),
            write_waiters: AtomicUsize::new(0),
            txids: IdGenerator::default(),
            clock: options.clock,
            dir: None,
            faults: options.faults,
            checkpoint_ms: options.registry.latency_histogram("evdb_storage_checkpoint_ms"),
            registry: options.registry,
        }))
    }

    /// The metric registry this database (and every component attached to
    /// it — queues, capture, CQ) reports into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Hit a named fault site on this database's injector (no-op without
    /// one). Upper layers (queue ack/visibility transitions, checkpoint
    /// scheduling) call this so the torture harness can crash between their
    /// durable steps.
    pub fn fault_point(&self, site: &str) -> Result<()> {
        match &self.faults {
            Some(f) => f.point(site),
            None => Ok(()),
        }
    }

    /// The fault injector, if one was configured.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// How the WAL scan ended at open time — `Clean`, or which corruption
    /// stopped recovery at the last valid record (golden corruption tests
    /// pin the exact variant and message).
    pub fn wal_tail(&self) -> WalTail {
        self.wal.lock().tail_status().clone()
    }

    /// Current engine time.
    pub fn now(&self) -> TimestampMs {
        self.clock.now()
    }

    /// The engine clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    // ---- catalog / DDL -------------------------------------------------

    /// Create a table (autocommitted DDL, journaled).
    pub fn create_table(
        &self,
        name: &str,
        schema: Arc<Schema>,
        pk_column: &str,
    ) -> Result<Arc<Table>> {
        let def = TableDef::new(name, Arc::clone(&schema), pk_column)?;
        let _gate = self.write_gate.lock();
        {
            let mut tables = self.tables.write();
            if tables.contains_key(name) {
                return Err(Error::AlreadyExists(format!("table '{name}'")));
            }
            tables.insert(name.to_string(), Arc::new(Table::new(def.clone())));
        }
        let op = WalOp::CreateTable {
            table: name.to_string(),
            schema,
            pk: def.pk,
        };
        self.wal_append(self.txids.next_id(), &[op])?;
        self.table(name)
    }

    /// Drop a table and its triggers (autocommitted DDL, journaled).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let _gate = self.write_gate.lock();
        if self.tables.write().remove(name).is_none() {
            return Err(Error::NotFound(format!("table '{name}'")));
        }
        self.triggers.write().remove(name);
        self.wal_append(
            self.txids.next_id(),
            &[WalOp::DropTable {
                table: name.to_string(),
            }],
        )?;
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table '{name}'")))
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Create a secondary index (journaled).
    pub fn create_index(&self, table: &str, column: &str) -> Result<()> {
        let t = self.table(table)?;
        let _gate = self.write_gate.lock();
        t.create_index(column)?;
        self.wal_append(
            self.txids.next_id(),
            &[WalOp::CreateIndex {
                table: table.to_string(),
                column: column.to_string(),
            }],
        )?;
        Ok(())
    }

    /// Drop a secondary index (journaled).
    pub fn drop_index(&self, table: &str, column: &str) -> Result<()> {
        let t = self.table(table)?;
        let _gate = self.write_gate.lock();
        t.drop_index(column)?;
        self.wal_append(
            self.txids.next_id(),
            &[WalOp::DropIndex {
                table: table.to_string(),
                column: column.to_string(),
            }],
        )?;
        Ok(())
    }

    // ---- triggers -------------------------------------------------------

    /// Register a trigger on a table. The WHEN predicate (if any) is bound
    /// against the table schema now.
    pub fn create_trigger(
        &self,
        name: &str,
        table: &str,
        timing: TriggerTiming,
        ops: TriggerOps,
        when: Option<Expr>,
        action: TriggerAction,
    ) -> Result<()> {
        let t = self.table(table)?;
        let mut triggers = self.triggers.write();
        let list = triggers.entry(table.to_string()).or_default();
        if list.iter().any(|tr| tr.name == name) {
            return Err(Error::AlreadyExists(format!("trigger '{name}'")));
        }
        let def = TriggerDef::new(name, table, timing, ops, when, t.schema(), action)?;
        list.push(Arc::new(def));
        Ok(())
    }

    /// Remove a trigger by name.
    pub fn drop_trigger(&self, name: &str) -> Result<()> {
        let mut triggers = self.triggers.write();
        for list in triggers.values_mut() {
            if let Some(pos) = list.iter().position(|t| t.name == name) {
                list.remove(pos);
                return Ok(());
            }
        }
        Err(Error::NotFound(format!("trigger '{name}'")))
    }

    /// Number of registered triggers (observability).
    pub fn trigger_count(&self) -> usize {
        self.triggers.read().values().map(Vec::len).sum()
    }

    pub(crate) fn fire_triggers(&self, timing: TriggerTiming, event: &ChangeEvent) -> Result<()> {
        // Snapshot the Arc list so actions may create/drop triggers.
        let list: Vec<Arc<TriggerDef>> = {
            let triggers = self.triggers.read();
            match triggers.get(event.table.as_ref()) {
                Some(l) => l.iter().filter(|t| t.timing == timing).cloned().collect(),
                None => return Ok(()),
            }
        };
        for t in list {
            if t.applies(event)? {
                t.fire(event)?;
            }
        }
        Ok(())
    }

    // ---- transactions ----------------------------------------------------

    /// Begin a transaction. Holds the single write gate until commit's
    /// append, rollback or drop (a group-commit fsync waits *outside*
    /// the gate, so producers overlap the leader's sync).
    pub fn begin(&self) -> Transaction<'_> {
        self.write_waiters.fetch_add(1, Ordering::Relaxed);
        let gate = self.write_gate.lock();
        Transaction::new(self, self.txids.next_id(), gate)
    }

    /// Autocommit insert.
    pub fn insert(&self, table: &str, row: Record) -> Result<Record> {
        let mut tx = self.begin();
        let r = tx.insert(table, row)?;
        tx.commit()?;
        Ok(r)
    }

    /// Autocommit update.
    pub fn update(&self, table: &str, key: &Value, new_row: Record) -> Result<Record> {
        let mut tx = self.begin();
        let r = tx.update(table, key, new_row)?;
        tx.commit()?;
        Ok(r)
    }

    /// Autocommit delete.
    pub fn delete(&self, table: &str, key: &Value) -> Result<Record> {
        let mut tx = self.begin();
        let r = tx.delete(table, key)?;
        tx.commit()?;
        Ok(r)
    }

    /// Predicate query against a table (index-assisted when possible).
    pub fn select(&self, table: &str, predicate: &Expr) -> Result<Vec<Record>> {
        self.table(table)?.select(predicate)
    }

    // ---- WAL access --------------------------------------------------------

    pub(crate) fn wal_append(&self, txid: u64, ops: &[WalOp]) -> Result<u64> {
        self.wal.lock().append(txid, self.now(), ops)
    }

    /// Append a transaction's commit record. Under `SyncPolicy::Always`
    /// the record is appended unsynced and enlisted with the group-commit
    /// coordinator; the returned flag tells the committer to release the
    /// write gate and call [`Database::group_wait`] for durability. Other
    /// policies keep the classic per-append behavior.
    pub(crate) fn commit_append(&self, txid: u64, ops: &[WalOp]) -> Result<(u64, bool)> {
        let mut wal = self.wal.lock();
        if wal.policy() == SyncPolicy::Always {
            let lsn = wal.append_unsynced(txid, self.now(), ops)?;
            drop(wal);
            self.group.enlist(lsn);
            Ok((lsn, true))
        } else {
            Ok((wal.append(txid, self.now(), ops)?, false))
        }
    }

    /// Block until a group fsync covers `lsn` (leading one if needed).
    pub(crate) fn group_wait(&self, lsn: u64) -> Result<()> {
        self.group.wait_durable(lsn, &self.wal, &self.write_waiters)
    }

    /// Read committed journal records after `lsn` (journal mining).
    pub fn wal_read_after(&self, lsn: u64) -> Result<Vec<crate::wal::WalRecord>> {
        self.wal.lock().read_after(lsn)
    }

    /// Bytes currently in the journal.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.lock().len_bytes()
    }

    /// Number of fsyncs the journal has performed.
    pub fn wal_sync_count(&self) -> u64 {
        self.wal.lock().sync_count()
    }

    /// LSN of the most recently written record (0 if none).
    pub fn last_lsn(&self) -> u64 {
        self.wal.lock().next_lsn() - 1
    }

    /// LSN through which the journal has been truncated by checkpoints
    /// (0 = nothing truncated). Records at or below this exist only in
    /// the checkpoint image; see [`crate::JournalMiner::poll_strict`].
    pub fn wal_truncated_through(&self) -> u64 {
        self.wal.lock().truncated_through()
    }

    // ---- checkpoint & recovery ----------------------------------------------

    /// Write a checkpoint (full table images + catalog) and truncate the
    /// journal. No-op for in-memory databases.
    pub fn checkpoint(&self) -> Result<()> {
        let dir = match &self.dir {
            Some(d) => d.clone(),
            None => return Ok(()),
        };
        let started = std::time::Instant::now();
        let _gate = self.write_gate.lock(); // freeze writers
        let last_lsn = self.last_lsn();

        let mut payload = Vec::new();
        payload.extend_from_slice(b"EVCP1");
        codec::put_u64(&mut payload, last_lsn);
        let tables = self.tables.read();
        codec::put_u32(&mut payload, tables.len() as u32);
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort();
        for name in names {
            let t = &tables[name];
            codec::put_str(&mut payload, name);
            codec::encode_schema(&mut payload, t.schema());
            codec::put_u16(&mut payload, t.def().pk as u16);
            let idx_cols = t.indexed_columns();
            codec::put_u16(&mut payload, idx_cols.len() as u16);
            for c in &idx_cols {
                codec::put_str(&mut payload, c);
            }
            let rows = t.scan();
            codec::put_u64(&mut payload, rows.len() as u64);
            for r in &rows {
                codec::encode_record(&mut payload, r);
            }
        }
        let crc = crc32(&payload);
        codec::put_u32(&mut payload, crc);

        let tmp = dir.join("evdb.ckpt.tmp");
        let dst = dir.join("evdb.ckpt");
        let decision = match &self.faults {
            Some(f) => f.on_write("ckpt.write", payload.len())?,
            None => WriteDecision::clean(payload.len()),
        };
        if let Some((off, bit)) = decision.flip {
            payload[off] ^= 1 << bit;
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&payload[..decision.keep.min(payload.len())])?;
            f.sync_data()?;
        }
        if decision.crash_after {
            // The torn/corrupt image stays in the tmp file; the previous
            // checkpoint (if any) and the full WAL are untouched, so
            // recovery ignores it.
            return Err(FaultInjector::crash_error("ckpt.write"));
        }
        self.fault_point("ckpt.rename")?;
        fs::rename(&tmp, &dst)?;
        // Make the rename itself durable before discarding the journal: a
        // crash here must find either (old ckpt + full WAL) or (new ckpt),
        // never an orphaned dirent.
        self.fault_point("ckpt.dirsync")?;
        fsync_dir(&dir)?;
        self.wal.lock().truncate()?;
        self.checkpoint_ms
            .observe(started.elapsed().as_secs_f64() * 1_000.0);
        Ok(())
    }

    fn recover(self: &Arc<Self>, dir: &Path) -> Result<()> {
        // 1. Checkpoint, if present.
        let ckpt = dir.join("evdb.ckpt");
        let mut base_lsn = 0u64;
        if ckpt.exists() {
            let mut buf = Vec::new();
            File::open(&ckpt)?.read_to_end(&mut buf)?;
            base_lsn = self.load_checkpoint(&buf)?;
        }
        // 2. Replay journal.
        let records = {
            let mut wal = self.wal.lock();
            wal.bump_lsn(base_lsn + 1);
            // Records at or below the checkpoint LSN live only in the
            // checkpoint image now; lagging miners must learn this even
            // before any post-recovery append shows them an LSN gap.
            wal.note_truncated_through(base_lsn);
            wal.read_after(base_lsn)?
        };
        let mut max_txid = 0u64;
        for rec in records {
            max_txid = max_txid.max(rec.txid);
            for op in &rec.ops {
                self.apply_recovered(op)?;
            }
        }
        self.txids.bump_to(max_txid + 1);
        Ok(())
    }

    fn load_checkpoint(&self, buf: &[u8]) -> Result<u64> {
        if buf.len() < 9 || &buf[..5] != b"EVCP1" {
            return Err(Error::Corruption("bad checkpoint header".into()));
        }
        let body = &buf[..buf.len() - 4];
        let stored_crc =
            u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
        if !crate::crc::verify(body, stored_crc) {
            return Err(Error::Corruption("checkpoint crc mismatch".into()));
        }
        let mut r = Reader::new(&body[5..]);
        let last_lsn = r.u64()?;
        let ntables = r.u32()? as usize;
        let mut tables = self.tables.write();
        for _ in 0..ntables {
            let name = r.str()?;
            let schema = codec::decode_schema(&mut r)?;
            let pk = r.u16()? as usize;
            let pk_name = schema
                .fields()
                .get(pk)
                .ok_or_else(|| Error::Corruption("pk out of range in checkpoint".into()))?
                .name
                .clone();
            let def = TableDef::new(&name, schema, &pk_name)?;
            let table = Table::new(def);
            let nidx = r.u16()? as usize;
            let mut idx_cols = Vec::with_capacity(nidx);
            for _ in 0..nidx {
                idx_cols.push(r.str()?);
            }
            let nrows = r.u64()? as usize;
            for _ in 0..nrows {
                table.insert(codec::decode_record(&mut r)?)?;
            }
            for c in idx_cols {
                table.create_index(&c)?;
            }
            tables.insert(name, Arc::new(table));
        }
        Ok(last_lsn)
    }

    /// Apply one journal op during recovery: physical only, no triggers,
    /// no re-logging.
    fn apply_recovered(&self, op: &WalOp) -> Result<()> {
        match op {
            WalOp::CreateTable { table, schema, pk } => {
                let pk_name = schema
                    .fields()
                    .get(*pk)
                    .ok_or_else(|| Error::Corruption("pk out of range in wal".into()))?
                    .name
                    .clone();
                let def = TableDef::new(table, Arc::clone(schema), &pk_name)?;
                self.tables
                    .write()
                    .insert(table.clone(), Arc::new(Table::new(def)));
            }
            WalOp::DropTable { table } => {
                self.tables.write().remove(table);
            }
            WalOp::CreateIndex { table, column } => {
                self.table(table)?.create_index(column)?;
            }
            WalOp::DropIndex { table, column } => {
                self.table(table)?.drop_index(column)?;
            }
            WalOp::Insert { table, row } => {
                self.table(table)?.insert(row.clone())?;
            }
            WalOp::Update { table, key, after, .. } => {
                self.table(table)?.update(key, after.clone())?;
            }
            WalOp::Delete { table, key, .. } => {
                self.table(table)?.delete(key)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;
    use evdb_types::DataType;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "evdb-db-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn schema() -> Arc<Schema> {
        Schema::of(&[("id", DataType::Int), ("v", DataType::Float)])
    }

    #[test]
    fn ddl_and_autocommit_dml() {
        let db = Database::in_memory(DbOptions::default()).unwrap();
        db.create_table("t", schema(), "id").unwrap();
        assert!(db.create_table("t", schema(), "id").is_err());
        assert_eq!(db.table_names(), vec!["t".to_string()]);

        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
            .unwrap();
        db.update(
            "t",
            &Value::Int(1),
            Record::from_iter([Value::Int(1), Value::Float(2.0)]),
        )
        .unwrap();
        assert_eq!(
            db.select("t", &parse("v = 2.0").unwrap()).unwrap().len(),
            1
        );
        db.delete("t", &Value::Int(1)).unwrap();
        assert!(db.table("t").unwrap().is_empty());

        db.drop_table("t").unwrap();
        assert!(db.table("t").is_err());
        assert!(db.drop_table("t").is_err());
    }

    #[test]
    fn recovery_replays_wal() {
        let dir = tmpdir("recovery");
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            db.create_table("t", schema(), "id").unwrap();
            db.create_index("t", "v").unwrap();
            for i in 0..10 {
                db.insert(
                    "t",
                    Record::from_iter([Value::Int(i), Value::Float(i as f64)]),
                )
                .unwrap();
            }
            db.update(
                "t",
                &Value::Int(3),
                Record::from_iter([Value::Int(3), Value::Float(99.0)]),
            )
            .unwrap();
            db.delete("t", &Value::Int(4)).unwrap();
            // no checkpoint; drop = simulated crash (WAL was fsynced)
        }
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        let t = db.table("t").unwrap();
        assert_eq!(t.len(), 9);
        assert_eq!(
            t.get(&Value::Int(3)).unwrap().get(1),
            Some(&Value::Float(99.0))
        );
        assert!(t.get(&Value::Int(4)).is_none());
        assert_eq!(t.indexed_columns(), vec!["v".to_string()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_then_recover() {
        let dir = tmpdir("ckpt");
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            db.create_table("t", schema(), "id").unwrap();
            for i in 0..5 {
                db.insert(
                    "t",
                    Record::from_iter([Value::Int(i), Value::Float(i as f64)]),
                )
                .unwrap();
            }
            db.checkpoint().unwrap();
            assert_eq!(db.wal_len_bytes(), 0);
            // post-checkpoint traffic goes to the fresh WAL
            db.insert("t", Record::from_iter([Value::Int(100), Value::Float(1.0)]))
                .unwrap();
        }
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        let t = db.table("t").unwrap();
        assert_eq!(t.len(), 6);
        assert!(t.get(&Value::Int(100)).is_some());
        // New writes after recovery keep working and LSNs advance.
        db.insert("t", Record::from_iter([Value::Int(101), Value::Float(1.0)]))
            .unwrap();
        assert!(db.last_lsn() > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn triggers_fire_and_veto() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let db = Database::in_memory(DbOptions::default()).unwrap();
        db.create_table("t", schema(), "id").unwrap();

        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        db.create_trigger(
            "count_big",
            "t",
            TriggerTiming::After,
            TriggerOps::INSERT,
            Some(parse("v > 10").unwrap()),
            Arc::new(move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
        )
        .unwrap();
        db.create_trigger(
            "veto_negative",
            "t",
            TriggerTiming::Before,
            TriggerOps::INSERT,
            Some(parse("v < 0").unwrap()),
            Arc::new(|_| Err(Error::Invalid("negative v".into()))),
        )
        .unwrap();
        assert_eq!(db.trigger_count(), 2);

        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(50.0)]))
            .unwrap();
        db.insert("t", Record::from_iter([Value::Int(2), Value::Float(5.0)]))
            .unwrap();
        assert!(db
            .insert("t", Record::from_iter([Value::Int(3), Value::Float(-1.0)]))
            .is_err());
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(db.table("t").unwrap().len(), 2); // veto kept row out

        db.drop_trigger("veto_negative").unwrap();
        db.insert("t", Record::from_iter([Value::Int(3), Value::Float(-1.0)]))
            .unwrap();
        assert!(db.drop_trigger("veto_negative").is_err());
    }

    #[test]
    fn group_commit_coalesces_fsyncs() {
        let dir = tmpdir("group");
        let db = Database::open(&dir, DbOptions::default()).unwrap(); // SyncPolicy::Always
        db.create_table("t", schema(), "id").unwrap();
        let threads = 8usize;
        let per = 25usize;
        let base_syncs = db.wal_sync_count();
        std::thread::scope(|s| {
            for t in 0..threads {
                let db = &db;
                s.spawn(move || {
                    for i in 0..per {
                        db.insert(
                            "t",
                            Record::from_iter([
                                Value::Int((t * 1000 + i) as i64),
                                Value::Float(i as f64),
                            ]),
                        )
                        .unwrap();
                    }
                });
            }
        });
        let commits = (threads * per) as u64;
        let syncs = db.wal_sync_count() - base_syncs;
        assert_eq!(db.table("t").unwrap().len() as u64, commits);
        // The whole point of the coalescer: one leader fsync covers many
        // commits, so fsyncs come in strictly under the commit count.
        assert!(
            (1..commits).contains(&syncs),
            "expected 1..{commits} fsyncs, got {syncs}"
        );
        // Group metrics recorded one entry per fsynced group.
        let snap = db.registry().snapshot();
        assert_eq!(snap.counters["evdb_wal_group_commits_total"], 0); // disabled registry records nothing
        drop(db);
        // Every acked commit is durable across recovery.
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.table("t").unwrap().len() as u64, commits);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_records_metrics_when_enabled() {
        let registry = Arc::new(Registry::new());
        let db = Database::in_memory(DbOptions {
            registry: Arc::clone(&registry),
            ..Default::default()
        })
        .unwrap();
        db.create_table("t", schema(), "id").unwrap();
        for i in 0..5 {
            db.insert("t", Record::from_iter([Value::Int(i), Value::Float(0.0)]))
                .unwrap();
        }
        let snap = registry.snapshot();
        let groups = snap.counters["evdb_wal_group_commits_total"];
        assert!((1..=5).contains(&groups), "got {groups}");
        let size = snap.histograms["evdb_wal_group_size"];
        assert_eq!(size.count, groups);
        assert!(size.sum >= 5.0, "every commit must be in some group");
    }

    #[test]
    fn group_sync_crash_fails_commit_without_rollback() {
        use evdb_faults::{FaultInjector, IoFault};
        let injector = FaultInjector::new(21);
        let db = Database::in_memory(DbOptions {
            faults: Some(Arc::clone(&injector)),
            ..Default::default()
        })
        .unwrap();
        db.create_table("t", schema(), "id").unwrap();
        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
            .unwrap();

        // Crash exactly at the leader's fsync: the append (wal.group.append)
        // passes, the group sync fires the fault.
        injector.arm(1, IoFault::PowerCut);
        let err = db
            .insert("t", Record::from_iter([Value::Int(2), Value::Float(2.0)]))
            .unwrap_err();
        assert!(FaultInjector::is_crash(&err), "{err}");
        assert_eq!(injector.crash_site().as_deref(), Some("wal.group.sync"));
        // Ack lost, not aborted: the record is in the log and memory keeps
        // it — recovery decides from what reached the platter.
        assert_eq!(db.table("t").unwrap().len(), 2);
        injector.heal();
        assert_eq!(db.wal_read_after(0).unwrap().len(), 3); // DDL + 2 inserts
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let dir = tmpdir("badckpt");
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            db.create_table("t", schema(), "id").unwrap();
            db.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
                .unwrap();
            db.checkpoint().unwrap();
        }
        // Flip a byte in the checkpoint body.
        let path = dir.join("evdb.ckpt");
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(Database::open(&dir, DbOptions::default()).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
