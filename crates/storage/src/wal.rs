//! The write-ahead log (the paper's "journal").
//!
//! Redo-only logging: a transaction's ops are buffered in memory and
//! written as **one framed record at commit** — the record's presence in
//! the log *is* the commit mark, so recovery never sees partial
//! transactions and needs no undo pass. Update and delete ops carry before
//! images, so a journal miner (à la Oracle LogMiner, §2.2.a.ii of the
//! tutorial) can reconstruct full change events from the log alone.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [len: u32][crc32(payload): u32][payload: len bytes]
//! payload := lsn:u64 txid:u64 ts:i64 op_count:u16 ops…
//! ```
//!
//! A torn final frame (crash mid-write) fails the length or CRC check and
//! is ignored, along with everything after it.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use evdb_faults::{FaultInjector, WriteDecision};
use evdb_obs::{Counter, HistogramHandle, Registry};
use evdb_types::{Error, Record, Result, Schema, TimestampMs, Value};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::codec::{self, Reader};
use crate::crc::crc32;

/// Why a log scan stopped where it did. Everything before the reported
/// offset is the valid prefix; everything at and after it is discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// The log ends cleanly on a frame boundary.
    Clean,
    /// The final frame is incomplete — the classic crash-mid-write tear.
    TornFrame {
        /// Byte offset where the torn frame starts.
        offset: usize,
    },
    /// A frame's payload fails its CRC (bit rot or a mid-frame overwrite).
    BadCrc {
        /// Byte offset where the corrupt frame starts.
        offset: usize,
    },
    /// A frame passed its CRC but its payload would not decode (e.g. a
    /// zero-filled page parses as an empty frame with a vacuous CRC).
    BadRecord {
        /// Byte offset where the undecodable frame starts.
        offset: usize,
        /// Decoder's explanation.
        reason: String,
    },
}

impl WalTail {
    /// Whether the scan consumed every byte.
    pub fn is_clean(&self) -> bool {
        matches!(self, WalTail::Clean)
    }
}

impl std::fmt::Display for WalTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalTail::Clean => write!(f, "clean"),
            WalTail::TornFrame { offset } => {
                write!(f, "torn frame at byte {offset} (incomplete tail discarded)")
            }
            WalTail::BadCrc { offset } => {
                write!(f, "crc mismatch at byte {offset} (corrupt tail discarded)")
            }
            WalTail::BadRecord { offset, reason } => {
                write!(f, "undecodable record at byte {offset}: {reason}")
            }
        }
    }
}

/// fsync a directory so a freshly created or renamed file inside it cannot
/// be orphaned by a power cut (the dirent itself must reach the platter,
/// not just the inode).
pub fn fsync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// When to fsync the log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every commit (durable, slow). The per-commit baseline
    /// for the group-commit ablation (DESIGN.md D6).
    Always,
    /// fsync after every `n` commits (group commit).
    EveryN(u32),
    /// Never fsync explicitly (OS decides; fastest, weakest).
    Never,
}

/// A logical operation within a committed transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Table created.
    CreateTable {
        /// Table name.
        table: String,
        /// Table schema.
        schema: Arc<Schema>,
        /// Primary-key column index.
        pk: usize,
    },
    /// Table dropped.
    DropTable {
        /// Table name.
        table: String,
    },
    /// Secondary index created on a column.
    CreateIndex {
        /// Table name.
        table: String,
        /// Indexed column name.
        column: String,
    },
    /// Secondary index dropped.
    DropIndex {
        /// Table name.
        table: String,
        /// Indexed column name.
        column: String,
    },
    /// Row inserted.
    Insert {
        /// Table name.
        table: String,
        /// Full row image.
        row: Record,
    },
    /// Row updated (`before` kept for journal mining).
    Update {
        /// Table name.
        table: String,
        /// Primary key.
        key: Value,
        /// Row image before the update.
        before: Record,
        /// Row image after the update.
        after: Record,
    },
    /// Row deleted (`before` kept for journal mining).
    Delete {
        /// Table name.
        table: String,
        /// Primary key.
        key: Value,
        /// Row image before the delete.
        before: Record,
    },
}

/// One committed transaction as stored in the log.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Log sequence number (strictly increasing).
    pub lsn: u64,
    /// Transaction id.
    pub txid: u64,
    /// Commit time.
    pub timestamp: TimestampMs,
    /// The transaction's operations, in execution order.
    pub ops: Vec<WalOp>,
}

enum Backend {
    File {
        file: File,
        path: PathBuf,
    },
    /// In-memory log for ephemeral databases and allocation-sensitive
    /// benchmarks; shares the same framing so read paths are identical.
    Mem(Arc<RwLock<Vec<u8>>>),
}

/// The write-ahead log.
pub struct Wal {
    backend: Backend,
    policy: SyncPolicy,
    next_lsn: u64,
    commits_since_sync: u32,
    bytes_written: u64,
    syncs: u64,
    faults: Option<Arc<FaultInjector>>,
    tail: WalTail,
    /// LSN through which records have been discarded by truncation:
    /// every retained record has a strictly greater LSN. Restored from
    /// the checkpoint during recovery ([`Wal::note_truncated_through`]).
    truncated_through: u64,
    /// Duration histograms, bound only when an enabled registry is
    /// attached — `None` keeps the hot path free of even `Instant` reads.
    /// Appends are *sampled* (1 in [`WAL_APPEND_SAMPLE`]): an in-memory
    /// append costs ~100ns, so timing every one would tax the write path
    /// more than the rest of the pipeline's instrumentation combined.
    append_ms: Option<Arc<HistogramHandle>>,
    fsync_ms: Option<Arc<HistogramHandle>>,
    append_tick: u32,
}

/// Sample rate for append-duration observation (power of two).
const WAL_APPEND_SAMPLE: u32 = 64;

impl Wal {
    /// Open (or create) a file-backed log. Scans the existing file to find
    /// the end of the valid prefix; anything after a torn frame is
    /// discarded on the next append.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Wal> {
        Self::open_with(path, policy, None)
    }

    /// `open` with an optional fault injector threaded through the durable
    /// path (fault sites: `wal.open.dirsync`, `wal.append`, `wal.sync`,
    /// `wal.truncate`).
    pub fn open_with(
        path: impl AsRef<Path>,
        policy: SyncPolicy,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let fresh = !path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if fresh {
            // A crash right here must not orphan the new segment: the
            // parent dirent has to be durable before anyone logs into it.
            if let Some(f) = &faults {
                f.point("wal.open.dirsync")?;
            }
            if let Some(parent) = path.parent() {
                fsync_dir(parent)?;
            }
        }
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let (records, valid_len, tail) = scan(&buf);
        let next_lsn = records.last().map(|r| r.lsn + 1).unwrap_or(1);
        file.set_len(valid_len as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            backend: Backend::File { file, path },
            policy,
            next_lsn,
            commits_since_sync: 0,
            bytes_written: valid_len as u64,
            syncs: 0,
            faults,
            tail,
            truncated_through: 0,
            append_ms: None,
            fsync_ms: None,
            append_tick: 0,
        })
    }

    /// Create an in-memory log.
    pub fn in_memory(policy: SyncPolicy) -> Wal {
        Self::in_memory_with(policy, None)
    }

    /// `in_memory` with an optional fault injector (same sites as files,
    /// minus the directory sync).
    pub fn in_memory_with(policy: SyncPolicy, faults: Option<Arc<FaultInjector>>) -> Wal {
        Wal {
            backend: Backend::Mem(Arc::new(RwLock::new(Vec::new()))),
            policy,
            next_lsn: 1,
            commits_since_sync: 0,
            bytes_written: 0,
            syncs: 0,
            faults,
            tail: WalTail::Clean,
            truncated_through: 0,
            append_ms: None,
            fsync_ms: None,
            append_tick: 0,
        }
    }

    /// Report append/fsync durations into `registry` from now on
    /// (`evdb_storage_wal_append_ms` / `evdb_storage_wal_fsync_ms`).
    /// A disabled registry leaves the log uninstrumented entirely.
    pub fn bind_registry(&mut self, registry: &Arc<Registry>) {
        if registry.is_enabled() {
            self.append_ms = Some(registry.latency_histogram("evdb_storage_wal_append_ms"));
            self.fsync_ms = Some(registry.latency_histogram("evdb_storage_wal_fsync_ms"));
        }
    }

    /// Why the opening scan stopped where it did ([`WalTail::Clean`] when
    /// the log ended on a frame boundary). The invalid suffix was already
    /// trimmed; this reports what was found there.
    pub fn tail_status(&self) -> &WalTail {
        &self.tail
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Force the next LSN (used when recovering on top of a checkpoint
    /// whose LSN is beyond the truncated log).
    pub fn bump_lsn(&mut self, next: u64) {
        self.next_lsn = self.next_lsn.max(next);
    }

    /// Record that history through `lsn` lives only in a checkpoint now
    /// (recovery calls this with the checkpoint's LSN; `truncate` tracks
    /// it directly). Monotone.
    pub fn note_truncated_through(&mut self, lsn: u64) {
        self.truncated_through = self.truncated_through.max(lsn);
    }

    /// LSN through which journal records have been discarded. A cursor
    /// positioned at or below this (and behind the head) has lost
    /// history: the records between its position and this floor are only
    /// recoverable from the checkpoint image.
    pub fn truncated_through(&self) -> u64 {
        self.truncated_through
    }

    /// Total valid bytes in the log.
    pub fn len_bytes(&self) -> u64 {
        self.bytes_written
    }

    /// Number of explicit fsyncs performed (observability for E2).
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// The sync policy this log was opened with.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Append one committed transaction; returns its LSN. The recorded
    /// append duration includes a policy-triggered fsync, so it reflects
    /// what a committing transaction actually waits for.
    pub fn append(&mut self, txid: u64, timestamp: TimestampMs, ops: &[WalOp]) -> Result<u64> {
        let started = match &self.append_ms {
            Some(_) => {
                self.append_tick = self.append_tick.wrapping_add(1);
                (self.append_tick.is_multiple_of(WAL_APPEND_SAMPLE)).then(Instant::now)
            }
            None => None,
        };
        let lsn = self.append_frame(txid, timestamp, ops, "wal.append")?;
        let should_sync = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => self.commits_since_sync >= n,
            SyncPolicy::Never => false,
        };
        if should_sync {
            self.sync()?;
        }
        if let (Some(h), Some(t0)) = (&self.append_ms, started) {
            h.observe(t0.elapsed().as_secs_f64() * 1_000.0);
        }
        Ok(lsn)
    }

    /// Append one committed transaction **without** any policy-triggered
    /// fsync — the enlist half of the group-commit protocol (D15). The
    /// record is in the log (and survives an OS-level flush) but the
    /// caller must not report the commit durable until a
    /// [`GroupCommit`] leader has run [`Wal::sync_group`] past its LSN.
    /// Fault site: `wal.group.append`.
    pub fn append_unsynced(
        &mut self,
        txid: u64,
        timestamp: TimestampMs,
        ops: &[WalOp],
    ) -> Result<u64> {
        self.append_frame(txid, timestamp, ops, "wal.group.append")
    }

    fn append_frame(
        &mut self,
        txid: u64,
        timestamp: TimestampMs,
        ops: &[WalOp],
        site: &str,
    ) -> Result<u64> {
        let lsn = self.next_lsn;
        let mut payload = Vec::with_capacity(64);
        codec::put_u64(&mut payload, lsn);
        codec::put_u64(&mut payload, txid);
        codec::put_i64(&mut payload, timestamp.0);
        codec::put_u16(&mut payload, ops.len() as u16);
        for op in ops {
            encode_op(&mut payload, op);
        }
        let mut frame = Vec::with_capacity(payload.len() + 8);
        codec::put_u32(&mut frame, payload.len() as u32);
        codec::put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);

        let decision = match &self.faults {
            Some(f) => f.on_write(site, frame.len())?,
            None => WriteDecision::clean(frame.len()),
        };
        if let Some((off, bit)) = decision.flip {
            frame[off] ^= 1 << bit;
        }
        let kept = &frame[..decision.keep.min(frame.len())];
        match &mut self.backend {
            Backend::File { file, .. } => {
                file.write_all(kept)?;
            }
            Backend::Mem(buf) => buf.write().extend_from_slice(kept),
        }
        if decision.crash_after {
            // Whatever landed stays on the medium (torn/flipped bytes
            // included) but the process "dies" before acknowledging.
            if let Backend::File { file, .. } = &mut self.backend {
                let _ = file.sync_data();
            }
            return Err(FaultInjector::crash_error(site));
        }
        self.bytes_written += frame.len() as u64;
        self.next_lsn += 1;
        self.commits_since_sync += 1;
        Ok(lsn)
    }

    /// fsync now (no-op for the memory backend, but still counted so
    /// benchmarks compare policies fairly).
    pub fn sync(&mut self) -> Result<()> {
        self.sync_at("wal.sync")
    }

    /// The group-commit leader's fsync: identical to [`Wal::sync`] but
    /// hits the `wal.group.sync` fault site so the torture harness can
    /// crash a leader mid-group.
    pub fn sync_group(&mut self) -> Result<()> {
        self.sync_at("wal.group.sync")
    }

    fn sync_at(&mut self, site: &str) -> Result<()> {
        // Only time syncs that reach a real file: the memory backend's
        // sync is a no-op, so clock reads would *be* the cost rather
        // than measure it (a sync-per-commit policy would otherwise pay
        // two `Instant` reads plus a histogram lock per transaction).
        let started = match (&self.fsync_ms, &self.backend) {
            (Some(_), Backend::File { .. }) => Some(Instant::now()),
            _ => None,
        };
        if let Some(f) = &self.faults {
            f.point(site)?;
        }
        if let Backend::File { file, .. } = &mut self.backend {
            file.sync_data()?;
        }
        self.commits_since_sync = 0;
        self.syncs += 1;
        if let (Some(h), Some(t0)) = (&self.fsync_ms, started) {
            h.observe(t0.elapsed().as_secs_f64() * 1_000.0);
        }
        Ok(())
    }

    /// Read all valid records with `lsn > after_lsn`. Reads through a
    /// separate handle so tailing does not disturb the append position.
    pub fn read_after(&self, after_lsn: u64) -> Result<Vec<WalRecord>> {
        let buf = self.snapshot_bytes()?;
        let (records, _, _) = scan(&buf);
        Ok(records.into_iter().filter(|r| r.lsn > after_lsn).collect())
    }

    /// Read every valid record.
    pub fn read_all(&self) -> Result<Vec<WalRecord>> {
        self.read_after(0)
    }

    /// Drop the log contents (after a checkpoint has captured them).
    /// LSN numbering continues from where it was.
    pub fn truncate(&mut self) -> Result<()> {
        if let Some(f) = &self.faults {
            f.point("wal.truncate")?;
        }
        match &mut self.backend {
            Backend::File { file, .. } => {
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.sync_data()?;
            }
            Backend::Mem(buf) => buf.write().clear(),
        }
        self.bytes_written = 0;
        self.truncated_through = self.next_lsn - 1;
        Ok(())
    }

    fn snapshot_bytes(&self) -> Result<Vec<u8>> {
        match &self.backend {
            Backend::File { path, .. } => {
                let mut f = File::open(path)?;
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                Ok(buf)
            }
            Backend::Mem(buf) => Ok(buf.read().clone()),
        }
    }
}

/// How long a group-commit leader will wait for more producers to join
/// before paying the fsync, in [`GROUP_WAIT_SLICE`] steps.
const GROUP_WAIT_SLICES: u32 = 10;
const GROUP_WAIT_SLICE: Duration = Duration::from_micros(10);

struct GroupState {
    /// Highest LSN appended through [`Wal::append_unsynced`].
    tail_lsn: u64,
    /// Highest LSN covered by a successful group fsync.
    durable_lsn: u64,
    /// Appended-but-unsynced commits in the currently forming group.
    pending: u64,
    /// Some committer is currently leading (fsyncing) a group.
    leader_active: bool,
    /// Commits at or below this LSN saw their group fsync fail;
    /// `failed_msg` reproduces the leader's error for each of them.
    failed_through: u64,
    failed_msg: String,
}

/// The commit coalescer (D15). Committers append their record under the
/// write gate via [`Wal::append_unsynced`], [`enlist`](Self::enlist) it,
/// release the gate, and [`wait_durable`](Self::wait_durable). The first
/// waiter to find no leader active becomes the **leader**: it gives
/// in-flight producers a bounded window to join (`write_waiters` counts
/// transactions that have begun but not yet appended), captures the log
/// tail, and performs one fsync for the whole group. Followers whose LSN
/// the fsync covered return without ever touching the file; a follower
/// the group left behind takes the baton and leads the next one.
pub(crate) struct GroupCommit {
    state: Mutex<GroupState>,
    cv: Condvar,
    commits: Arc<Counter>,
    size: Arc<HistogramHandle>,
}

impl GroupCommit {
    pub(crate) fn new(registry: &Arc<Registry>) -> GroupCommit {
        GroupCommit {
            state: Mutex::new(GroupState {
                tail_lsn: 0,
                durable_lsn: 0,
                pending: 0,
                leader_active: false,
                failed_through: 0,
                failed_msg: String::new(),
            }),
            cv: Condvar::new(),
            commits: registry.counter("evdb_wal_group_commits_total"),
            size: registry.histogram("evdb_wal_group_size", 0.0, 256.0, 64),
        }
    }

    /// Record that `lsn` has been appended and awaits the next group
    /// fsync. Call after the append succeeds, before releasing the
    /// write gate, so the tail advances in append order.
    pub(crate) fn enlist(&self, lsn: u64) {
        let mut st = self.state.lock();
        st.tail_lsn = st.tail_lsn.max(lsn);
        st.pending += 1;
    }

    /// Park until `lsn` is covered by a group fsync, leading one if no
    /// leader is active. Returns the leader's error for every commit in
    /// a group whose fsync failed (in-memory state is *not* rolled back
    /// — the record is in the log, only its durability is unknown; see
    /// `Transaction::commit`).
    pub(crate) fn wait_durable(
        &self,
        lsn: u64,
        wal: &Mutex<Wal>,
        write_waiters: &AtomicUsize,
    ) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            if st.durable_lsn >= lsn {
                return Ok(());
            }
            if st.failed_through >= lsn {
                return Err(Error::Io(std::io::Error::other(st.failed_msg.clone())));
            }
            if !st.leader_active {
                break;
            }
            // Timeout only guards lost wakeups; the loop re-checks.
            st = self.cv.wait_timeout(st, Duration::from_millis(50)).0;
        }
        // Lead the group: give producers that are mid-transaction a
        // bounded window to append and join before paying the fsync.
        st.leader_active = true;
        for _ in 0..GROUP_WAIT_SLICES {
            if write_waiters.load(Ordering::Relaxed) == 0 {
                break;
            }
            drop(st);
            std::thread::sleep(GROUP_WAIT_SLICE);
            st = self.state.lock();
        }
        let tail = st.tail_lsn;
        let group_n = st.pending;
        st.pending = 0;
        drop(st);
        let res = wal.lock().sync_group();
        let mut st = self.state.lock();
        st.leader_active = false;
        match res {
            Ok(()) => {
                st.durable_lsn = st.durable_lsn.max(tail);
                self.commits.inc();
                self.size.observe(group_n as f64);
                self.cv.notify_all();
                Ok(())
            }
            Err(e) => {
                st.failed_through = st.failed_through.max(tail);
                // Keep the inner I/O message so a reconstructed error is
                // still recognizable to `FaultInjector::is_crash`.
                st.failed_msg = match &e {
                    Error::Io(ioe) => ioe.to_string(),
                    other => other.to_string(),
                };
                self.cv.notify_all();
                Err(e)
            }
        }
    }
}

/// Decode the valid prefix of a log buffer; returns the records, the byte
/// length of the valid prefix, and why the scan stopped. Public so tools
/// and corruption fixtures can inspect raw log bytes without opening a
/// `Wal` (which trims the invalid suffix in place).
pub fn scan_buffer(buf: &[u8]) -> (Vec<WalRecord>, usize, WalTail) {
    scan(buf)
}

fn scan(buf: &[u8]) -> (Vec<WalRecord>, usize, WalTail) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > 1 << 30 || buf.len() - pos - 8 < len {
            return (records, pos, WalTail::TornFrame { offset: pos });
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if !crate::crc::verify(payload, crc) {
            return (records, pos, WalTail::BadCrc { offset: pos });
        }
        match decode_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                return (
                    records,
                    pos,
                    WalTail::BadRecord {
                        offset: pos,
                        reason: e.to_string(),
                    },
                )
            }
        }
        pos += 8 + len;
    }
    let tail = if pos == buf.len() {
        WalTail::Clean
    } else {
        WalTail::TornFrame { offset: pos }
    };
    (records, pos, tail)
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord> {
    let mut r = Reader::new(payload);
    let lsn = r.u64()?;
    let txid = r.u64()?;
    let ts = TimestampMs(r.i64()?);
    let n = r.u16()? as usize;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(decode_op(&mut r)?);
    }
    if !r.is_empty() {
        return Err(Error::Corruption("trailing bytes in wal payload".into()));
    }
    Ok(WalRecord {
        lsn,
        txid,
        timestamp: ts,
        ops,
    })
}

fn encode_op(buf: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::CreateTable { table, schema, pk } => {
            buf.push(1);
            codec::put_str(buf, table);
            codec::encode_schema(buf, schema);
            codec::put_u16(buf, *pk as u16);
        }
        WalOp::DropTable { table } => {
            buf.push(2);
            codec::put_str(buf, table);
        }
        WalOp::CreateIndex { table, column } => {
            buf.push(3);
            codec::put_str(buf, table);
            codec::put_str(buf, column);
        }
        WalOp::DropIndex { table, column } => {
            buf.push(4);
            codec::put_str(buf, table);
            codec::put_str(buf, column);
        }
        WalOp::Insert { table, row } => {
            buf.push(5);
            codec::put_str(buf, table);
            codec::encode_record(buf, row);
        }
        WalOp::Update {
            table,
            key,
            before,
            after,
        } => {
            buf.push(6);
            codec::put_str(buf, table);
            codec::encode_value(buf, key);
            codec::encode_record(buf, before);
            codec::encode_record(buf, after);
        }
        WalOp::Delete { table, key, before } => {
            buf.push(7);
            codec::put_str(buf, table);
            codec::encode_value(buf, key);
            codec::encode_record(buf, before);
        }
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<WalOp> {
    Ok(match r.u8()? {
        1 => WalOp::CreateTable {
            table: r.str()?,
            schema: codec::decode_schema(r)?,
            pk: r.u16()? as usize,
        },
        2 => WalOp::DropTable { table: r.str()? },
        3 => WalOp::CreateIndex {
            table: r.str()?,
            column: r.str()?,
        },
        4 => WalOp::DropIndex {
            table: r.str()?,
            column: r.str()?,
        },
        5 => WalOp::Insert {
            table: r.str()?,
            row: codec::decode_record(r)?,
        },
        6 => WalOp::Update {
            table: r.str()?,
            key: codec::decode_value(r)?,
            before: codec::decode_record(r)?,
            after: codec::decode_record(r)?,
        },
        7 => WalOp::Delete {
            table: r.str()?,
            key: codec::decode_value(r)?,
            before: codec::decode_record(r)?,
        },
        tag => return Err(Error::Corruption(format!("unknown wal op tag {tag}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert {
                table: "t".into(),
                row: Record::from_iter([1i64, 2]),
            },
            WalOp::Update {
                table: "t".into(),
                key: Value::Int(1),
                before: Record::from_iter([1i64, 2]),
                after: Record::from_iter([1i64, 3]),
            },
            WalOp::Delete {
                table: "t".into(),
                key: Value::Int(1),
                before: Record::from_iter([1i64, 3]),
            },
        ]
    }

    #[test]
    fn memory_append_and_read() {
        let mut wal = Wal::in_memory(SyncPolicy::Never);
        let l1 = wal.append(7, TimestampMs(1), &sample_ops()).unwrap();
        let l2 = wal.append(8, TimestampMs(2), &[]).unwrap();
        assert_eq!((l1, l2), (1, 2));
        let recs = wal.read_all().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].txid, 7);
        assert_eq!(recs[0].ops, sample_ops());
        assert_eq!(wal.read_after(1).unwrap().len(), 1);
        assert_eq!(wal.next_lsn(), 3);
    }

    #[test]
    fn file_round_trip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("evdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test-reopen.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(1, TimestampMs(1), &sample_ops()).unwrap();
            wal.append(2, TimestampMs(2), &sample_ops()).unwrap();
            assert_eq!(wal.sync_count(), 2);
        }
        let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(wal.next_lsn(), 3);
        assert_eq!(wal.read_all().unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = std::env::temp_dir().join(format!("evdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test-torn.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(1, TimestampMs(1), &sample_ops()).unwrap();
            wal.append(2, TimestampMs(2), &sample_ops()).unwrap();
        }
        // Simulate a crash mid-write of a third record.
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.len();
        bytes.extend_from_slice(&[42u8; 5]); // garbage partial frame
        std::fs::write(&path, &bytes).unwrap();

        let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 2);
        assert_eq!(wal.len_bytes(), full as u64); // trimmed back
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_middle_stops_scan() {
        let mut wal = Wal::in_memory(SyncPolicy::Never);
        wal.append(1, TimestampMs(1), &sample_ops()).unwrap();
        wal.append(2, TimestampMs(2), &sample_ops()).unwrap();
        // Flip a byte inside the first record's payload.
        if let Backend::Mem(buf) = &wal.backend {
            buf.write()[10] ^= 0xFF;
        }
        assert_eq!(wal.read_all().unwrap().len(), 0);
    }

    #[test]
    fn group_commit_policy_syncs_every_n() {
        let mut wal = Wal::in_memory(SyncPolicy::EveryN(3));
        for i in 0..7 {
            wal.append(i, TimestampMs(i as i64), &[]).unwrap();
        }
        assert_eq!(wal.sync_count(), 2); // after 3 and 6
    }

    #[test]
    fn truncate_preserves_lsn_continuity() {
        let mut wal = Wal::in_memory(SyncPolicy::Never);
        wal.append(1, TimestampMs(0), &[]).unwrap();
        wal.append(2, TimestampMs(0), &[]).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        let lsn = wal.append(3, TimestampMs(0), &[]).unwrap();
        assert_eq!(lsn, 3);
        assert_eq!(wal.read_all().unwrap().len(), 1);
    }

    #[test]
    fn injected_tear_is_trimmed_on_reopen() {
        use evdb_faults::IoFault;
        let dir = std::env::temp_dir().join(format!("evdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test-fault-tear.wal");
        let _ = std::fs::remove_file(&path);
        let injector = FaultInjector::new(5);
        let clean_len;
        {
            let mut wal =
                Wal::open_with(&path, SyncPolicy::Always, Some(Arc::clone(&injector))).unwrap();
            wal.append(1, TimestampMs(1), &sample_ops()).unwrap();
            wal.append(2, TimestampMs(2), &sample_ops()).unwrap();
            clean_len = wal.len_bytes();
            injector.arm(0, IoFault::TornWrite);
            let err = wal.append(3, TimestampMs(3), &sample_ops()).unwrap_err();
            assert!(FaultInjector::is_crash(&err), "{err}");
            // Post-crash, every durable op keeps failing.
            assert!(wal.append(4, TimestampMs(4), &[]).is_err());
        }
        let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 2);
        assert_eq!(wal.len_bytes(), clean_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_bit_flip_is_detected_on_reopen() {
        use evdb_faults::IoFault;
        let dir = std::env::temp_dir().join(format!("evdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test-fault-flip.wal");
        let _ = std::fs::remove_file(&path);
        let injector = FaultInjector::new(6);
        {
            let mut wal =
                Wal::open_with(&path, SyncPolicy::Always, Some(Arc::clone(&injector))).unwrap();
            wal.append(1, TimestampMs(1), &sample_ops()).unwrap();
            injector.arm(0, IoFault::BitFlip);
            assert!(wal.append(2, TimestampMs(2), &sample_ops()).is_err());
        }
        // The flipped frame was fully written but must never be accepted.
        let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 1);
        assert!(!wal.tail_status().is_clean(), "{}", wal.tail_status());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_segment_syncs_directory_once() {
        use evdb_faults::IoFault;
        let dir = std::env::temp_dir().join(format!(
            "evdb-wal-dirsync-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.wal");
        let injector = FaultInjector::new(7);
        // Creation hits the dirsync fault site...
        drop(Wal::open_with(&path, SyncPolicy::Always, Some(Arc::clone(&injector))).unwrap());
        assert_eq!(injector.point_count("wal.open.dirsync"), 1);
        // ...reopening an existing segment does not.
        drop(Wal::open_with(&path, SyncPolicy::Always, Some(Arc::clone(&injector))).unwrap());
        assert_eq!(injector.point_count("wal.open.dirsync"), 1);
        // A crash at the dirsync point fails the open; a retry recovers.
        std::fs::remove_file(&path).unwrap();
        injector.arm(0, IoFault::PowerCut);
        assert!(Wal::open_with(&path, SyncPolicy::Always, Some(Arc::clone(&injector))).is_err());
        injector.heal();
        drop(Wal::open_with(&path, SyncPolicy::Always, Some(injector)).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_buffer_reports_tail_kinds() {
        let mut wal = Wal::in_memory(SyncPolicy::Never);
        wal.append(1, TimestampMs(1), &sample_ops()).unwrap();
        let bytes = match &wal.backend {
            Backend::Mem(buf) => buf.read().clone(),
            _ => unreachable!(),
        };
        let (recs, len, tail) = scan_buffer(&bytes);
        assert_eq!((recs.len(), len, tail), (1, bytes.len(), WalTail::Clean));

        let mut torn = bytes.clone();
        torn.extend_from_slice(&[9, 9, 9]);
        let (_, len, tail) = scan_buffer(&torn);
        assert_eq!(tail, WalTail::TornFrame { offset: len });

        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let (recs, _, tail) = scan_buffer(&flipped);
        assert!(recs.is_empty());
        assert_eq!(tail, WalTail::BadCrc { offset: 0 });

        // A zero-filled page parses as an empty frame whose CRC vacuously
        // matches (crc32("") == 0) but whose payload cannot decode.
        let zeros = vec![0u8; 4096];
        let (recs, len, tail) = scan_buffer(&zeros);
        assert!(recs.is_empty());
        assert_eq!(len, 0);
        assert!(matches!(tail, WalTail::BadRecord { offset: 0, .. }), "{tail}");
    }

    #[test]
    fn ddl_ops_round_trip() {
        let schema = Schema::of(&[("id", evdb_types::DataType::Int)]);
        let mut wal = Wal::in_memory(SyncPolicy::Never);
        wal.append(
            1,
            TimestampMs(0),
            &[
                WalOp::CreateTable {
                    table: "t".into(),
                    schema: Arc::clone(&schema),
                    pk: 0,
                },
                WalOp::CreateIndex {
                    table: "t".into(),
                    column: "id".into(),
                },
                WalOp::DropIndex {
                    table: "t".into(),
                    column: "id".into(),
                },
                WalOp::DropTable { table: "t".into() },
            ],
        )
        .unwrap();
        let recs = wal.read_all().unwrap();
        assert_eq!(recs[0].ops.len(), 4);
        match &recs[0].ops[0] {
            WalOp::CreateTable { schema: s, pk, .. } => {
                assert_eq!(**s, *schema);
                assert_eq!(*pk, 0);
            }
            other => panic!("{other:?}"),
        }
    }
}
