//! Row-level triggers — capture mechanism (i) of the tutorial's §2.2.a.
//!
//! A trigger names a table, a timing (BEFORE/AFTER), the operations it
//! fires on, an optional `WHEN` predicate over the affected row, and an
//! action callback. BEFORE triggers run inside the operation and may veto
//! it by returning an error (the transaction op fails); AFTER triggers run
//! once the row change has been applied, still inside the transaction —
//! which is precisely why trigger capture has the lowest latency and the
//! highest commit-path cost of the three mechanisms (experiment E1).

use std::fmt;
use std::sync::Arc;

use evdb_expr::{CompiledExpr, Expr};
use evdb_types::{Result, Schema};

use crate::change::{ChangeEvent, ChangeKind};

/// When the trigger fires relative to the row operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerTiming {
    /// Before the change is applied; an `Err` from the action vetoes it.
    Before,
    /// After the change is applied (still pre-commit).
    After,
}

/// Which operations a trigger listens to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TriggerOps {
    /// Fire on INSERT.
    pub insert: bool,
    /// Fire on UPDATE.
    pub update: bool,
    /// Fire on DELETE.
    pub delete: bool,
}

impl TriggerOps {
    /// Fire on every operation.
    pub const ALL: TriggerOps = TriggerOps {
        insert: true,
        update: true,
        delete: true,
    };

    /// Fire on inserts only.
    pub const INSERT: TriggerOps = TriggerOps {
        insert: true,
        update: false,
        delete: false,
    };

    /// Fire on updates only.
    pub const UPDATE: TriggerOps = TriggerOps {
        insert: false,
        update: true,
        delete: false,
    };

    /// Fire on deletes only.
    pub const DELETE: TriggerOps = TriggerOps {
        insert: false,
        update: false,
        delete: true,
    };

    /// Does this mask include `kind`?
    pub fn includes(self, kind: ChangeKind) -> bool {
        match kind {
            ChangeKind::Insert => self.insert,
            ChangeKind::Update => self.update,
            ChangeKind::Delete => self.delete,
        }
    }
}

/// The callback type for trigger actions.
pub type TriggerAction = Arc<dyn Fn(&ChangeEvent) -> Result<()> + Send + Sync>;

/// A registered trigger.
pub struct TriggerDef {
    /// Unique trigger name.
    pub name: String,
    /// Table the trigger watches.
    pub table: String,
    /// BEFORE or AFTER.
    pub timing: TriggerTiming,
    /// Operation mask.
    pub ops: TriggerOps,
    /// Optional WHEN predicate over the row image (the new image for
    /// insert/update, the old image for delete).
    pub when: Option<Expr>,
    /// Predicate bound against the table schema and compiled to bytecode
    /// at registration time.
    pub(crate) when_bound: Option<CompiledExpr>,
    /// The action to run.
    pub action: TriggerAction,
}

impl fmt::Debug for TriggerDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TriggerDef")
            .field("name", &self.name)
            .field("table", &self.table)
            .field("timing", &self.timing)
            .field("ops", &self.ops)
            .field("when", &self.when.as_ref().map(|e| e.to_string()))
            .finish()
    }
}

impl TriggerDef {
    /// Build a trigger, binding the WHEN predicate against the table
    /// schema immediately so misconfigured triggers fail at registration,
    /// not at first fire.
    pub fn new(
        name: impl Into<String>,
        table: impl Into<String>,
        timing: TriggerTiming,
        ops: TriggerOps,
        when: Option<Expr>,
        schema: &Schema,
        action: TriggerAction,
    ) -> Result<TriggerDef> {
        let when_bound = match &when {
            Some(e) => Some(CompiledExpr::compile(&e.bind_predicate(schema)?)),
            None => None,
        };
        Ok(TriggerDef {
            name: name.into(),
            table: table.into(),
            timing,
            ops,
            when,
            when_bound,
            action,
        })
    }

    /// Should this trigger fire for the given change? Evaluates the
    /// operation mask and the WHEN predicate (NULL ⇒ no fire).
    pub fn applies(&self, event: &ChangeEvent) -> Result<bool> {
        if !self.ops.includes(event.kind) {
            return Ok(false);
        }
        match &self.when_bound {
            None => Ok(true),
            Some(pred) => pred.matches(event.row()),
        }
    }

    /// Fire the action.
    pub fn fire(&self, event: &ChangeEvent) -> Result<()> {
        (self.action)(event)
    }

    /// Batched form of [`applies`](Self::applies): `out[i]` equals
    /// `applies(&events[i])`, with the WHEN predicate verified for the
    /// whole batch through the batch VM (D15). Row-op fires inside a
    /// transaction stay per-event (BEFORE triggers veto mid-flight);
    /// this entry point serves capture-style screening where a drained
    /// change batch is tested against one trigger.
    pub fn applies_batch(
        &self,
        events: &[ChangeEvent],
        scratch: &mut evdb_expr::BatchScratch,
        out: &mut Vec<Result<bool>>,
    ) {
        match &self.when_bound {
            None => {
                out.clear();
                out.extend(events.iter().map(|ev| Ok(self.ops.includes(ev.kind))));
            }
            Some(pred) => {
                pred.matches_batch(events, |ev| ev.row(), scratch, out);
                for (ev, v) in events.iter().zip(out.iter_mut()) {
                    if !self.ops.includes(ev.kind) {
                        *v = Ok(false);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;
    use evdb_types::{DataType, Record, TimestampMs, Trace, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn event(kind: ChangeKind, px: f64) -> ChangeEvent {
        let schema = Schema::of(&[("id", DataType::Int), ("px", DataType::Float)]);
        let row = Record::from_iter([Value::Int(1), Value::Float(px)]);
        ChangeEvent {
            table: Arc::from("t"),
            kind,
            key: Value::Int(1),
            before: matches!(kind, ChangeKind::Update | ChangeKind::Delete).then(|| row.clone()),
            after: matches!(kind, ChangeKind::Insert | ChangeKind::Update).then(|| row.clone()),
            txid: 1,
            lsn: None,
            timestamp: TimestampMs(0),
            schema,
            trace: Trace::begin(TimestampMs(0)),
        }
    }

    #[test]
    fn ops_mask_and_when_predicate() {
        let schema = Schema::of(&[("id", DataType::Int), ("px", DataType::Float)]);
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&fired);
        let trig = TriggerDef::new(
            "hi_px",
            "t",
            TriggerTiming::After,
            TriggerOps::INSERT,
            Some(parse("px > 100").unwrap()),
            &schema,
            Arc::new(move |_| {
                f2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
        )
        .unwrap();

        assert!(trig.applies(&event(ChangeKind::Insert, 150.0)).unwrap());
        assert!(!trig.applies(&event(ChangeKind::Insert, 50.0)).unwrap());
        assert!(!trig.applies(&event(ChangeKind::Update, 150.0)).unwrap());
        trig.fire(&event(ChangeKind::Insert, 150.0)).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn applies_batch_matches_per_event() {
        let schema = Schema::of(&[("id", DataType::Int), ("px", DataType::Float)]);
        let trig = TriggerDef::new(
            "hi_px",
            "t",
            TriggerTiming::After,
            TriggerOps::INSERT,
            Some(parse("px > 100").unwrap()),
            &schema,
            Arc::new(|_| Ok(())),
        )
        .unwrap();
        let events = vec![
            event(ChangeKind::Insert, 150.0),
            event(ChangeKind::Insert, 50.0),
            event(ChangeKind::Update, 150.0), // masked out
            event(ChangeKind::Delete, 150.0), // masked out
        ];
        let mut scratch = evdb_expr::BatchScratch::new();
        let mut out = Vec::new();
        trig.applies_batch(&events, &mut scratch, &mut out);
        let got: Vec<bool> = out.into_iter().map(|r| r.unwrap()).collect();
        let want: Vec<bool> = events.iter().map(|e| trig.applies(e).unwrap()).collect();
        assert_eq!(got, want);
        assert_eq!(got, vec![true, false, false, false]);

        // No WHEN: pure ops-mask screening.
        let all = TriggerDef::new(
            "all",
            "t",
            TriggerTiming::After,
            TriggerOps::ALL,
            None,
            &schema,
            Arc::new(|_| Ok(())),
        )
        .unwrap();
        let mut out = Vec::new();
        all.applies_batch(&events, &mut scratch, &mut out);
        assert!(out.into_iter().all(|r| r.unwrap()));
    }

    #[test]
    fn bad_when_fails_at_registration() {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let r = TriggerDef::new(
            "bad",
            "t",
            TriggerTiming::Before,
            TriggerOps::ALL,
            Some(parse("ghost = 1").unwrap()),
            &schema,
            Arc::new(|_| Ok(())),
        );
        assert!(r.is_err());
    }

    #[test]
    fn delete_uses_before_image() {
        let schema = Schema::of(&[("id", DataType::Int), ("px", DataType::Float)]);
        let trig = TriggerDef::new(
            "d",
            "t",
            TriggerTiming::After,
            TriggerOps::DELETE,
            Some(parse("px > 100").unwrap()),
            &schema,
            Arc::new(|_| Ok(())),
        )
        .unwrap();
        assert!(trig.applies(&event(ChangeKind::Delete, 150.0)).unwrap());
        assert!(!trig.applies(&event(ChangeKind::Delete, 50.0)).unwrap());
    }
}
