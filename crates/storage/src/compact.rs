//! Background compaction for the segment store (DESIGN.md D14).
//!
//! Freezing produces many small segments; queries then pay per-segment
//! fixed costs (open, CRC, zone directory) even when pruning works. The
//! compactor merges **seq-adjacent runs of small segments** into larger
//! ones under [`CompactionPolicy`]. The merge itself is
//! [`SegmentStore::compact_segments`] — crash-safe via the manifest
//! commit point — so the policy layer here is pure selection logic plus
//! an optional background thread.
//!
//! Invariants (asserted by the torture harness, E12-style):
//!
//! | invariant                  | why it holds                            |
//! |----------------------------|------------------------------------------|
//! | no event lost              | merged segment written+fsynced before    |
//! |                            | the manifest drops its inputs            |
//! | no event duplicated        | inputs removed in the same manifest      |
//! |                            | commit that adds the merged segment      |
//! | seq ranges stay disjoint   | only seq-adjacent runs merge             |
//! | replay order unchanged     | seq column is carried through the merge  |

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use evdb_types::Result;

use crate::segment::{SegmentMeta, SegmentStore};

/// When and what to compact.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Compact only when more than this many live segments exist.
    pub max_segments: usize,
    /// Segments at or under this row count are "small" (merge fodder).
    pub small_rows: u64,
    /// Most segments merged in one step (bounds the rewrite).
    pub max_merge: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_segments: 8,
            small_rows: 1 << 16,
            max_merge: 8,
        }
    }
}

impl CompactionPolicy {
    /// Choose the next run to merge: the longest run (up to
    /// `max_merge`) of seq-adjacent small segments, smallest-first by
    /// total rows among candidates. `None` when the store is within
    /// policy. Pure function of the metas — deterministic and testable.
    pub fn pick_run(&self, metas: &[SegmentMeta]) -> Option<Vec<u64>> {
        if metas.len() <= self.max_segments {
            return None;
        }
        // Metas arrive in seq order. Slide a window over small segments
        // and keep the cheapest eligible run.
        let mut best: Option<(u64, Vec<u64>)> = None;
        let mut run: Vec<(u64, u64)> = Vec::new(); // (seq_min, rows)
        let consider = |run: &[(u64, u64)], best: &mut Option<(u64, Vec<u64>)>| {
            if run.len() < 2 {
                return;
            }
            for window in run.windows(run.len().min(self.max_merge)) {
                if window.len() < 2 {
                    continue;
                }
                let total: u64 = window.iter().map(|(_, r)| r).sum();
                let keys: Vec<u64> = window.iter().map(|(k, _)| *k).collect();
                if best.as_ref().is_none_or(|(t, _)| total < *t) {
                    *best = Some((total, keys));
                }
            }
        };
        for m in metas {
            if m.rows <= self.small_rows {
                run.push((m.seq_min, m.rows));
            } else {
                consider(&run, &mut best);
                run.clear();
            }
        }
        consider(&run, &mut best);
        best.map(|(_, keys)| keys)
    }
}

/// Run one policy-selected compaction step; returns whether a merge
/// happened. Call in a loop (or via [`Compactor`]) to converge.
pub fn compact_once(store: &SegmentStore, policy: &CompactionPolicy) -> Result<bool> {
    match policy.pick_run(&store.segment_metas()) {
        Some(run) => {
            store.compact_segments(&run)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

/// A background compaction thread over one store. Dropping the handle
/// stops the thread.
pub struct Compactor {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Compactor {
    /// Spawn a thread that applies `policy` every `interval`. Errors are
    /// retried next tick (a fault-injected merge leaves the store
    /// consistent; the policy will pick the run again).
    pub fn spawn(
        store: Arc<SegmentStore>,
        policy: CompactionPolicy,
        interval: Duration,
    ) -> Compactor {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("evdb-compactor".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    // Converge fully each tick, then sleep.
                    while !flag.load(Ordering::Relaxed) {
                        match compact_once(&store, &policy) {
                            Ok(true) => continue,
                            _ => break,
                        }
                    }
                    let mut waited = Duration::ZERO;
                    let step = Duration::from_millis(10).min(interval.max(Duration::from_millis(1)));
                    while waited < interval && !flag.load(Ordering::Relaxed) {
                        std::thread::sleep(step);
                        waited += step;
                    }
                }
            })
            .expect("spawn compactor");
        Compactor {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentStoreOptions;
    use evdb_types::{DataType, Record, Schema, TimestampMs, Value};
    use std::fs;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "evdb-compact-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn small_store(dir: &PathBuf) -> SegmentStore {
        let store = SegmentStore::open(
            dir,
            Schema::of(&[("k", DataType::Int)]),
            SegmentStoreOptions {
                freeze_rows: 8,
                zone_rows: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..96u64 {
            store
                .append(
                    i,
                    TimestampMs(i as i64),
                    false,
                    Record::from_iter([Value::Int(i as i64)]),
                )
                .unwrap();
        }
        store
    }

    #[test]
    fn policy_converges_below_max_segments() {
        let dir = tmp("converge");
        let store = small_store(&dir);
        assert_eq!(store.segment_count(), 12);
        let before = store.scan_all().unwrap();
        let policy = CompactionPolicy {
            max_segments: 4,
            small_rows: 1000,
            max_merge: 4,
        };
        let mut merges = 0;
        while compact_once(&store, &policy).unwrap() {
            merges += 1;
            assert!(merges < 64, "compaction did not converge");
        }
        assert!(store.segment_count() <= 4, "{}", store.segment_count());
        assert_eq!(store.scan_all().unwrap(), before);
        assert_eq!(store.stats_snapshot().compactions, merges);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn policy_is_a_noop_within_bounds() {
        let dir = tmp("noop");
        let store = small_store(&dir);
        let policy = CompactionPolicy {
            max_segments: 100,
            ..Default::default()
        };
        assert!(!compact_once(&store, &policy).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_compactor_runs_and_stops() {
        let dir = tmp("bg");
        let store = Arc::new(small_store(&dir));
        let before = store.scan_all().unwrap();
        let policy = CompactionPolicy {
            max_segments: 3,
            small_rows: 1000,
            max_merge: 8,
        };
        let compactor = Compactor::spawn(Arc::clone(&store), policy, Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while store.segment_count() > 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        compactor.stop();
        assert!(store.segment_count() <= 3, "{}", store.segment_count());
        assert_eq!(store.scan_all().unwrap(), before);
        fs::remove_dir_all(&dir).unwrap();
    }
}
