//! Columnar segment codec for the historical event store (DESIGN.md D14).
//!
//! A **segment** is the immutable on-disk unit of the per-stream history
//! store ([`crate::segment`]): a batch of stored events laid out
//! column-major in fixed-size **zones**, each zone carrying per-column
//! min/max statistics plus temporal and sequence bounds. Queries prune at
//! two levels — whole segments via manifest-resident [`ColumnStats`]
//! (no file read at all), then zones inside a surviving segment (no row
//! decode for a pruned zone). Layout, little-endian throughout:
//!
//! ```text
//! segment := magic "EVSG" | version:u16 | schema | zone_rows:u32
//!            | zone_count:u32 | zone* | crc32:u32 (over all prior bytes)
//! zone    := rows:u32 | seq_min:u64 | seq_max:u64 | ts_min:i64 | ts_max:i64
//!            | colstats* (one per payload column)
//!            | body_len:u32 | body
//! body    := seq:u64* | id:u64* | ts:i64* | retract_bits:u8*
//!            | column* (values, tagged codec encoding)
//! colstats:= present:u8 | [min value | max value] | nulls:u32
//! ```
//!
//! **Pruning soundness.** Zone min/max are computed with
//! [`Value::sql_cmp`] over non-null values only; a constraint never
//! accepts NULL ([`Constraint::accepts`]), so ignoring nulls cannot hide
//! a match. Whenever a comparison is undefined (cross-kind operands, a
//! column with no comparable values), stats are recorded as absent and
//! the zone is scanned — pruning only ever skips data the constraint
//! provably rejects. The residual (non-analyzable) part of a predicate
//! never prunes; it is evaluated on decoded rows.

use std::sync::Arc;

use evdb_expr::analysis::Bound;
use evdb_expr::Constraint;
use evdb_types::{Error, Record, Result, Schema, TimestampMs, Value};

use crate::codec::{
    self, decode_schema, decode_value, encode_schema, encode_value, put_u16, put_u32, put_u64,
    Reader,
};
use crate::crc::crc32;

/// Segment file magic: "EVSG".
pub const SEGMENT_MAGIC: u32 = 0x4756_5345;
/// Current segment format version.
pub const SEGMENT_VERSION: u16 = 1;
/// Default rows per zone.
pub const DEFAULT_ZONE_ROWS: usize = 256;

/// One event as held by the history store: the stream event plus the
/// store's own monotone sequence number (original arrival order — the
/// REPLAY order, which may differ from timestamp order).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEvent {
    /// Store-assigned arrival sequence (monotone per stream, never
    /// reused; segments cover disjoint seq ranges).
    pub seq: u64,
    /// The original event id.
    pub id: u64,
    /// Event time.
    pub timestamp: TimestampMs,
    /// Retraction flag (replay must reproduce deltas sign-exact).
    pub retraction: bool,
    /// The payload tuple (matches the store's schema).
    pub payload: Record,
}

/// Min/max + null accounting for one column over one zone or segment.
/// `bounds: None` means "no usable statistics" (all-null column, or
/// values that are not totally ordered under [`Value::sql_cmp`]) — such
/// a column never prunes.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// (min, max) over non-null values, when comparable.
    pub bounds: Option<(Value, Value)>,
    /// Number of NULLs in the range.
    pub nulls: u32,
}

impl ColumnStats {
    /// Compute stats over one column of a row batch.
    pub fn compute<'a>(values: impl Iterator<Item = &'a Value>) -> ColumnStats {
        let mut nulls = 0u32;
        let mut bounds: Option<(Value, Value)> = None;
        let mut comparable = true;
        for v in values {
            if v.is_null() {
                nulls += 1;
                continue;
            }
            if !comparable {
                continue;
            }
            bounds = match bounds.take() {
                None => Some((v.clone(), v.clone())),
                Some((lo, hi)) => {
                    match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                        (Some(cl), Some(ch)) => Some((
                            if cl == std::cmp::Ordering::Less { v.clone() } else { lo },
                            if ch == std::cmp::Ordering::Greater { v.clone() } else { hi },
                        )),
                        // Cross-kind value in one column: statistics are
                        // unreliable, drop them (scan, never mis-prune).
                        _ => {
                            comparable = false;
                            None
                        }
                    }
                }
            };
        }
        if !comparable {
            bounds = None;
        }
        ColumnStats { bounds, nulls }
    }

    /// Merge two ranges' stats (compaction folds zone stats upward).
    pub fn merge(&self, other: &ColumnStats) -> ColumnStats {
        let bounds = match (&self.bounds, &other.bounds) {
            (Some((alo, ahi)), Some((blo, bhi))) => {
                match (alo.sql_cmp(blo), ahi.sql_cmp(bhi)) {
                    (Some(cl), Some(ch)) => Some((
                        if cl == std::cmp::Ordering::Greater { blo.clone() } else { alo.clone() },
                        if ch == std::cmp::Ordering::Less { bhi.clone() } else { ahi.clone() },
                    )),
                    _ => None,
                }
            }
            (Some(b), None) | (None, Some(b)) => Some(b.clone()),
            (None, None) => None,
        };
        ColumnStats {
            bounds,
            nulls: self.nulls + other.nulls,
        }
    }

    /// Could a value satisfying `c` exist in this range? `false` is a
    /// proof of absence (the pruning decision); `true` means "scan".
    pub fn may_match(&self, c: &Constraint) -> bool {
        let Some((min, max)) = &self.bounds else {
            // No non-null comparable values. Constraints never accept
            // NULL, so an all-null column provably has no match; absent
            // stats for any other reason must scan.
            return self.nulls == 0 || self.bounds.is_some();
        };
        use std::cmp::Ordering::*;
        match c {
            Constraint::Eq { value, .. } => match (value.sql_cmp(min), value.sql_cmp(max)) {
                (Some(cl), Some(ch)) => cl != Less && ch != Greater,
                _ => true, // incomparable: cannot prove absence
            },
            Constraint::In { values, .. } => values.iter().any(|v| {
                match (v.sql_cmp(min), v.sql_cmp(max)) {
                    (Some(cl), Some(ch)) => cl != Less && ch != Greater,
                    _ => true,
                }
            }),
            Constraint::Range { low, high, .. } => {
                if let Some(Bound { value, inclusive }) = high {
                    // Need some x in [min,max] with x < value (or <=).
                    match value.sql_cmp(min) {
                        Some(Less) => return false,
                        Some(Equal) if !inclusive => return false,
                        None => return true,
                        _ => {}
                    }
                }
                if let Some(Bound { value, inclusive }) = low {
                    match value.sql_cmp(max) {
                        Some(Greater) => return false,
                        Some(Equal) if !inclusive => return false,
                        None => return true,
                        _ => {}
                    }
                }
                true
            }
        }
    }
}

/// Encode one column's stats.
fn encode_stats(buf: &mut Vec<u8>, s: &ColumnStats) {
    match &s.bounds {
        Some((lo, hi)) => {
            buf.push(1);
            encode_value(buf, lo);
            encode_value(buf, hi);
        }
        None => buf.push(0),
    }
    put_u32(buf, s.nulls);
}

pub(crate) fn decode_stats(r: &mut Reader<'_>) -> Result<ColumnStats> {
    let bounds = match r.u8()? {
        0 => None,
        1 => {
            let lo = decode_value(r)?;
            let hi = decode_value(r)?;
            Some((lo, hi))
        }
        t => return Err(Error::Corruption(format!("bad colstats tag {t}"))),
    };
    let nulls = r.u32()?;
    Ok(ColumnStats { bounds, nulls })
}

/// Per-zone metadata: bounds plus the byte range of the (still encoded)
/// zone body inside the segment buffer.
#[derive(Debug, Clone)]
pub struct ZoneMeta {
    /// Rows in the zone.
    pub rows: usize,
    /// Sequence bounds (inclusive).
    pub seq_min: u64,
    /// Sequence bounds (inclusive).
    pub seq_max: u64,
    /// Event-time bounds (inclusive).
    pub ts_min: TimestampMs,
    /// Event-time bounds (inclusive).
    pub ts_max: TimestampMs,
    /// Per payload column statistics.
    pub stats: Vec<ColumnStats>,
    /// Body byte range in the decoded segment buffer.
    body: (usize, usize),
}

impl ZoneMeta {
    /// Zone-level pruning decision for an analyzed predicate: every
    /// constraint must be *possibly* satisfiable for the zone to survive
    /// (constraints are conjunctive).
    pub fn may_match(&self, schema: &Schema, constraints: &[Constraint]) -> bool {
        constraints.iter().all(|c| match schema.index_of(c.field()) {
            Some(i) => self.stats[i].may_match(c),
            None => true,
        })
    }
}

/// A decoded (but lazily materialized) segment: schema, zone directory
/// and the raw buffer. Produced by [`decode_segment`]; rows are only
/// decoded per zone via [`Segment::decode_zone`].
#[derive(Debug, Clone)]
pub struct Segment {
    /// Payload schema.
    pub schema: Arc<Schema>,
    /// Rows per full zone (last zone may be short).
    pub zone_rows: usize,
    /// Zone directory.
    pub zones: Vec<ZoneMeta>,
    buf: Arc<Vec<u8>>,
}

impl Segment {
    /// Total rows.
    pub fn rows(&self) -> usize {
        self.zones.iter().map(|z| z.rows).sum()
    }

    /// Decode every row of one zone.
    pub fn decode_zone(&self, zi: usize) -> Result<Vec<StoredEvent>> {
        let z = &self.zones[zi];
        decode_zone_rows(&self.schema, z.rows, &self.buf[z.body.0..z.body.1])
    }

    /// Decode every row of the segment (the row-scan baseline).
    pub fn decode_all(&self) -> Result<Vec<StoredEvent>> {
        let mut out = Vec::with_capacity(self.rows());
        for zi in 0..self.zones.len() {
            out.extend(self.decode_zone(zi)?);
        }
        Ok(out)
    }
}

/// Decode `n` rows from one zone's body bytes — shared by the
/// whole-buffer [`Segment::decode_zone`] and the segment store's
/// chunked-read scan path, which fetches one zone body at a time.
pub(crate) fn decode_zone_rows(schema: &Schema, n: usize, body: &[u8]) -> Result<Vec<StoredEvent>> {
    let mut r = Reader::new(body);
    let mut seqs = Vec::with_capacity(n);
    for _ in 0..n {
        seqs.push(r.u64()?);
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.u64()?);
    }
    let mut ts = Vec::with_capacity(n);
    for _ in 0..n {
        ts.push(r.i64()?);
    }
    let mut retract = Vec::with_capacity(n);
    for i in 0..n {
        if i % 8 == 0 {
            retract.push(r.u8()?);
        }
    }
    let bit = |i: usize| retract[i / 8] >> (i % 8) & 1 == 1;
    // Column-major payload values.
    let ncols = schema.len();
    let mut cols: Vec<Vec<Value>> = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let mut col = Vec::with_capacity(n);
        for _ in 0..n {
            col.push(decode_value(&mut r)?);
        }
        cols.push(col);
    }
    if !r.is_empty() {
        return Err(Error::Corruption("trailing bytes in zone body".into()));
    }
    let mut out = Vec::with_capacity(n);
    for i in (0..n).rev() {
        let values: Vec<Value> = cols.iter_mut().map(|c| c.pop().expect("len")).collect();
        out.push((i, values));
    }
    out.reverse();
    Ok(out
        .into_iter()
        .map(|(i, values)| StoredEvent {
            seq: seqs[i],
            id: ids[i],
            timestamp: TimestampMs(ts[i]),
            retraction: bit(i),
            payload: Record::new(values),
        })
        .collect())
}

/// Encode a batch of rows into a segment buffer. Rows are written in the
/// order given — the store sorts by event time (stable by seq) before
/// freezing, so zones are temporally tight; the seq column preserves the
/// original arrival order for REPLAY.
pub fn encode_segment(schema: &Schema, rows: &[StoredEvent], zone_rows: usize) -> Vec<u8> {
    let zone_rows = zone_rows.max(1);
    let mut buf = Vec::with_capacity(rows.len() * 32 + 128);
    put_u32(&mut buf, SEGMENT_MAGIC);
    put_u16(&mut buf, SEGMENT_VERSION);
    encode_schema(&mut buf, schema);
    put_u32(&mut buf, zone_rows as u32);
    let nzones = rows.len().div_ceil(zone_rows);
    put_u32(&mut buf, nzones as u32);
    for chunk in rows.chunks(zone_rows) {
        put_u32(&mut buf, chunk.len() as u32);
        put_u64(&mut buf, chunk.iter().map(|e| e.seq).min().unwrap_or(0));
        put_u64(&mut buf, chunk.iter().map(|e| e.seq).max().unwrap_or(0));
        codec::put_i64(
            &mut buf,
            chunk.iter().map(|e| e.timestamp.0).min().unwrap_or(0),
        );
        codec::put_i64(
            &mut buf,
            chunk.iter().map(|e| e.timestamp.0).max().unwrap_or(0),
        );
        for ci in 0..schema.len() {
            let stats =
                ColumnStats::compute(chunk.iter().filter_map(|e| e.payload.get(ci)));
            encode_stats(&mut buf, &stats);
        }
        // Body, length-prefixed so pruned zones are skipped wholesale.
        let mut body = Vec::with_capacity(chunk.len() * 24);
        for e in chunk {
            put_u64(&mut body, e.seq);
        }
        for e in chunk {
            put_u64(&mut body, e.id);
        }
        for e in chunk {
            codec::put_i64(&mut body, e.timestamp.0);
        }
        let mut bits = 0u8;
        for (i, e) in chunk.iter().enumerate() {
            if e.retraction {
                bits |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                body.push(bits);
                bits = 0;
            }
        }
        if !chunk.len().is_multiple_of(8) {
            body.push(bits);
        }
        for ci in 0..schema.len() {
            for e in chunk {
                encode_value(&mut body, e.payload.get(ci).unwrap_or(&Value::Null));
            }
        }
        put_u32(&mut buf, body.len() as u32);
        buf.extend_from_slice(&body);
    }
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

/// Decode a segment buffer (verifying the CRC) into a lazily
/// materialized [`Segment`].
pub fn decode_segment(bytes: Vec<u8>) -> Result<Segment> {
    if bytes.len() < 4 {
        return Err(Error::Corruption("segment shorter than its crc".into()));
    }
    let (data, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(data) != stored {
        return Err(Error::Corruption("segment crc mismatch".into()));
    }
    let buf = Arc::new(bytes);
    let data_len = buf.len() - 4;
    let mut r = Reader::new(&buf[..data_len]);
    if r.u32()? != SEGMENT_MAGIC {
        return Err(Error::Corruption("bad segment magic".into()));
    }
    let version = r.u16()?;
    if version != SEGMENT_VERSION {
        return Err(Error::Corruption(format!(
            "unsupported segment version {version}"
        )));
    }
    let schema = decode_schema(&mut r)?;
    let zone_rows = r.u32()? as usize;
    let nzones = r.u32()? as usize;
    let mut zones = Vec::with_capacity(nzones);
    for _ in 0..nzones {
        let rows = r.u32()? as usize;
        let seq_min = r.u64()?;
        let seq_max = r.u64()?;
        let ts_min = TimestampMs(r.i64()?);
        let ts_max = TimestampMs(r.i64()?);
        let mut stats = Vec::with_capacity(schema.len());
        for _ in 0..schema.len() {
            stats.push(decode_stats(&mut r)?);
        }
        let body_len = r.u32()? as usize;
        let start = data_len - r.remaining();
        if r.remaining() < body_len {
            return Err(Error::Corruption("zone body truncated".into()));
        }
        // Skip the body; decode_zone re-reads it on demand.
        r.skip(body_len)?;
        zones.push(ZoneMeta {
            rows,
            seq_min,
            seq_max,
            ts_min,
            ts_max,
            stats,
            body: (start, start + body_len),
        });
    }
    if !r.is_empty() {
        return Err(Error::Corruption("trailing bytes after zones".into()));
    }
    Ok(Segment {
        schema,
        zone_rows,
        zones,
        buf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_types::DataType;

    fn schema() -> Arc<Schema> {
        Schema::of(&[("k", DataType::Int), ("sym", DataType::Str)])
    }

    fn ev(seq: u64, ts: i64, k: i64, sym: &str) -> StoredEvent {
        StoredEvent {
            seq,
            id: seq + 1000,
            timestamp: TimestampMs(ts),
            retraction: seq.is_multiple_of(3),
            payload: Record::from_iter([Value::Int(k), Value::from(sym)]),
        }
    }

    #[test]
    fn segment_round_trips() {
        let s = schema();
        let rows: Vec<StoredEvent> = (0..1000)
            .map(|i| ev(i, i as i64 * 10, (i % 7) as i64, &format!("s{}", i % 5)))
            .collect();
        let bytes = encode_segment(&s, &rows, 64);
        let seg = decode_segment(bytes).unwrap();
        assert_eq!(seg.rows(), 1000);
        assert_eq!(seg.zones.len(), 1000usize.div_ceil(64));
        assert_eq!(seg.decode_all().unwrap(), rows);
    }

    #[test]
    fn corruption_is_detected() {
        let s = schema();
        let rows: Vec<StoredEvent> = (0..10).map(|i| ev(i, i as i64, 1, "x")).collect();
        let mut bytes = encode_segment(&s, &rows, 4);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = decode_segment(bytes).unwrap_err();
        assert_eq!(err.kind(), "corruption");
    }

    #[test]
    fn zone_stats_prune_soundly() {
        let s = schema();
        // Zone 0: k in 0..10, zone 1: k in 100..110.
        let mut rows: Vec<StoredEvent> = (0..10).map(|i| ev(i, i as i64, i as i64, "a")).collect();
        rows.extend((10..20).map(|i| ev(i, i as i64, 90 + i as i64, "b")));
        let bytes = encode_segment(&s, &rows, 10);
        let seg = decode_segment(bytes).unwrap();
        let c = Constraint::Eq {
            field: "k".into(),
            value: Value::Int(105),
        };
        assert!(!seg.zones[0].may_match(&s, std::slice::from_ref(&c)));
        assert!(seg.zones[1].may_match(&s, std::slice::from_ref(&c)));
        // Range 5..8 hits only zone 0.
        let r = Constraint::Range {
            field: "k".into(),
            low: Some(Bound {
                value: Value::Int(5),
                inclusive: true,
            }),
            high: Some(Bound {
                value: Value::Int(8),
                inclusive: true,
            }),
        };
        assert!(seg.zones[0].may_match(&s, std::slice::from_ref(&r)));
        assert!(!seg.zones[1].may_match(&s, std::slice::from_ref(&r)));
    }

    #[test]
    fn all_null_column_prunes_everything_incomparable_scans() {
        let s = Schema::new(vec![evdb_types::FieldDef::nullable("n", DataType::Int)]).unwrap();
        let rows: Vec<StoredEvent> = (0..8)
            .map(|i| StoredEvent {
                seq: i,
                id: i,
                timestamp: TimestampMs(0),
                retraction: false,
                payload: Record::from_iter([Value::Null]),
            })
            .collect();
        let bytes = encode_segment(&s, &rows, 8);
        let seg = decode_segment(bytes).unwrap();
        let c = Constraint::Eq {
            field: "n".into(),
            value: Value::Int(1),
        };
        // Constraints never accept NULL, so an all-null zone is provably
        // empty for any constraint.
        assert!(!seg.zones[0].may_match(&s, std::slice::from_ref(&c)));
    }

    #[test]
    fn stats_merge_widens() {
        let a = ColumnStats {
            bounds: Some((Value::Int(0), Value::Int(5))),
            nulls: 1,
        };
        let b = ColumnStats {
            bounds: Some((Value::Int(3), Value::Int(9))),
            nulls: 2,
        };
        let m = a.merge(&b);
        assert_eq!(m.bounds, Some((Value::Int(0), Value::Int(9))));
        assert_eq!(m.nulls, 3);
    }
}
