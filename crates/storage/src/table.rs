//! Tables: schema-validated row storage with a primary key, secondary
//! indexes and an index-aware `select` path.
//!
//! A table performs *physical* operations only; transactional concerns
//! (undo, WAL, triggers) live in [`crate::txn`]. Rows are kept in a
//! `BTreeMap` ordered by primary key, so PK range predicates scan a
//! contiguous slice.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

use evdb_expr::{analyze, Constraint, Expr};
use evdb_types::{Error, Record, Result, Schema, Value};
use parking_lot::RwLock;

use crate::index::SecondaryIndex;

/// Static description of a table.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Row schema.
    pub schema: Arc<Schema>,
    /// Index of the primary-key column in the schema.
    pub pk: usize,
}

impl TableDef {
    /// Build a definition; the PK column must exist and be non-nullable.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>, pk_column: &str) -> Result<TableDef> {
        let pk = schema
            .index_of(pk_column)
            .ok_or_else(|| Error::Schema(format!("unknown pk column '{pk_column}'")))?;
        if schema.fields()[pk].nullable {
            return Err(Error::Schema(format!(
                "pk column '{pk_column}' must be non-nullable"
            )));
        }
        Ok(TableDef {
            name: name.into(),
            schema,
            pk,
        })
    }
}

struct Inner {
    rows: BTreeMap<Value, Record>,
    indexes: HashMap<String, SecondaryIndex>,
}

/// A table. Interior-locked so `Arc<Table>` can be shared between the
/// transaction layer, capture mechanisms and readers.
pub struct Table {
    def: TableDef,
    inner: RwLock<Inner>,
}

impl Table {
    /// Create an empty table.
    pub fn new(def: TableDef) -> Table {
        Table {
            def,
            inner: RwLock::new(Inner {
                rows: BTreeMap::new(),
                indexes: HashMap::new(),
            }),
        }
    }

    /// The table definition.
    pub fn def(&self) -> &TableDef {
        &self.def
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.def.name
    }

    /// The row schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.def.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extract the primary key from a row.
    pub fn key_of(&self, row: &Record) -> Value {
        row.get(self.def.pk).cloned().unwrap_or(Value::Null)
    }

    /// Physical insert. Validates the schema and PK uniqueness, returns
    /// the normalized row as stored.
    pub fn insert(&self, row: Record) -> Result<Record> {
        let row = self.def.schema.normalize(row)?;
        let key = self.key_of(&row);
        if key.is_null() {
            return Err(Error::Constraint("primary key may not be NULL".into()));
        }
        let mut inner = self.inner.write();
        match inner.rows.entry(key.clone()) {
            Entry::Occupied(_) => Err(Error::Constraint(format!(
                "duplicate primary key {key} in table '{}'",
                self.def.name
            ))),
            Entry::Vacant(e) => {
                e.insert(row.clone());
                for (col, idx) in inner.indexes.iter_mut() {
                    let pos = self.def.schema.index_of(col).expect("indexed column exists");
                    idx.insert(&row.values()[pos], &key);
                }
                Ok(row)
            }
        }
    }

    /// Physical update by key. The new row must keep the same primary key.
    /// Returns `(before, after)`.
    pub fn update(&self, key: &Value, new_row: Record) -> Result<(Record, Record)> {
        let new_row = self.def.schema.normalize(new_row)?;
        if self.key_of(&new_row) != *key {
            return Err(Error::Constraint(
                "update may not change the primary key".into(),
            ));
        }
        let mut inner = self.inner.write();
        let old = inner
            .rows
            .get(key)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("key {key} in table '{}'", self.def.name)))?;
        inner.rows.insert(key.clone(), new_row.clone());
        for (col, idx) in inner.indexes.iter_mut() {
            let pos = self.def.schema.index_of(col).expect("indexed column exists");
            let (ov, nv) = (&old.values()[pos], &new_row.values()[pos]);
            if ov != nv {
                idx.remove(ov, key);
                idx.insert(nv, key);
            }
        }
        Ok((old, new_row))
    }

    /// Physical delete by key; returns the removed row.
    pub fn delete(&self, key: &Value) -> Result<Record> {
        let mut inner = self.inner.write();
        let old = inner
            .rows
            .remove(key)
            .ok_or_else(|| Error::NotFound(format!("key {key} in table '{}'", self.def.name)))?;
        for (col, idx) in inner.indexes.iter_mut() {
            let pos = self.def.schema.index_of(col).expect("indexed column exists");
            idx.remove(&old.values()[pos], key);
        }
        Ok(old)
    }

    /// Point lookup by primary key.
    pub fn get(&self, key: &Value) -> Option<Record> {
        self.inner.read().rows.get(key).cloned()
    }

    /// Full scan in primary-key order.
    pub fn scan(&self) -> Vec<Record> {
        self.inner.read().rows.values().cloned().collect()
    }

    /// Create a secondary index on `column` and backfill it.
    pub fn create_index(&self, column: &str) -> Result<()> {
        let pos = self
            .def
            .schema
            .index_of(column)
            .ok_or_else(|| Error::Schema(format!("unknown column '{column}'")))?;
        let mut inner = self.inner.write();
        if inner.indexes.contains_key(column) {
            return Err(Error::AlreadyExists(format!("index on '{column}'")));
        }
        let mut idx = SecondaryIndex::new();
        for (key, row) in inner.rows.iter() {
            idx.insert(&row.values()[pos], key);
        }
        inner.indexes.insert(column.to_string(), idx);
        Ok(())
    }

    /// Drop the secondary index on `column`.
    pub fn drop_index(&self, column: &str) -> Result<()> {
        if self.inner.write().indexes.remove(column).is_none() {
            return Err(Error::NotFound(format!("index on '{column}'")));
        }
        Ok(())
    }

    /// Names of indexed columns.
    pub fn indexed_columns(&self) -> Vec<String> {
        self.inner.read().indexes.keys().cloned().collect()
    }

    /// Evaluate a predicate over the table, using the primary key or a
    /// secondary index when the predicate's conjunctive form allows it,
    /// and falling back to a full scan otherwise. Rows are returned in
    /// unspecified order.
    pub fn select(&self, predicate: &Expr) -> Result<Vec<Record>> {
        let bound = evdb_expr::CompiledExpr::compile(&predicate.bind_predicate(&self.def.schema)?);
        let form = analyze(predicate);
        let inner = self.inner.read();

        // Pick the most selective-looking indexed constraint: equality on
        // pk, then equality on a secondary index, then pk range, then
        // secondary range.
        let pk_name = &self.def.schema.fields()[self.def.pk].name;
        let mut candidates: Option<Vec<Value>> = None;

        let mut best: Option<(&Constraint, u8)> = None;
        for c in &form.constraints {
            let on_pk = c.field() == pk_name;
            let on_idx = inner.indexes.contains_key(c.field());
            let score = match c {
                Constraint::Eq { .. } | Constraint::In { .. } if on_pk => 4,
                Constraint::Eq { .. } | Constraint::In { .. } if on_idx => 3,
                Constraint::Range { .. } if on_pk => 2,
                Constraint::Range { .. } if on_idx => 1,
                _ => 0,
            };
            if score > 0 && best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((c, score));
            }
        }

        if let Some((c, _)) = best {
            let on_pk = c.field() == pk_name;
            let keys: Vec<Value> = match c {
                Constraint::Eq { value, .. } => {
                    if on_pk {
                        vec![value.clone()]
                    } else {
                        inner.indexes[c.field()].get(value)
                    }
                }
                Constraint::In { values, .. } => {
                    if on_pk {
                        values.clone()
                    } else {
                        values
                            .iter()
                            .flat_map(|v| inner.indexes[c.field()].get(v))
                            .collect()
                    }
                }
                Constraint::Range { low, high, .. } => {
                    let lo = low.as_ref().map(|b| (&b.value, b.inclusive));
                    let hi = high.as_ref().map(|b| (&b.value, b.inclusive));
                    if on_pk {
                        let lob = match lo {
                            None => Bound::Unbounded,
                            Some((v, true)) => Bound::Included(v.clone()),
                            Some((v, false)) => Bound::Excluded(v.clone()),
                        };
                        let hib = match hi {
                            None => Bound::Unbounded,
                            Some((v, true)) => Bound::Included(v.clone()),
                            Some((v, false)) => Bound::Excluded(v.clone()),
                        };
                        let inverted = matches!(
                            (&lob, &hib),
                            (
                                Bound::Included(a) | Bound::Excluded(a),
                                Bound::Included(b) | Bound::Excluded(b)
                            ) if a > b
                        );
                        if inverted {
                            Vec::new()
                        } else {
                            inner.rows.range((lob, hib)).map(|(k, _)| k.clone()).collect()
                        }
                    } else {
                        inner.indexes[c.field()].range(lo, hi)
                    }
                }
            };
            candidates = Some(keys);
        }

        let mut out = Vec::new();
        let mut scratch = evdb_expr::BatchScratch::new();
        match candidates {
            Some(keys) => {
                let rows: Vec<&Record> = keys.iter().filter_map(|k| inner.rows.get(k)).collect();
                Self::filter_batched(&bound, &rows, &mut scratch, &mut out)?;
            }
            None => {
                let rows: Vec<&Record> = inner.rows.values().collect();
                Self::filter_batched(&bound, &rows, &mut scratch, &mut out)?;
            }
        }
        Ok(out)
    }

    /// Verify candidate rows through the batch VM (D15) instead of one
    /// `matches` dispatch per row. Scan order and first-error-wins are
    /// preserved: verdicts come back aligned with `rows`, and the first
    /// `Err` in scan order aborts the select exactly as the per-row
    /// `?` did.
    fn filter_batched(
        pred: &evdb_expr::CompiledExpr,
        rows: &[&Record],
        scratch: &mut evdb_expr::BatchScratch,
        out: &mut Vec<Record>,
    ) -> Result<()> {
        let mut verdicts: Vec<Result<bool>> = Vec::new();
        for chunk in rows.chunks(1024) {
            pred.matches_batch(chunk, |r| *r, scratch, &mut verdicts);
            for (r, v) in chunk.iter().zip(verdicts.drain(..)) {
                if v? {
                    out.push((*r).clone());
                }
            }
        }
        Ok(())
    }

    /// Remove every row (used by recovery when re-applying a checkpoint).
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.rows.clear();
        let cols: Vec<String> = inner.indexes.keys().cloned().collect();
        for c in cols {
            inner.indexes.insert(c, SecondaryIndex::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;
    use evdb_types::DataType;

    fn table() -> Table {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("sym", DataType::Str),
            ("px", DataType::Float),
        ]);
        let t = Table::new(TableDef::new("ticks", schema, "id").unwrap());
        for i in 0..100i64 {
            t.insert(Record::from_iter([
                Value::Int(i),
                Value::from(if i % 2 == 0 { "A" } else { "B" }),
                Value::Float(i as f64 * 1.5),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn def_validation() {
        let schema = Schema::new(vec![evdb_types::FieldDef::nullable("id", DataType::Int)])
            .unwrap();
        assert!(TableDef::new("t", schema, "id").is_err());
        let schema = Schema::of(&[("id", DataType::Int)]);
        assert!(TableDef::new("t", schema, "ghost").is_err());
    }

    #[test]
    fn crud_and_constraints() {
        let t = table();
        assert_eq!(t.len(), 100);
        assert!(t
            .insert(Record::from_iter([
                Value::Int(5),
                Value::from("A"),
                Value::Float(0.0)
            ]))
            .is_err()); // dup pk
        assert!(t
            .insert(Record::from_iter([
                Value::Null,
                Value::from("A"),
                Value::Float(0.0)
            ]))
            .is_err()); // null pk (schema catches)

        let (old, new) = t
            .update(
                &Value::Int(5),
                Record::from_iter([Value::Int(5), Value::from("Z"), Value::Float(9.0)]),
            )
            .unwrap();
        assert_eq!(old.get(1), Some(&Value::from("B")));
        assert_eq!(new.get(1), Some(&Value::from("Z")));

        assert!(t
            .update(
                &Value::Int(5),
                Record::from_iter([Value::Int(6), Value::from("Z"), Value::Float(9.0)])
            )
            .is_err()); // pk change

        let gone = t.delete(&Value::Int(5)).unwrap();
        assert_eq!(gone.get(1), Some(&Value::from("Z")));
        assert!(t.get(&Value::Int(5)).is_none());
        assert!(t.delete(&Value::Int(5)).is_err());
    }

    #[test]
    fn select_full_scan_and_pk_paths() {
        let t = table();
        let rows = t.select(&parse("px > 100").unwrap()).unwrap();
        assert_eq!(rows.len(), 33); // px = 1.5*i > 100 → i ≥ 67

        let rows = t.select(&parse("id = 10").unwrap()).unwrap();
        assert_eq!(rows.len(), 1);

        let rows = t.select(&parse("id BETWEEN 10 AND 19").unwrap()).unwrap();
        assert_eq!(rows.len(), 10);

        let rows = t
            .select(&parse("id IN (1, 2, 3, 999)").unwrap())
            .unwrap();
        assert_eq!(rows.len(), 3);

        let rows = t.select(&parse("id >= 95 AND sym = 'A'").unwrap()).unwrap();
        assert_eq!(rows.len(), 2); // even ids in 95..=99: 96, 98
    }

    #[test]
    fn select_with_secondary_index_matches_scan() {
        let t = table();
        let pred = parse("sym = 'A' AND px < 30").unwrap();
        let before = {
            let mut v: Vec<i64> = t
                .select(&pred)
                .unwrap()
                .iter()
                .map(|r| r.get(0).unwrap().as_int().unwrap())
                .collect();
            v.sort_unstable();
            v
        };
        t.create_index("sym").unwrap();
        let after = {
            let mut v: Vec<i64> = t
                .select(&pred)
                .unwrap()
                .iter()
                .map(|r| r.get(0).unwrap().as_int().unwrap())
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(before, after);
        assert!(!after.is_empty());
        assert_eq!(t.indexed_columns(), vec!["sym".to_string()]);
    }

    #[test]
    fn index_maintenance_on_update_delete() {
        let t = table();
        t.create_index("sym").unwrap();
        t.update(
            &Value::Int(0),
            Record::from_iter([Value::Int(0), Value::from("B"), Value::Float(0.0)]),
        )
        .unwrap();
        t.delete(&Value::Int(2)).unwrap();
        let rows = t.select(&parse("sym = 'A'").unwrap()).unwrap();
        // started with 50 'A' rows (even ids); row 0 moved to B, row 2 deleted
        assert_eq!(rows.len(), 48);
        assert!(t.create_index("sym").is_err());
        t.drop_index("sym").unwrap();
        assert!(t.drop_index("sym").is_err());
    }

    #[test]
    fn inverted_pk_range_is_empty() {
        let t = table();
        let rows = t.select(&parse("id BETWEEN 50 AND 10").unwrap()).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn select_rejects_non_predicates_and_bad_fields() {
        let t = table();
        assert!(t.select(&parse("id + 1").unwrap()).is_err());
        assert!(t.select(&parse("ghost = 1").unwrap()).is_err());
    }
}
