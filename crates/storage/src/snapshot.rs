//! Query-based capture — mechanism (iii) of the tutorial's §2.2.a:
//! "if queries reference the current state the change of the result set is
//! perceived as an event".
//!
//! A [`QuerySnapshot`] holds a predicate over one table and the result set
//! of its previous evaluation, keyed by primary key. Each `poll`
//! re-evaluates the query and diffs: rows that entered the result set are
//! Inserts, rows that left are Deletes, rows whose image changed are
//! Updates. Capture latency is bounded by the poll interval, and cost is
//! proportional to the result set, not the change rate — the trade E1
//! quantifies against triggers and journal mining.

use std::collections::HashMap;

use evdb_expr::Expr;
use evdb_types::{Record, Result, Trace, Value};

use crate::change::{ChangeEvent, ChangeKind};
use crate::db::Database;

/// A polled continuous query over one table.
#[derive(Debug)]
pub struct QuerySnapshot {
    table: String,
    predicate: Expr,
    previous: HashMap<Value, Record>,
    polls: u64,
}

impl QuerySnapshot {
    /// Create a snapshot query. The first `poll` reports the entire
    /// current result set as inserts (the subscriber's initial fill).
    pub fn new(table: impl Into<String>, predicate: Expr) -> QuerySnapshot {
        QuerySnapshot {
            table: table.into(),
            predicate,
            previous: HashMap::new(),
            polls: 0,
        }
    }

    /// The monitored table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// How many polls have run.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Size of the tracked result set.
    pub fn result_size(&self) -> usize {
        self.previous.len()
    }

    /// Re-evaluate the query and adopt the current result set as the new
    /// baseline **without emitting events**. A subscriber that recovered
    /// its own durable state after a crash calls this instead of `poll`, so
    /// the initial fill is not replayed as a storm of spurious inserts.
    pub fn rebaseline(&mut self, db: &Database) -> Result<usize> {
        let t = db.table(&self.table)?;
        let rows = t.select(&self.predicate)?;
        self.polls += 1;
        self.previous = rows.into_iter().map(|row| (t.key_of(&row), row)).collect();
        Ok(self.previous.len())
    }

    /// Re-evaluate and diff against the previous result set.
    pub fn poll(&mut self, db: &Database) -> Result<Vec<ChangeEvent>> {
        let t = db.table(&self.table)?;
        let rows = t.select(&self.predicate)?;
        self.polls += 1;
        let now = db.now();
        let txid = 0; // snapshot capture has no originating transaction

        let mut current: HashMap<Value, Record> = HashMap::with_capacity(rows.len());
        for row in rows {
            current.insert(t.key_of(&row), row);
        }

        let mut events = Vec::new();
        for (key, row) in &current {
            match self.previous.get(key) {
                None => events.push(ChangeEvent {
                    table: t.name().into(),
                    kind: ChangeKind::Insert,
                    key: key.clone(),
                    before: None,
                    after: Some(row.clone()),
                    txid,
                    lsn: None,
                    timestamp: now,
                    schema: t.schema().clone(),
                    trace: Trace::begin(now),
                }),
                Some(prev) if prev != row => events.push(ChangeEvent {
                    table: t.name().into(),
                    kind: ChangeKind::Update,
                    key: key.clone(),
                    before: Some(prev.clone()),
                    after: Some(row.clone()),
                    txid,
                    lsn: None,
                    timestamp: now,
                    schema: t.schema().clone(),
                    trace: Trace::begin(now),
                }),
                Some(_) => {}
            }
        }
        for (key, prev) in &self.previous {
            if !current.contains_key(key) {
                events.push(ChangeEvent {
                    table: t.name().into(),
                    kind: ChangeKind::Delete,
                    key: key.clone(),
                    before: Some(prev.clone()),
                    after: None,
                    txid,
                    lsn: None,
                    timestamp: now,
                    schema: t.schema().clone(),
                    trace: Trace::begin(now),
                });
            }
        }
        self.previous = current;
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbOptions;
    use evdb_expr::parse;
    use evdb_types::{DataType, Schema};

    fn db() -> std::sync::Arc<Database> {
        let db = Database::in_memory(DbOptions::default()).unwrap();
        db.create_table(
            "t",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]),
            "id",
        )
        .unwrap();
        db
    }

    #[test]
    fn detects_enter_change_leave() {
        let db = db();
        let mut q = QuerySnapshot::new("t", parse("v > 10").unwrap());

        // Initially empty.
        assert!(q.poll(&db).unwrap().is_empty());

        // Row enters the result set.
        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(50.0)]))
            .unwrap();
        let ev = q.poll(&db).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, ChangeKind::Insert);

        // Row changes while staying in the result set.
        db.update(
            "t",
            &Value::Int(1),
            Record::from_iter([Value::Int(1), Value::Float(60.0)]),
        )
        .unwrap();
        let ev = q.poll(&db).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, ChangeKind::Update);
        assert_eq!(
            ev[0].before.as_ref().unwrap().get(1),
            Some(&Value::Float(50.0))
        );

        // Row leaves the result set (still in the table!).
        db.update(
            "t",
            &Value::Int(1),
            Record::from_iter([Value::Int(1), Value::Float(5.0)]),
        )
        .unwrap();
        let ev = q.poll(&db).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, ChangeKind::Delete);
        assert_eq!(q.result_size(), 0);
        assert_eq!(q.polls(), 4);
    }

    #[test]
    fn quiet_table_produces_no_events() {
        let db = db();
        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(50.0)]))
            .unwrap();
        let mut q = QuerySnapshot::new("t", parse("v > 10").unwrap());
        assert_eq!(q.poll(&db).unwrap().len(), 1); // initial fill
        assert!(q.poll(&db).unwrap().is_empty());
        assert!(q.poll(&db).unwrap().is_empty());
    }

    #[test]
    fn rebaseline_swallows_initial_fill() {
        let db = db();
        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(50.0)]))
            .unwrap();
        db.insert("t", Record::from_iter([Value::Int(2), Value::Float(60.0)]))
            .unwrap();
        // A recovered subscriber adopts the current state silently…
        let mut q = QuerySnapshot::new("t", parse("v > 10").unwrap());
        assert_eq!(q.rebaseline(&db).unwrap(), 2);
        assert!(q.poll(&db).unwrap().is_empty());
        // …and still sees subsequent changes.
        db.delete("t", &Value::Int(1)).unwrap();
        let ev = q.poll(&db).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, ChangeKind::Delete);
    }

    #[test]
    fn changes_between_polls_collapse() {
        // Polling is lossy by design: insert+delete between polls is
        // invisible; insert+update collapses to one insert.
        let db = db();
        let mut q = QuerySnapshot::new("t", parse("v > 0").unwrap());
        q.poll(&db).unwrap();

        db.insert("t", Record::from_iter([Value::Int(1), Value::Float(1.0)]))
            .unwrap();
        db.delete("t", &Value::Int(1)).unwrap();
        db.insert("t", Record::from_iter([Value::Int(2), Value::Float(1.0)]))
            .unwrap();
        db.update(
            "t",
            &Value::Int(2),
            Record::from_iter([Value::Int(2), Value::Float(2.0)]),
        )
        .unwrap();

        let ev = q.poll(&db).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, ChangeKind::Insert);
        assert_eq!(
            ev[0].after.as_ref().unwrap().get(1),
            Some(&Value::Float(2.0))
        );
    }
}
