//! Secondary indexes: ordered multimaps from column value to primary keys.
//!
//! Backed by a `BTreeMap<Value, BTreeSet<Value>>`, which supports point
//! probes and range scans with inclusive/exclusive bounds — the two access
//! paths the query planner in [`crate::table`] uses.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use evdb_types::Value;

/// A secondary index over one column.
#[derive(Debug, Default)]
pub struct SecondaryIndex {
    map: BTreeMap<Value, BTreeSet<Value>>,
    entries: usize,
}

impl SecondaryIndex {
    /// Empty index.
    pub fn new() -> SecondaryIndex {
        SecondaryIndex::default()
    }

    /// Number of (value, pk) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when the index holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Register `pk` under `value`. NULLs are not indexed (SQL-style: an
    /// index probe can never produce a NULL match).
    pub fn insert(&mut self, value: &Value, pk: &Value) {
        if value.is_null() {
            return;
        }
        if self.map.entry(value.clone()).or_default().insert(pk.clone()) {
            self.entries += 1;
        }
    }

    /// Remove `pk` from under `value`.
    pub fn remove(&mut self, value: &Value, pk: &Value) {
        if value.is_null() {
            return;
        }
        if let Some(set) = self.map.get_mut(value) {
            if set.remove(pk) {
                self.entries -= 1;
            }
            if set.is_empty() {
                self.map.remove(value);
            }
        }
    }

    /// Primary keys whose column equals `value`.
    pub fn get(&self, value: &Value) -> Vec<Value> {
        self.map
            .get(value)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Primary keys whose column lies within the bounds. `None` means
    /// unbounded on that side; the `bool` is "inclusive".
    pub fn range(
        &self,
        low: Option<(&Value, bool)>,
        high: Option<(&Value, bool)>,
    ) -> Vec<Value> {
        let lo = match low {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(v.clone()),
            Some((v, false)) => Bound::Excluded(v.clone()),
        };
        let hi = match high {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(v.clone()),
            Some((v, false)) => Bound::Excluded(v.clone()),
        };
        // Guard: BTreeMap panics when start > end; treat as empty range.
        if let (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) =
            (&lo, &hi)
        {
            if a > b {
                return Vec::new();
            }
        }
        self.map
            .range((lo, hi))
            .flat_map(|(_, pks)| pks.iter().cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> SecondaryIndex {
        let mut i = SecondaryIndex::new();
        for (v, pk) in [(10, 1), (20, 2), (20, 3), (30, 4)] {
            i.insert(&Value::Int(v), &Value::Int(pk));
        }
        i
    }

    #[test]
    fn point_lookup_and_duplicates() {
        let i = idx();
        assert_eq!(i.len(), 4);
        assert_eq!(i.get(&Value::Int(20)), vec![Value::Int(2), Value::Int(3)]);
        assert!(i.get(&Value::Int(99)).is_empty());
    }

    #[test]
    fn range_scans() {
        let i = idx();
        let all = |lo, lo_inc, hi, hi_inc| {
            i.range(
                Some((&Value::Int(lo), lo_inc)),
                Some((&Value::Int(hi), hi_inc)),
            )
            .len()
        };
        assert_eq!(all(10, true, 30, true), 4);
        assert_eq!(all(10, false, 30, false), 2);
        assert_eq!(all(20, true, 20, true), 2);
        assert_eq!(all(25, true, 5, true), 0); // inverted → empty, no panic
        assert_eq!(i.range(None, Some((&Value::Int(15), true))).len(), 1);
        assert_eq!(i.range(Some((&Value::Int(15), true)), None).len(), 3);
        assert_eq!(i.range(None, None).len(), 4);
    }

    #[test]
    fn remove_and_null_handling() {
        let mut i = idx();
        i.remove(&Value::Int(20), &Value::Int(2));
        assert_eq!(i.get(&Value::Int(20)), vec![Value::Int(3)]);
        i.remove(&Value::Int(20), &Value::Int(3));
        assert!(i.get(&Value::Int(20)).is_empty());
        assert_eq!(i.len(), 2);

        i.insert(&Value::Null, &Value::Int(9));
        assert_eq!(i.len(), 2); // nulls not indexed
        i.remove(&Value::Null, &Value::Int(9)); // no-op, no panic
    }
}
