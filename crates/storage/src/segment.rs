//! The per-stream historical event store: write-optimized head +
//! immutable columnar segments with zone maps (DESIGN.md D14).
//!
//! Writes append to a framed, checksummed **head log** (crash-safe the
//! same way the WAL is: torn tails are detected and trimmed). When the
//! head reaches `freeze_rows`, [`SegmentStore::freeze`] sorts it by
//! event time (stable by arrival seq), writes an immutable segment file
//! via tmp + fsync + rename, commits a new MANIFEST (tmp + fsync +
//! rename + dir fsync — the **commit point**), and only then truncates
//! the head. Recovery replays the head log, skipping frames whose seq is
//! below the manifest's `head_start`; a crash anywhere mid-freeze or
//! mid-compaction therefore never loses or duplicates an event:
//!
//! | crash between            | state on recovery                         |
//! |--------------------------|-------------------------------------------|
//! | segment write → manifest | orphan `seg-*` ignored/GC'd, head replays |
//! | manifest → head truncate | head frames < `head_start` skipped        |
//! | compact write → manifest | orphan merged segment ignored/GC'd        |
//! | manifest → input unlink  | stale inputs not in manifest are GC'd     |
//!
//! Queries prune at two levels: segment-level via manifest-resident
//! [`ColumnStats`] (pruned segments are never read), then zone-level
//! inside surviving segments ([`crate::columnar`]). Every prune and scan
//! is counted (D9): see [`StoreStats`].
//!
//! Scans are **chunked** (D15): each segment file is checksum-verified
//! once per store instance via fixed-size streamed reads, then zone
//! bodies are fetched individually into a reusable buffer — peak scan
//! memory is proportional to a zone, never to a whole segment file, so
//! history size is bounded by disk, not RAM.

use std::collections::{BTreeMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evdb_expr::{analyze, CompiledExpr, Constraint, Expr};
use evdb_faults::{FaultInjector, WriteDecision};
use evdb_types::{Error, Record, Result, Schema, TimestampMs};
use parking_lot::Mutex;

use crate::codec::{self, decode_schema, decode_value, encode_value, Reader};
use crate::columnar::{
    decode_stats, decode_zone_rows, encode_segment, ColumnStats, StoredEvent, DEFAULT_ZONE_ROWS,
    SEGMENT_MAGIC, SEGMENT_VERSION,
};
use crate::crc::{crc32, Crc32};
use crate::wal::fsync_dir;

const MANIFEST_MAGIC: u32 = 0x464d_5345; // "ESMF"
const HEAD_FILE: &str = "HEAD";
const MANIFEST_FILE: &str = "MANIFEST";
/// Read size for streamed checksum verification: peak buffer for
/// verifying a segment of any size.
const VERIFY_CHUNK: usize = 256 * 1024;

/// Tuning knobs for a [`SegmentStore`].
#[derive(Clone)]
pub struct SegmentStoreOptions {
    /// Head rows that trigger an automatic freeze on append.
    pub freeze_rows: usize,
    /// Rows per zone inside a segment.
    pub zone_rows: usize,
    /// fsync the head log on every append (`false` = rely on the WAL for
    /// durability of the primary copy; the head is then as durable as
    /// the OS page cache, and recovery re-derives losses from the WAL).
    pub sync_head: bool,
    /// Fault injector shared with the rest of the engine (sites
    /// `seg.head.append`, `seg.freeze.write`, `seg.freeze.rename`,
    /// `seg.manifest.write`, `seg.manifest.rename`, `seg.manifest.dirsync`,
    /// `seg.head.truncate`, `seg.compact.write`, `seg.compact.rename`).
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for SegmentStoreOptions {
    fn default() -> Self {
        SegmentStoreOptions {
            freeze_rows: 4096,
            zone_rows: DEFAULT_ZONE_ROWS,
            sync_head: false,
            faults: None,
        }
    }
}

impl std::fmt::Debug for SegmentStoreOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStoreOptions")
            .field("freeze_rows", &self.freeze_rows)
            .field("zone_rows", &self.zone_rows)
            .field("sync_head", &self.sync_head)
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

/// Manifest entry for one live segment: enough metadata to prune the
/// segment without reading its file.
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    /// File name inside the store directory.
    pub file: String,
    /// Row count.
    pub rows: u64,
    /// Arrival-sequence bounds (inclusive; disjoint across segments).
    pub seq_min: u64,
    /// Arrival-sequence bounds (inclusive; disjoint across segments).
    pub seq_max: u64,
    /// Event-time bounds (inclusive).
    pub ts_min: TimestampMs,
    /// Event-time bounds (inclusive).
    pub ts_max: TimestampMs,
    /// Per payload column stats (segment-level zone map).
    pub stats: Vec<ColumnStats>,
    /// On-disk size, bytes.
    pub bytes: u64,
}

impl SegmentMeta {
    fn may_match(&self, schema: &Schema, constraints: &[Constraint]) -> bool {
        constraints.iter().all(|c| match schema.index_of(c.field()) {
            Some(i) => self.stats[i].may_match(c),
            None => true,
        })
    }
}

/// Monotone counters for everything the store does or skips (D9: every
/// pruned segment/zone is counted, never silently elided).
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Events appended to the head.
    pub appended: AtomicU64,
    /// Head freezes performed.
    pub freezes: AtomicU64,
    /// Compaction merges performed.
    pub compactions: AtomicU64,
    /// Segments considered by queries.
    pub segments_considered: AtomicU64,
    /// Segments skipped by manifest-level stats.
    pub segments_pruned: AtomicU64,
    /// Zones considered inside surviving segments.
    pub zones_considered: AtomicU64,
    /// Zones skipped by zone maps.
    pub zones_pruned: AtomicU64,
    /// Events streamed out by replay.
    pub replayed: AtomicU64,
    /// Orphan files removed during recovery (crash between segment
    /// write and manifest commit).
    pub orphans_removed: AtomicU64,
    /// Bytes read from segment files (streamed verification passes plus
    /// per-zone body reads).
    pub bytes_read: AtomicU64,
    /// High-water mark of the reusable zone read buffer, in bytes: the
    /// witness that scan memory is proportional to a *zone*, not a
    /// segment (chunked reads, D15).
    pub peak_zone_buffer: AtomicU64,
}

/// Point-in-time copy of [`StoreStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStatsSnapshot {
    /// See [`StoreStats::appended`].
    pub appended: u64,
    /// See [`StoreStats::freezes`].
    pub freezes: u64,
    /// See [`StoreStats::compactions`].
    pub compactions: u64,
    /// See [`StoreStats::segments_considered`].
    pub segments_considered: u64,
    /// See [`StoreStats::segments_pruned`].
    pub segments_pruned: u64,
    /// See [`StoreStats::zones_considered`].
    pub zones_considered: u64,
    /// See [`StoreStats::zones_pruned`].
    pub zones_pruned: u64,
    /// See [`StoreStats::replayed`].
    pub replayed: u64,
    /// See [`StoreStats::orphans_removed`].
    pub orphans_removed: u64,
    /// See [`StoreStats::bytes_read`].
    pub bytes_read: u64,
    /// See [`StoreStats::peak_zone_buffer`].
    pub peak_zone_buffer: u64,
}

struct Inner {
    /// Live segments keyed by seq_min (disjoint, ordered).
    segments: BTreeMap<u64, SegmentMeta>,
    /// First sequence still owned by the head (everything below is in
    /// segments; the recovery cutoff).
    head_start: u64,
    /// Next sequence to assign.
    next_seq: u64,
    /// Unfrozen rows, in arrival order.
    head: Vec<StoredEvent>,
    /// Open head log handle.
    head_file: File,
}

/// An append-only columnar event store for one stream.
pub struct SegmentStore {
    dir: PathBuf,
    schema: Arc<Schema>,
    opts: SegmentStoreOptions,
    inner: Mutex<Inner>,
    /// Segment files whose checksum this store instance has already
    /// streamed and verified. Immutable once written, so one pass per
    /// file suffices; later scans read only the zones they need.
    verified: Mutex<HashSet<String>>,
    /// Activity counters (shared with observability bridges).
    pub stats: Arc<StoreStats>,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("dir", &self.dir)
            .field("segments", &self.segment_count())
            .finish()
    }
}

impl SegmentStore {
    /// Open (or create) the store in `dir`, running recovery: load the
    /// manifest, GC orphan segment files, replay the head log above the
    /// manifest's `head_start`.
    pub fn open(
        dir: impl AsRef<Path>,
        schema: Arc<Schema>,
        opts: SegmentStoreOptions,
    ) -> Result<SegmentStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let stats = Arc::new(StoreStats::default());

        // 1. Manifest (absent on first open).
        let (segments, head_start) = match fs::read(dir.join(MANIFEST_FILE)) {
            Ok(bytes) => decode_manifest(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (BTreeMap::new(), 0),
            Err(e) => return Err(e.into()),
        };

        // 2. GC files the manifest does not own: tmp files and orphan
        // segments from a crash between write and manifest commit.
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let live = name == HEAD_FILE
                || name == MANIFEST_FILE
                || segments.values().any(|m| m.file == name);
            if !live {
                let _ = fs::remove_file(entry.path());
                stats.orphans_removed.fetch_add(1, Ordering::Relaxed);
            }
        }

        // 3. Head log: replay frames at/above head_start; trim torn tail.
        let head_path = dir.join(HEAD_FILE);
        let mut head_bytes = Vec::new();
        if head_path.exists() {
            File::open(&head_path)?.read_to_end(&mut head_bytes)?;
        }
        let (frames, valid_len) = scan_head(&head_bytes);
        let mut head: Vec<StoredEvent> = frames
            .into_iter()
            .filter(|e| e.seq >= head_start)
            .collect();
        head.sort_by_key(|e| e.seq);
        head.dedup_by_key(|e| e.seq);
        if (valid_len as u64) < head_bytes.len() as u64 {
            // Torn tail from a crash mid-append: trim like the WAL does.
            let f = OpenOptions::new().write(true).open(&head_path)?;
            f.set_len(valid_len as u64)?;
            f.sync_data()?;
        }
        let head_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&head_path)?;

        let max_seg_seq = segments.values().map(|m| m.seq_max + 1).max().unwrap_or(0);
        let max_head_seq = head.last().map(|e| e.seq + 1).unwrap_or(0);
        let next_seq = head_start.max(max_seg_seq).max(max_head_seq);

        Ok(SegmentStore {
            dir,
            schema,
            opts,
            inner: Mutex::new(Inner {
                segments,
                head_start,
                next_seq,
                head,
                head_file,
            }),
            verified: Mutex::new(HashSet::new()),
            stats,
        })
    }

    /// The store's payload schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Live segment count.
    pub fn segment_count(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// Rows currently in the unfrozen head.
    pub fn head_rows(&self) -> usize {
        self.inner.lock().head.len()
    }

    /// Total stored events (segments + head).
    pub fn total_rows(&self) -> u64 {
        let inner = self.inner.lock();
        inner.segments.values().map(|m| m.rows).sum::<u64>() + inner.head.len() as u64
    }

    /// Live segment metadata, in seq order (for the compactor and tests).
    pub fn segment_metas(&self) -> Vec<SegmentMeta> {
        self.inner.lock().segments.values().cloned().collect()
    }

    /// Counter snapshot.
    pub fn stats_snapshot(&self) -> StoreStatsSnapshot {
        let s = &self.stats;
        StoreStatsSnapshot {
            appended: s.appended.load(Ordering::Relaxed),
            freezes: s.freezes.load(Ordering::Relaxed),
            compactions: s.compactions.load(Ordering::Relaxed),
            segments_considered: s.segments_considered.load(Ordering::Relaxed),
            segments_pruned: s.segments_pruned.load(Ordering::Relaxed),
            zones_considered: s.zones_considered.load(Ordering::Relaxed),
            zones_pruned: s.zones_pruned.load(Ordering::Relaxed),
            replayed: s.replayed.load(Ordering::Relaxed),
            orphans_removed: s.orphans_removed.load(Ordering::Relaxed),
            bytes_read: s.bytes_read.load(Ordering::Relaxed),
            peak_zone_buffer: s.peak_zone_buffer.load(Ordering::Relaxed),
        }
    }

    fn point(&self, site: &str) -> Result<()> {
        match &self.opts.faults {
            Some(f) => f.point(site),
            None => Ok(()),
        }
    }

    /// Write `payload` through the injector's write-fault machinery to
    /// `tmp`, then durably rename it to `dst`.
    fn write_atomic(
        &self,
        payload: &mut [u8],
        dst: &Path,
        write_site: &str,
        rename_site: &str,
    ) -> Result<()> {
        let tmp = dst.with_extension("tmp");
        let decision = match &self.opts.faults {
            Some(f) => f.on_write(write_site, payload.len())?,
            None => WriteDecision::clean(payload.len()),
        };
        if let Some((off, bit)) = decision.flip {
            payload[off] ^= 1 << bit;
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&payload[..decision.keep.min(payload.len())])?;
            f.sync_data()?;
        }
        if decision.crash_after {
            return Err(FaultInjector::crash_error(write_site));
        }
        self.point(rename_site)?;
        fs::rename(&tmp, dst)?;
        Ok(())
    }

    /// Commit a new manifest — the atomicity point of freeze/compaction.
    fn commit_manifest(&self, segments: &BTreeMap<u64, SegmentMeta>, head_start: u64) -> Result<()> {
        let mut payload = encode_manifest(segments, head_start);
        self.write_atomic(
            &mut payload,
            &self.dir.join(MANIFEST_FILE),
            "seg.manifest.write",
            "seg.manifest.rename",
        )?;
        self.point("seg.manifest.dirsync")?;
        fsync_dir(&self.dir)?;
        Ok(())
    }

    /// Append one event; returns its arrival sequence. Freezes the head
    /// automatically at `freeze_rows`.
    pub fn append(
        &self,
        id: u64,
        timestamp: TimestampMs,
        retraction: bool,
        payload: Record,
    ) -> Result<u64> {
        self.schema.validate(&payload)?;
        let (seq, must_freeze) = {
            let mut inner = self.inner.lock();
            let seq = inner.next_seq;
            let ev = StoredEvent {
                seq,
                id,
                timestamp,
                retraction,
                payload,
            };
            let mut frame = encode_head_frame(&ev);
            let decision = match &self.opts.faults {
                Some(f) => f.on_write("seg.head.append", frame.len())?,
                None => WriteDecision::clean(frame.len()),
            };
            if let Some((off, bit)) = decision.flip {
                frame[off] ^= 1 << bit;
            }
            inner
                .head_file
                .write_all(&frame[..decision.keep.min(frame.len())])?;
            if decision.crash_after {
                let _ = inner.head_file.sync_data();
                return Err(FaultInjector::crash_error("seg.head.append"));
            }
            if self.opts.sync_head {
                inner.head_file.sync_data()?;
            }
            inner.next_seq += 1;
            inner.head.push(ev);
            (seq, inner.head.len() >= self.opts.freeze_rows)
        };
        self.stats.appended.fetch_add(1, Ordering::Relaxed);
        if must_freeze {
            self.freeze()?;
        }
        Ok(seq)
    }

    /// Freeze the head into an immutable segment. No-op on an empty
    /// head. Crash-safe: the manifest rename is the commit point.
    pub fn freeze(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.head.is_empty() {
            return Ok(());
        }
        // Time-sorted, stable by seq: zones get tight temporal bounds
        // while the seq column preserves replay order.
        let mut rows = inner.head.clone();
        rows.sort_by_key(|e| (e.timestamp, e.seq));
        let meta = self.write_segment(&rows, "seg.freeze.write", "seg.freeze.rename")?;
        let new_head_start = inner.next_seq;

        let mut segments = inner.segments.clone();
        segments.insert(meta.seq_min, meta);
        self.commit_manifest(&segments, new_head_start)?;

        // Committed: adopt in memory, then truncate the head log. A
        // crash before truncation is benign — recovery skips frames
        // below head_start.
        inner.segments = segments;
        inner.head_start = new_head_start;
        inner.head.clear();
        self.stats.freezes.fetch_add(1, Ordering::Relaxed);
        self.point("seg.head.truncate")?;
        inner.head_file.set_len(0)?;
        inner.head_file.sync_data()?;
        Ok(())
    }

    /// Encode `rows` (already sorted) into `seg-<seqmin>-<seqmax>` and
    /// durably place it. Returns its manifest entry.
    fn write_segment(
        &self,
        rows: &[StoredEvent],
        write_site: &str,
        rename_site: &str,
    ) -> Result<SegmentMeta> {
        let seq_min = rows.iter().map(|e| e.seq).min().expect("non-empty");
        let seq_max = rows.iter().map(|e| e.seq).max().expect("non-empty");
        let file = format!("seg-{seq_min:016x}-{seq_max:016x}");
        let mut bytes = encode_segment(&self.schema, rows, self.opts.zone_rows);
        let len = bytes.len() as u64;
        self.write_atomic(&mut bytes, &self.dir.join(&file), write_site, rename_site)?;
        let stats: Vec<ColumnStats> = (0..self.schema.len())
            .map(|ci| ColumnStats::compute(rows.iter().filter_map(|e| e.payload.get(ci))))
            .collect();
        Ok(SegmentMeta {
            file,
            rows: rows.len() as u64,
            seq_min,
            seq_max,
            ts_min: rows.iter().map(|e| e.timestamp).min().expect("non-empty"),
            ts_max: rows.iter().map(|e| e.timestamp).max().expect("non-empty"),
            stats,
            bytes: len,
        })
    }

    /// Stream-verify a segment file's checksum in [`VERIFY_CHUNK`]-sized
    /// reads (bounded memory whatever the file size), once per file per
    /// store instance — segment files are immutable, so the result is
    /// cached and later scans go straight to zone reads.
    fn verify_segment(&self, meta: &SegmentMeta) -> Result<()> {
        if self.verified.lock().contains(&meta.file) {
            return Ok(());
        }
        let f = File::open(self.dir.join(&meta.file))?;
        let len = f.metadata()?.len();
        if len < 4 {
            return Err(Error::Corruption("segment shorter than its crc".into()));
        }
        let data_len = len - 4;
        let mut hasher = Crc32::new();
        let mut buf = vec![0u8; VERIFY_CHUNK.min(data_len.max(1) as usize)];
        let mut pos = 0u64;
        while pos < data_len {
            let n = ((data_len - pos) as usize).min(VERIFY_CHUNK);
            f.read_exact_at(&mut buf[..n], pos)?;
            hasher.update(&buf[..n]);
            pos += n as u64;
        }
        let mut crc_bytes = [0u8; 4];
        f.read_exact_at(&mut crc_bytes, data_len)?;
        self.stats.bytes_read.fetch_add(len, Ordering::Relaxed);
        if hasher.finalize() != u32::from_le_bytes(crc_bytes) {
            return Err(Error::Corruption("segment crc mismatch".into()));
        }
        self.verified.lock().insert(meta.file.clone());
        Ok(())
    }

    /// Open a segment for chunked scanning: verify the checksum
    /// (cached), then parse the zone directory, *seeking past* the
    /// bodies. Only zone metadata lives in memory; bodies are fetched
    /// one at a time by [`OpenSegment::read_zone`].
    fn open_segment(&self, meta: &SegmentMeta) -> Result<OpenSegment> {
        self.verify_segment(meta)?;
        let file = File::open(self.dir.join(&meta.file))?;
        let data_len = file.metadata()?.len().saturating_sub(4);
        let mut win = Vec::new();
        let ((schema, zone_count), mut pos) = parse_at(&file, data_len, 0, &mut win, |r| {
            if r.u32()? != SEGMENT_MAGIC {
                return Err(Error::Corruption("bad segment magic".into()));
            }
            let version = r.u16()?;
            if version != SEGMENT_VERSION {
                return Err(Error::Corruption(format!(
                    "unsupported segment version {version}"
                )));
            }
            let schema = decode_schema(r)?;
            let _zone_rows = r.u32()?;
            let nzones = r.u32()? as usize;
            Ok((schema, nzones))
        })?;
        let ncols = schema.len();
        let mut zones = Vec::with_capacity(zone_count);
        for _ in 0..zone_count {
            let (mut zone, meta_end) = parse_at(&file, data_len, pos, &mut win, |r| {
                let rows = r.u32()? as usize;
                let seq_min = r.u64()?;
                let seq_max = r.u64()?;
                let ts_min = TimestampMs(r.i64()?);
                let ts_max = TimestampMs(r.i64()?);
                let mut stats = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    stats.push(decode_stats(r)?);
                }
                let len = r.u32()? as usize;
                Ok(ZoneDir {
                    rows,
                    seq_min,
                    seq_max,
                    ts_min,
                    ts_max,
                    stats,
                    offset: 0,
                    len,
                })
            })?;
            zone.offset = meta_end;
            pos = meta_end + zone.len as u64;
            if pos > data_len {
                return Err(Error::Corruption("zone body truncated".into()));
            }
            zones.push(zone);
        }
        if pos != data_len {
            return Err(Error::Corruption("trailing bytes after zones".into()));
        }
        Ok(OpenSegment {
            file,
            schema,
            zones,
        })
    }

    /// Evaluate `predicate` over the whole history (segments + head),
    /// pruning segments and zones via their statistics. Results are in
    /// arrival (seq) order.
    pub fn query(&self, predicate: &Expr) -> Result<Vec<StoredEvent>> {
        let bound = CompiledExpr::compile(&predicate.bind_predicate(&self.schema)?);
        let form = analyze(predicate);
        let (metas, head): (Vec<SegmentMeta>, Vec<StoredEvent>) = {
            let inner = self.inner.lock();
            (
                inner.segments.values().cloned().collect(),
                inner.head.clone(),
            )
        };
        let mut out = Vec::new();
        let mut zone_buf = Vec::new();
        for meta in &metas {
            self.stats.segments_considered.fetch_add(1, Ordering::Relaxed);
            if !meta.may_match(&self.schema, &form.constraints) {
                self.stats.segments_pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let seg = self.open_segment(meta)?;
            for (zi, zone) in seg.zones.iter().enumerate() {
                self.stats.zones_considered.fetch_add(1, Ordering::Relaxed);
                if !zone.may_match(&self.schema, &form.constraints) {
                    self.stats.zones_pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                for ev in seg.read_zone(zi, &mut zone_buf, &self.stats)? {
                    if bound.matches(&ev.payload)? {
                        out.push(ev);
                    }
                }
            }
        }
        for ev in head {
            if bound.matches(&ev.payload)? {
                out.push(ev);
            }
        }
        out.sort_by_key(|e| e.seq);
        Ok(out)
    }

    /// Full-history row scan with no pruning (the E18 baseline and the
    /// torture harness's equivalence oracle). Arrival order.
    pub fn scan_all(&self) -> Result<Vec<StoredEvent>> {
        let (metas, head): (Vec<SegmentMeta>, Vec<StoredEvent>) = {
            let inner = self.inner.lock();
            (
                inner.segments.values().cloned().collect(),
                inner.head.clone(),
            )
        };
        let mut out = Vec::new();
        let mut zone_buf = Vec::new();
        for meta in &metas {
            let seg = self.open_segment(meta)?;
            for zi in 0..seg.zones.len() {
                out.extend(seg.read_zone(zi, &mut zone_buf, &self.stats)?);
            }
        }
        out.extend(head);
        out.sort_by_key(|e| e.seq);
        Ok(out)
    }

    /// Stream events back in original arrival order: seqs in
    /// `[from_seq, to_seq)`. `replay(0, u64::MAX)` is the full history.
    pub fn replay(&self, from_seq: u64, to_seq: u64) -> Result<Vec<StoredEvent>> {
        let (metas, head): (Vec<SegmentMeta>, Vec<StoredEvent>) = {
            let inner = self.inner.lock();
            (
                inner.segments.values().cloned().collect(),
                inner.head.clone(),
            )
        };
        let mut out = Vec::new();
        let mut zone_buf = Vec::new();
        for meta in &metas {
            if meta.seq_max < from_seq || meta.seq_min >= to_seq {
                continue;
            }
            let seg = self.open_segment(meta)?;
            for (zi, zone) in seg.zones.iter().enumerate() {
                if zone.seq_max < from_seq || zone.seq_min >= to_seq {
                    continue;
                }
                out.extend(
                    seg.read_zone(zi, &mut zone_buf, &self.stats)?
                        .into_iter()
                        .filter(|e| e.seq >= from_seq && e.seq < to_seq),
                );
            }
        }
        out.extend(
            head.into_iter()
                .filter(|e| e.seq >= from_seq && e.seq < to_seq),
        );
        out.sort_by_key(|e| e.seq);
        self.stats.replayed.fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Events with `timestamp` in `[from, to]`, pruned via temporal
    /// bounds. Arrival order.
    pub fn query_time_range(
        &self,
        from: TimestampMs,
        to: TimestampMs,
    ) -> Result<Vec<StoredEvent>> {
        let (metas, head): (Vec<SegmentMeta>, Vec<StoredEvent>) = {
            let inner = self.inner.lock();
            (
                inner.segments.values().cloned().collect(),
                inner.head.clone(),
            )
        };
        let mut out = Vec::new();
        let mut zone_buf = Vec::new();
        for meta in &metas {
            self.stats.segments_considered.fetch_add(1, Ordering::Relaxed);
            if meta.ts_max < from || meta.ts_min > to {
                self.stats.segments_pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let seg = self.open_segment(meta)?;
            for (zi, zone) in seg.zones.iter().enumerate() {
                self.stats.zones_considered.fetch_add(1, Ordering::Relaxed);
                if zone.ts_max < from || zone.ts_min > to {
                    self.stats.zones_pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                out.extend(
                    seg.read_zone(zi, &mut zone_buf, &self.stats)?
                        .into_iter()
                        .filter(|e| e.timestamp >= from && e.timestamp <= to),
                );
            }
        }
        out.extend(
            head.into_iter()
                .filter(|e| e.timestamp >= from && e.timestamp <= to),
        );
        out.sort_by_key(|e| e.seq);
        Ok(out)
    }

    /// Merge a contiguous run of live segments into one (the compactor's
    /// worker; policy lives in [`crate::compact`]). `run` is a list of
    /// `seq_min` keys that must identify live, seq-adjacent segments.
    /// Crash-safe: the manifest commit swaps inputs for the merged
    /// segment atomically; input files are unlinked only afterwards.
    pub fn compact_segments(&self, run: &[u64]) -> Result<()> {
        if run.len() < 2 {
            return Err(Error::Invalid("compaction run needs >= 2 segments".into()));
        }
        let mut inner = self.inner.lock();
        let mut inputs = Vec::with_capacity(run.len());
        for key in run {
            let meta = inner
                .segments
                .get(key)
                .ok_or_else(|| Error::NotFound(format!("segment seq_min={key}")))?;
            inputs.push(meta.clone());
        }
        // Rows from every input, re-sorted time-stable like a freeze.
        let mut rows = Vec::new();
        let mut zone_buf = Vec::new();
        for meta in &inputs {
            let seg = self.open_segment(meta)?;
            for zi in 0..seg.zones.len() {
                rows.extend(seg.read_zone(zi, &mut zone_buf, &self.stats)?);
            }
        }
        rows.sort_by_key(|e| (e.timestamp, e.seq));
        let merged = self.write_segment(&rows, "seg.compact.write", "seg.compact.rename")?;

        let mut segments = inner.segments.clone();
        for meta in &inputs {
            segments.remove(&meta.seq_min);
        }
        segments.insert(merged.seq_min, merged);
        self.commit_manifest(&segments, inner.head_start)?;
        inner.segments = segments;
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        // Best-effort unlink; survivors are GC'd on next open.
        for meta in &inputs {
            let _ = fs::remove_file(self.dir.join(&meta.file));
        }
        Ok(())
    }
}

// ---- chunked segment scanning ----------------------------------------------

/// Zone directory entry parsed from a segment file: the pruning metadata
/// plus the absolute offset of the (not yet read) body.
struct ZoneDir {
    rows: usize,
    seq_min: u64,
    seq_max: u64,
    ts_min: TimestampMs,
    ts_max: TimestampMs,
    stats: Vec<ColumnStats>,
    /// Absolute body offset in the file.
    offset: u64,
    /// Body length, bytes.
    len: usize,
}

impl ZoneDir {
    fn may_match(&self, schema: &Schema, constraints: &[Constraint]) -> bool {
        constraints.iter().all(|c| match schema.index_of(c.field()) {
            Some(i) => self.stats[i].may_match(c),
            None => true,
        })
    }
}

/// A segment opened for chunked scanning: the zone directory is in
/// memory, bodies stay on disk until [`read_zone`](Self::read_zone)
/// fetches them one at a time.
struct OpenSegment {
    file: File,
    schema: Arc<Schema>,
    zones: Vec<ZoneDir>,
}

impl OpenSegment {
    /// Read and decode one zone body into `buf` (reused across calls so
    /// scan memory is one zone, not one segment — `peak_zone_buffer`
    /// records the buffer's high-water mark as the witness).
    fn read_zone(&self, zi: usize, buf: &mut Vec<u8>, stats: &StoreStats) -> Result<Vec<StoredEvent>> {
        let z = &self.zones[zi];
        buf.resize(z.len, 0);
        self.file.read_exact_at(&mut buf[..z.len], z.offset)?;
        stats.bytes_read.fetch_add(z.len as u64, Ordering::Relaxed);
        stats
            .peak_zone_buffer
            .fetch_max(buf.capacity() as u64, Ordering::Relaxed);
        decode_zone_rows(&self.schema, z.rows, &buf[..z.len])
    }
}

/// Parse a value from `file` at absolute offset `pos` through a growable
/// read window: start small, and if the parser runs out of bytes double
/// the window and retry (zone metadata is tiny, so one 4 KiB read almost
/// always suffices). Returns the value and the offset just past the
/// bytes it consumed.
fn parse_at<T>(
    file: &File,
    data_len: u64,
    pos: u64,
    win: &mut Vec<u8>,
    parse: impl Fn(&mut Reader<'_>) -> Result<T>,
) -> Result<(T, u64)> {
    let remaining = (data_len.saturating_sub(pos)) as usize;
    let mut window = remaining.min(4096.max(win.len()));
    loop {
        win.resize(window, 0);
        file.read_exact_at(&mut win[..window], pos)?;
        let mut r = Reader::new(&win[..window]);
        match parse(&mut r) {
            Ok(v) => {
                let consumed = (window - r.remaining()) as u64;
                return Ok((v, pos + consumed));
            }
            Err(_) if window < remaining => window = (window * 2).min(remaining),
            Err(e) => return Err(e),
        }
    }
}

// ---- head log framing ------------------------------------------------------
//
// frame := len:u32 | crc32(payload):u32 | payload
// payload := seq:u64 | id:u64 | ts:i64 | retraction:u8 | record

fn encode_head_frame(ev: &StoredEvent) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    codec::put_u64(&mut payload, ev.seq);
    codec::put_u64(&mut payload, ev.id);
    codec::put_i64(&mut payload, ev.timestamp.0);
    payload.push(ev.retraction as u8);
    codec::encode_record(&mut payload, &ev.payload);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    codec::put_u32(&mut frame, payload.len() as u32);
    codec::put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Decode the valid prefix of a head log; returns the events and the
/// byte length of the valid prefix (torn/corrupt tails stop the scan,
/// exactly like the WAL).
fn scan_head(buf: &[u8]) -> (Vec<StoredEvent>, usize) {
    let mut events = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if buf.len() - pos - 8 < len {
            break;
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        let mut r = Reader::new(payload);
        let parsed = (|| -> Result<StoredEvent> {
            let seq = r.u64()?;
            let id = r.u64()?;
            let ts = r.i64()?;
            let retraction = r.u8()? != 0;
            let payload = codec::decode_record(&mut r)?;
            Ok(StoredEvent {
                seq,
                id,
                timestamp: TimestampMs(ts),
                retraction,
                payload,
            })
        })();
        match parsed {
            Ok(ev) => events.push(ev),
            Err(_) => break,
        }
        pos += 8 + len;
    }
    (events, pos)
}

// ---- manifest codec --------------------------------------------------------
//
// manifest := magic:u32 | version:u16 | head_start:u64 | count:u32 | entry*
//             | crc32:u32
// entry    := file:str | rows:u64 | seq_min:u64 | seq_max:u64 | ts_min:i64
//             | ts_max:i64 | bytes:u64 | schema_cols:u16 | colstats*

fn encode_manifest(segments: &BTreeMap<u64, SegmentMeta>, head_start: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    codec::put_u32(&mut buf, MANIFEST_MAGIC);
    codec::put_u16(&mut buf, 1);
    codec::put_u64(&mut buf, head_start);
    codec::put_u32(&mut buf, segments.len() as u32);
    for meta in segments.values() {
        codec::put_str(&mut buf, &meta.file);
        codec::put_u64(&mut buf, meta.rows);
        codec::put_u64(&mut buf, meta.seq_min);
        codec::put_u64(&mut buf, meta.seq_max);
        codec::put_i64(&mut buf, meta.ts_min.0);
        codec::put_i64(&mut buf, meta.ts_max.0);
        codec::put_u64(&mut buf, meta.bytes);
        codec::put_u16(&mut buf, meta.stats.len() as u16);
        for s in &meta.stats {
            match &s.bounds {
                Some((lo, hi)) => {
                    buf.push(1);
                    encode_value(&mut buf, lo);
                    encode_value(&mut buf, hi);
                }
                None => buf.push(0),
            }
            codec::put_u32(&mut buf, s.nulls);
        }
    }
    let crc = crc32(&buf);
    codec::put_u32(&mut buf, crc);
    buf
}

fn decode_manifest(bytes: &[u8]) -> Result<(BTreeMap<u64, SegmentMeta>, u64)> {
    if bytes.len() < 4 {
        return Err(Error::Corruption("manifest shorter than its crc".into()));
    }
    let (data, crc_bytes) = bytes.split_at(bytes.len() - 4);
    if crc32(data) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
        return Err(Error::Corruption("manifest crc mismatch".into()));
    }
    let mut r = Reader::new(data);
    if r.u32()? != MANIFEST_MAGIC {
        return Err(Error::Corruption("bad manifest magic".into()));
    }
    let version = r.u16()?;
    if version != 1 {
        return Err(Error::Corruption(format!(
            "unsupported manifest version {version}"
        )));
    }
    let head_start = r.u64()?;
    let count = r.u32()? as usize;
    let mut segments = BTreeMap::new();
    for _ in 0..count {
        let file = r.str()?;
        let rows = r.u64()?;
        let seq_min = r.u64()?;
        let seq_max = r.u64()?;
        let ts_min = TimestampMs(r.i64()?);
        let ts_max = TimestampMs(r.i64()?);
        let bytes_len = r.u64()?;
        let ncols = r.u16()? as usize;
        let mut stats = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let bounds = match r.u8()? {
                0 => None,
                1 => {
                    let lo = decode_value(&mut r)?;
                    let hi = decode_value(&mut r)?;
                    Some((lo, hi))
                }
                t => return Err(Error::Corruption(format!("bad manifest stats tag {t}"))),
            };
            let nulls = r.u32()?;
            stats.push(ColumnStats { bounds, nulls });
        }
        segments.insert(
            seq_min,
            SegmentMeta {
                file,
                rows,
                seq_min,
                seq_max,
                ts_min,
                ts_max,
                stats,
                bytes: bytes_len,
            },
        );
    }
    if !r.is_empty() {
        return Err(Error::Corruption("trailing bytes in manifest".into()));
    }
    Ok((segments, head_start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;
    use evdb_types::{DataType, Value};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "evdb-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn schema() -> Arc<Schema> {
        Schema::of(&[("k", DataType::Int), ("v", DataType::Float)])
    }

    fn store(dir: &Path, freeze_rows: usize) -> SegmentStore {
        SegmentStore::open(
            dir,
            schema(),
            SegmentStoreOptions {
                freeze_rows,
                zone_rows: 8,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn fill(s: &SegmentStore, n: u64) {
        for i in 0..n {
            s.append(
                i,
                TimestampMs(i as i64 * 10),
                false,
                Record::from_iter([Value::Int(i as i64), Value::Float(i as f64)]),
            )
            .unwrap();
        }
    }

    #[test]
    fn append_freeze_query_round_trip() {
        let dir = tmp("basic");
        let s = store(&dir, 32);
        fill(&s, 100);
        assert_eq!(s.segment_count(), 3); // 96 frozen, 4 in head
        assert_eq!(s.head_rows(), 4);
        assert_eq!(s.total_rows(), 100);

        let hits = s.query(&parse("k = 57").unwrap()).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].seq, 57);
        // Point query touches one segment, prunes the other two.
        let st = s.stats_snapshot();
        assert_eq!(st.segments_considered, 3);
        assert_eq!(st.segments_pruned, 2);
        assert!(st.zones_pruned > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_equals_uncrashed_state() {
        let dir = tmp("recover");
        {
            let s = store(&dir, 32);
            fill(&s, 75);
        }
        let s = store(&dir, 32);
        assert_eq!(s.total_rows(), 75);
        let all = s.scan_all().unwrap();
        assert_eq!(all.len(), 75);
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
        // Appends continue with fresh seqs.
        let seq = s
            .append(
                999,
                TimestampMs(999),
                true,
                Record::from_iter([Value::Int(1), Value::Float(1.0)]),
            )
            .unwrap();
        assert_eq!(seq, 75);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_preserves_arrival_order_and_signs() {
        let dir = tmp("replay");
        let s = store(&dir, 16);
        for i in 0..50u64 {
            // Deliberately non-monotone timestamps: arrival order is the
            // replay contract, not time order.
            s.append(
                i,
                TimestampMs((50 - i as i64) * 3),
                i % 4 == 0,
                Record::from_iter([Value::Int(i as i64), Value::Float(0.0)]),
            )
            .unwrap();
        }
        let all = s.replay(0, u64::MAX).unwrap();
        assert_eq!(all.len(), 50);
        for (i, ev) in all.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.retraction, i % 4 == 0);
        }
        let mid = s.replay(10, 20).unwrap();
        assert_eq!(mid.len(), 10);
        assert_eq!(mid[0].seq, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_content() {
        let dir = tmp("compact");
        let s = store(&dir, 16);
        fill(&s, 64);
        assert_eq!(s.segment_count(), 4);
        let before = s.scan_all().unwrap();
        let keys: Vec<u64> = s.segment_metas().iter().map(|m| m.seq_min).collect();
        s.compact_segments(&keys[0..2]).unwrap();
        assert_eq!(s.segment_count(), 3);
        assert_eq!(s.scan_all().unwrap(), before);
        // And again after reopen.
        drop(s);
        let s = store(&dir, 16);
        assert_eq!(s.scan_all().unwrap(), before);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn time_range_query_prunes() {
        let dir = tmp("trange");
        let s = store(&dir, 25);
        fill(&s, 100); // ts = 0..990 step 10
        let hits = s.query_time_range(TimestampMs(500), TimestampMs(540)).unwrap();
        assert_eq!(hits.len(), 5);
        let st = s.stats_snapshot();
        assert!(st.segments_pruned >= 2, "{st:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunked_scans_peak_memory_is_zone_not_segment() {
        let dir = tmp("chunked");
        let s = store(&dir, 512); // zone_rows = 8 -> one segment, 64 zones
        fill(&s, 512);
        assert_eq!(s.segment_count(), 1);
        assert_eq!(s.head_rows(), 0);
        let meta = s.segment_metas().remove(0);

        let all = s.scan_all().unwrap();
        assert_eq!(all.len(), 512);
        let st1 = s.stats_snapshot();
        // The reusable zone buffer's high-water mark must be a small
        // fraction of the segment: whole-file materialization would put
        // it at >= meta.bytes.
        assert!(st1.peak_zone_buffer > 0);
        assert!(
            st1.peak_zone_buffer * 8 < meta.bytes,
            "peak zone buffer {} vs segment {}",
            st1.peak_zone_buffer,
            meta.bytes
        );
        // First scan streamed the file once for verification plus every
        // zone body.
        assert!(st1.bytes_read >= meta.bytes, "{st1:?}");

        // Second scan skips re-verification (immutable file, cached):
        // only zone bodies are read again, strictly less than a whole
        // file's worth.
        let again = s.scan_all().unwrap();
        assert_eq!(again, all);
        let st2 = s.stats_snapshot();
        assert!(
            st2.bytes_read - st1.bytes_read < meta.bytes,
            "re-scan read {} bytes, segment is {}",
            st2.bytes_read - st1.bytes_read,
            meta.bytes
        );

        // Pruned queries read even less: a point query must not fetch
        // every zone body.
        let pre = s.stats_snapshot().bytes_read;
        let hits = s.query(&parse("k = 100").unwrap()).unwrap();
        assert_eq!(hits.len(), 1);
        let post = s.stats_snapshot().bytes_read;
        assert!(
            post - pre < st2.bytes_read - st1.bytes_read,
            "pruned query should read fewer body bytes than a full scan"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_segment_files_are_gcd() {
        let dir = tmp("orphan");
        {
            let s = store(&dir, 8);
            fill(&s, 20);
        }
        // Simulate a crash between segment write and manifest commit.
        fs::write(dir.join("seg-deadbeef-deadbeef"), b"orphan").unwrap();
        fs::write(dir.join("seg-cafe.tmp"), b"tmp").unwrap();
        let s = store(&dir, 8);
        assert_eq!(s.stats_snapshot().orphans_removed, 2);
        assert_eq!(s.total_rows(), 20);
        fs::remove_dir_all(&dir).unwrap();
    }
}
