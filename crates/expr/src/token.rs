//! Lexer for the expression language (and reused by the CQL front-end).

use evdb_types::{Error, Result};

/// A lexical token with its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset of the first character, for error reporting.
    pub offset: usize,
    /// The token kind/payload.
    pub kind: TokenKind,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Timestamp literal `@123`.
    Timestamp(i64),
    /// Identifier or keyword (original case preserved).
    Ident(String),
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[` (CQL window clauses)
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.` (used by CQL for qualified names)
    Dot,
    /// `;` (CQL statement terminator)
    Semi,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// If this token is an identifier, return it uppercased for keyword
    /// comparison.
    pub fn keyword(&self) -> Option<String> {
        match self {
            TokenKind::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// Tokenize `src` fully. Errors carry the byte offset of the offending
/// character.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                tokens.push(Token { offset: i, kind: TokenKind::LParen });
                i += 1;
            }
            b')' => {
                tokens.push(Token { offset: i, kind: TokenKind::RParen });
                i += 1;
            }
            b'[' => {
                tokens.push(Token { offset: i, kind: TokenKind::LBracket });
                i += 1;
            }
            b']' => {
                tokens.push(Token { offset: i, kind: TokenKind::RBracket });
                i += 1;
            }
            b',' => {
                tokens.push(Token { offset: i, kind: TokenKind::Comma });
                i += 1;
            }
            b'.' if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() => {
                tokens.push(Token { offset: i, kind: TokenKind::Dot });
                i += 1;
            }
            b';' => {
                tokens.push(Token { offset: i, kind: TokenKind::Semi });
                i += 1;
            }
            b'+' => {
                tokens.push(Token { offset: i, kind: TokenKind::Plus });
                i += 1;
            }
            b'-' => {
                // `--` starts a comment to end of line.
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token { offset: i, kind: TokenKind::Minus });
                    i += 1;
                }
            }
            b'*' => {
                tokens.push(Token { offset: i, kind: TokenKind::Star });
                i += 1;
            }
            b'/' => {
                tokens.push(Token { offset: i, kind: TokenKind::Slash });
                i += 1;
            }
            b'%' => {
                tokens.push(Token { offset: i, kind: TokenKind::Percent });
                i += 1;
            }
            b'=' => {
                tokens.push(Token { offset: i, kind: TokenKind::Eq });
                i += 1;
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { offset: i, kind: TokenKind::Ne });
                    i += 2;
                } else {
                    return Err(Error::parse(i, "expected '=' after '!'"));
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { offset: i, kind: TokenKind::Le });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token { offset: i, kind: TokenKind::Ne });
                    i += 2;
                } else {
                    tokens.push(Token { offset: i, kind: TokenKind::Lt });
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { offset: i, kind: TokenKind::Ge });
                    i += 2;
                } else {
                    tokens.push(Token { offset: i, kind: TokenKind::Gt });
                    i += 1;
                }
            }
            b'@' => {
                let start = i;
                i += 1;
                let num_start = i;
                if i < bytes.len() && bytes[i] == b'-' {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i == num_start {
                    return Err(Error::parse(start, "expected digits after '@'"));
                }
                let n: i64 = src[num_start..i]
                    .parse()
                    .map_err(|_| Error::parse(start, "timestamp literal out of range"))?;
                tokens.push(Token { offset: start, kind: TokenKind::Timestamp(n) });
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(Error::parse(start, "unterminated string literal"));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Copy a full UTF-8 scalar.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&src[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                tokens.push(Token { offset: start, kind: TokenKind::Str(s) });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                if is_float {
                    let f: f64 = text
                        .parse()
                        .map_err(|_| Error::parse(start, "bad float literal"))?;
                    tokens.push(Token { offset: start, kind: TokenKind::Float(f) });
                } else {
                    match text.parse::<i64>() {
                        Ok(n) => tokens.push(Token { offset: start, kind: TokenKind::Int(n) }),
                        Err(_) => {
                            let f: f64 = text
                                .parse()
                                .map_err(|_| Error::parse(start, "bad numeric literal"))?;
                            tokens.push(Token { offset: start, kind: TokenKind::Float(f) });
                        }
                    }
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                {
                    i += 1;
                }
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Ident(src[start..i].to_string()),
                });
            }
            other => {
                return Err(Error::parse(
                    i,
                    format!("unexpected character '{}'", other as char),
                ));
            }
        }
    }
    tokens.push(Token { offset: src.len(), kind: TokenKind::Eof });
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn operators_and_numbers() {
        assert_eq!(
            kinds("a >= 1.5 + 2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ge,
                TokenKind::Float(1.5),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2E-2")[0], TokenKind::Float(0.02));
    }

    #[test]
    fn ne_spellings() {
        assert_eq!(kinds("a != b")[1], TokenKind::Ne);
        assert_eq!(kinds("a <> b")[1], TokenKind::Ne);
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        assert_eq!(kinds("'o''brien'")[0], TokenKind::Str("o'brien".into()));
        assert_eq!(kinds("'héllo→'")[0], TokenKind::Str("héllo→".into()));
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn timestamps_and_comments() {
        assert_eq!(kinds("@42")[0], TokenKind::Timestamp(42));
        assert_eq!(kinds("@-5")[0], TokenKind::Timestamp(-5));
        assert_eq!(
            kinds("a -- trailing comment\n+ b").len(),
            4 // a, +, b, eof
        );
        assert!(tokenize("@x").is_err());
    }

    #[test]
    fn offsets_reported() {
        let toks = tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
        let err = tokenize("a ~ b").unwrap_err();
        assert!(err.to_string().contains("byte 2"));
    }

    #[test]
    fn big_integer_falls_back_to_float() {
        match &kinds("99999999999999999999")[0] {
            TokenKind::Float(f) => assert!(*f > 9.9e19 && *f < 1.01e20),
            other => panic!("expected float, got {other:?}"),
        }
    }
}
